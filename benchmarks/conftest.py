"""Benchmark suite configuration."""

import pathlib
import sys

# Make benchmarks/common.py importable regardless of invocation directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

"""Experiment F1 — crossing sensitivity of the kd-tree (Figure 1, Lemma 10).

Figure 1 illustrates the compaction argument behind Lemma 10: in the
crossing tree T_cross of a vertical line, every even-level internal node
has one child, so compaction halves the depth and the weighted sum
Σ_z N_z^(1-1/k) over crossing leaves telescopes to O(N^(1-1/k)).

Measured here, over growing N:

* |T_cross| for a vertical line — the classic O(sqrt N) kd-tree bound;
* the crossing sensitivity summand Σ N_z^(1-1/k) observed by actual
  ORP-KW queries (via QueryStats) — Lemma 10 says O(N^(1-1/k));
* the same for full rectangles (4x the line bound, §3.3).
"""

import math

from repro.audit.probes import kd_crossing_report, register
from repro.core.orp_kw import OrpKwIndex
from repro.core.transform import QueryStats
from repro.geometry.rectangles import Rect

from common import (
    BENCH_METRICS,
    SWEEP_OBJECTS,
    measure_query,
    slope,
    standard_dataset,
    summarize_sweep,
)

_K = 2


def _rows():
    rows = []
    for num in SWEEP_OBJECTS:
        ds = standard_dataset(num)
        index = OrpKwIndex(ds, k=_K)
        n = index.input_size

        # Raw kd-tree crossing count for a vertical line (rank space: the
        # object ranks span [0, |D|), not [0, N)).
        tree = index._transform.tree
        mid = len(ds) / 2.0
        line = Rect((mid, -1.0), (mid, float(len(ds)) + 1.0))
        cross_line = tree.count_crossing_nodes(line)

        # Crossing sensitivity observed by a real rectangle query, measured
        # through the shared audit hook so the cost distribution lands in
        # this table's metrics snapshot.
        stats = QueryStats()
        measured = measure_query(
            lambda c: index.query(
                Rect((0.2, 0.2), (0.8, 0.8)), [1, 2], counter=c, stats=stats
            )
        )

        rows.append(
            {
                "N": n,
                "line_crossing_nodes": cross_line,
                "sqrtN": round(math.sqrt(n), 1),
                "rect_crossing_nodes": stats.crossing_nodes,
                "rect_power_sum": round(stats.crossing_leaf_power_sum, 1),
                "power_bound": round(math.sqrt(n), 1),
                "cost": int(measured["cost"]),
            }
        )
        # Structural health gauges (Lemma 10) ride along in the snapshot.
        register(kd_crossing_report(tree), BENCH_METRICS)
    return rows


def test_f1_crossing_sensitivity(benchmark):
    rows = _rows()
    summarize_sweep(
        "f1_crossing",
        rows,
        [
            "N",
            "line_crossing_nodes",
            "sqrtN",
            "rect_crossing_nodes",
            "rect_power_sum",
            "power_bound",
            "cost",
        ],
        "F1 kd-tree crossing sensitivity (Lemma 10): both columns ~ sqrt(N)",
    )
    ns = [r["N"] for r in rows]
    line_slope = slope(ns, [r["line_crossing_nodes"] for r in rows])
    power_slope = slope(ns, [max(r["rect_power_sum"], 1) for r in rows])
    assert line_slope < 0.7, line_slope  # theory: 0.5
    assert power_slope < 0.8, power_slope  # theory: 0.5
    for row in rows:
        assert row["line_crossing_nodes"] <= 16 * row["sqrtN"]
        assert row["rect_power_sum"] <= 48 * row["power_bound"]

    ds = standard_dataset(SWEEP_OBJECTS[-1])
    index = OrpKwIndex(ds, k=_K)
    rect = Rect((0.2, 0.2), (0.8, 0.8))
    benchmark(lambda: index.query(rect, [1, 2]))

"""Experiment S2 — sharded fan-out serving: cost and degradation vs shards.

The S1 Zipf replay workload (hot query templates over a Zipf-keyword
dataset) is served through :class:`repro.service.ShardedQueryEngine` at
shard counts S = 1, 2, 4, 8 under a sweep of per-query budgets.  Measured
per (S, budget): total charged cost, fallbacks, queries with at least one
degraded slice, degraded slices, and the degradation *rate* (degraded
slices / total slices).  Two claims under test:

* **cost** — fan-out overhead is modest: every shard pays its own planner
  probes, so total cost grows mildly with S, while per-shard work (and
  therefore tail latency in a parallel deployment) shrinks;
* **degradation isolation** — under a tight budget a monolithic engine
  degrades whole queries; the sharded engine degrades only the slices whose
  share ran out, and answers stay exact either way (asserted against brute
  force on a sample).

``python benchmarks/bench_sharding.py --quick`` runs a tiny configuration
(CI smoke: no results file is written); the committed
``benchmarks/results/s2_sharding.txt`` comes from the full run.
"""

import random
import sys

from repro.costmodel import CostCounter
from repro.service import ShardedQueryEngine

from bench_engine import _zipf_workload
from common import standard_dataset, summarize_sweep
from repro.bench.reporting import format_table

SHARD_COUNTS = (1, 2, 4, 8)
BUDGETS = (None, 2048, 512, 128, 32)


def _serve(engine, workload, budget):
    counter = CostCounter()
    start = len(engine.records)
    engine.batch(workload, budget=budget, counter=counter)
    traces = engine.records[start:]
    slices = [s for t in traces for s in t.shards]
    return {
        "cost": counter.total,
        "fallbacks": sum(len(t.fallbacks) for t in traces),
        "degraded_queries": sum(1 for t in traces if t.degraded),
        "degraded_slices": sum(1 for s in slices if s["degraded"]),
        "slices": len(slices),
    }


def _sweep_rows(num_objects=2000, num_queries=80, shard_counts=SHARD_COUNTS,
                budgets=BUDGETS):
    dataset = standard_dataset(num_objects)
    workload = _zipf_workload(dataset, num_queries, seed=23)
    brute = [
        sorted(
            o.oid
            for o in dataset
            if rect.contains_point(o.point) and o.contains_keywords(words)
        )
        for rect, words in workload[:10]
    ]
    rows = []
    for shards in shard_counts:
        for budget in budgets:
            engine = ShardedQueryEngine(
                dataset, shards=shards, max_k=3, cache_size=0
            )
            served = _serve(engine, workload, budget)
            # Exactness survives sharding at every budget.
            for (rect, words), want in zip(workload[:10], brute):
                got = sorted(
                    o.oid for o in engine.query(rect, words, budget=budget)
                )
                assert got == want, (shards, budget, words)
            rows.append(
                {
                    "shards": shards,
                    "budget": budget if budget is not None else "inf",
                    "cost": served["cost"],
                    "fallbacks": served["fallbacks"],
                    "deg_queries": served["degraded_queries"],
                    "deg_slices": served["degraded_slices"],
                    "deg_rate_pct": round(
                        100.0 * served["degraded_slices"] / max(served["slices"], 1), 1
                    ),
                }
            )
    return rows


_COLUMNS = [
    "shards", "budget", "cost", "fallbacks",
    "deg_queries", "deg_slices", "deg_rate_pct",
]
_TITLE = "S2: sharded fan-out — cost and degradation rate vs shard count (Zipf replay)"


def _rows():
    return _sweep_rows()


def run(quick: bool = False) -> None:
    if quick:
        rows = _sweep_rows(
            num_objects=300, num_queries=20, shard_counts=(1, 2, 4),
            budgets=(None, 64),
        )
        # CI smoke: print only; the committed results file comes from the
        # full run.
        print()
        print(format_table(rows, columns=_COLUMNS, title=_TITLE + " [quick]"))
        return
    summarize_sweep("s2_sharding", _rows(), columns=_COLUMNS, title=_TITLE)


def test_sharding_bench_smoke(benchmark):
    """Wall-clock sanity check: one fanned-out batch at S=4."""
    dataset = standard_dataset(1000)
    workload = _zipf_workload(dataset, 30)
    engine = ShardedQueryEngine(dataset, shards=4, max_k=3, cache_size=256)
    engine.batch(workload)  # warm the cache

    benchmark(lambda: engine.batch(workload))


def test_sharding_differential_sample():
    """Spot check inside the bench harness: sharded == brute force."""
    rng = random.Random(5)
    dataset = standard_dataset(500)
    engine = ShardedQueryEngine(dataset, shards=4, max_k=3, cache_size=0)
    for _ in range(5):
        side = rng.choice([0.2, 0.5])
        a, c = rng.uniform(0, 1 - side), rng.uniform(0, 1 - side)
        from repro.geometry.rectangles import Rect

        rect = Rect((a, c), (a + side, c + side))
        words = rng.sample(range(1, 25), 2)
        got = sorted(o.oid for o in engine.query(rect, words, budget=16))
        want = sorted(
            o.oid
            for o in dataset
            if rect.contains_point(o.point) and o.contains_keywords(words)
        )
        assert got == want


if __name__ == "__main__":
    run(quick="--quick" in sys.argv[1:])

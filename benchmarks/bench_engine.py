"""Experiment S1 — the serving layer's cache and fallback behaviour.

A Zipf-keyword dataset is served through :class:`repro.service.QueryEngine`
under two regimes:

* **cold vs warm** — a skewed workload (Zipf over a query template pool, the
  shape of real traffic) is replayed twice; the warm pass should convert the
  repeated templates into cache hits and slash the charged cost.
* **budget sweep** — the same workload under progressively tighter per-query
  budgets; fallbacks and degraded serves should rise as the budget drops,
  while the engine never raises ``BudgetExceeded`` and the answers stay
  exact (asserted against brute force on a sample).
"""

import random

from repro.costmodel import CostCounter
from repro.geometry.rectangles import Rect
from repro.service import QueryEngine

from common import standard_dataset, summarize_sweep


def _zipf_workload(dataset, num_queries, num_templates=40, seed=11):
    """Queries drawn Zipf-style from a fixed template pool (hot queries repeat)."""
    rng = random.Random(seed)
    templates = []
    for _ in range(num_templates):
        side = rng.choice([0.1, 0.3, 0.6])
        a = rng.uniform(0, 1 - side)
        c = rng.uniform(0, 1 - side)
        rect = Rect((a, c), (a + side, c + side))
        words = rng.sample(range(1, 25), rng.randint(1, 3))
        templates.append((rect, words))
    # Zipf ranks: template i drawn with weight 1/(i+1).
    weights = [1.0 / (i + 1) for i in range(num_templates)]
    return [templates[rng.choices(range(num_templates), weights)[0]]
            for _ in range(num_queries)]


def _serve(engine, workload, budget):
    counter = CostCounter()
    start_records = len(engine.records)
    engine.batch(workload, budget=budget, counter=counter)
    traces = engine.records[start_records:]
    return {
        "cost": counter.total,
        "fallbacks": sum(len(t.fallbacks) for t in traces),
        "degraded": sum(1 for t in traces if t.degraded),
        "hits": sum(1 for t in traces if t.cache == "hit"),
    }


def _cold_warm_rows():
    rows = []
    for num_objects in (1000, 2000, 4000):
        dataset = standard_dataset(num_objects)
        workload = _zipf_workload(dataset, 120)
        engine = QueryEngine(dataset, max_k=3, cache_size=256)
        cold = _serve(engine, workload, budget=None)
        warm = _serve(engine, workload, budget=None)
        rows.append(
            {
                "objects": num_objects,
                "cold_cost": cold["cost"],
                "warm_cost": warm["cost"],
                "cold_hits": cold["hits"],
                "warm_hits": warm["hits"],
                "warm_hit_rate": round(warm["hits"] / len(workload), 2),
                "saving": round(1.0 - warm["cost"] / max(cold["cost"], 1), 2),
            }
        )
    return rows


def _budget_rows():
    dataset = standard_dataset(2000)
    workload = _zipf_workload(dataset, 80, seed=23)
    brute = [
        sorted(
            o.oid
            for o in dataset
            if rect.contains_point(o.point) and o.contains_keywords(words)
        )
        for rect, words in workload[:20]
    ]
    rows = []
    for budget in (None, 2048, 512, 128, 32):
        engine = QueryEngine(dataset, max_k=3, cache_size=0)  # isolate budgeting
        served = _serve(engine, workload, budget=budget)
        # Exactness survives every fallback/degradation.
        for (rect, words), want in zip(workload[:20], brute):
            got = sorted(o.oid for o in engine.query(rect, words, budget=budget))
            assert got == want, (budget, words)
        rows.append(
            {
                "budget": budget if budget is not None else "inf",
                "cost": served["cost"],
                "fallbacks": served["fallbacks"],
                "degraded": served["degraded"],
                "degraded_pct": round(100.0 * served["degraded"] / len(workload), 1),
            }
        )
    return rows


def run() -> None:
    summarize_sweep(
        "s1_engine_cache",
        _cold_warm_rows(),
        columns=[
            "objects", "cold_cost", "warm_cost", "cold_hits",
            "warm_hits", "warm_hit_rate", "saving",
        ],
        title="S1a: QueryEngine cache — replayed Zipf workload (120 queries)",
    )
    summarize_sweep(
        "s1_engine_budget",
        _budget_rows(),
        columns=["budget", "cost", "fallbacks", "degraded", "degraded_pct"],
        title="S1b: QueryEngine budget sweep — fallbacks instead of errors",
    )


def test_engine_bench_smoke(benchmark):
    """Wall-clock sanity check: one warm-cache batch."""
    dataset = standard_dataset(1000)
    workload = _zipf_workload(dataset, 30)
    engine = QueryEngine(dataset, max_k=3, cache_size=256)
    engine.batch(workload)  # warm the cache

    benchmark(lambda: engine.batch(workload))


if __name__ == "__main__":
    run()

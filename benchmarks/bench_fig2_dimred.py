"""Experiment F2 — type-1/type-2 nodes in the dimension-reduction tree
(Figure 2, Propositions 1-3).

Figure 2 shows a query tree of the §4 index: black type-1 nodes (x-range
swallowed by the query, answered by the secondary structure) and at most two
white type-2 nodes per level (partial overlap, pivot scans).  Propositions:

* P1 — the tree has O(log log N) levels;
* P3 — every fanout is O(N^(1-1/k));
* per-level type-2 counts never exceed two.

Measured here over growing N, plus a per-level breakdown at the largest
size.
"""

import math
import random

from repro.audit.probes import dim_reduction_report, register
from repro.core.dim_reduction import DimReductionOrpKw, DrStats
from repro.geometry.rectangles import Rect

from common import (
    BENCH_METRICS,
    SMALL_SWEEP_OBJECTS,
    measure_query,
    standard_dataset,
    summarize_sweep,
)


def _query_rect(rng):
    a, b = sorted([rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)])
    return Rect((a, 0.0, 0.0), (b, 1.0, 1.0))


def _rows():
    rows = []
    rng = random.Random(17)
    for num in SMALL_SWEEP_OBJECTS:
        ds = standard_dataset(num, dim=3)
        index = DimReductionOrpKw(ds, k=2)
        n = index.input_size
        worst_type2 = 0
        total_type1 = 0
        total_cost = 0
        for _ in range(8):
            stats = DrStats()
            rect = _query_rect(rng)
            measured = measure_query(
                lambda c: index.query(rect, [1, 2], counter=c, stats=stats)
            )
            total_cost += int(measured["cost"])
            for count in stats.type2_per_level.values():
                worst_type2 = max(worst_type2, count)
            total_type1 += stats.type1_nodes
        rows.append(
            {
                "N": n,
                "height": index.height(),
                "loglogN": round(math.log2(math.log2(n)), 2),
                "max_fanout": index.max_fanout(),
                "fanout_bound(8*sqrtN)": round(8 * math.sqrt(n)),
                "max_type2_per_level": worst_type2,
                "avg_type1_per_query": round(total_type1 / 8, 1),
                "avg_cost": round(total_cost / 8, 1),
            }
        )
        # Propositions 1-3 health gauges ride along in the metrics snapshot.
        register(dim_reduction_report(index), BENCH_METRICS)
    return rows


def _level_breakdown():
    rng = random.Random(23)
    ds = standard_dataset(SMALL_SWEEP_OBJECTS[-1], dim=3)
    index = DimReductionOrpKw(ds, k=2)
    stats = DrStats()
    index.query(_query_rect(rng), [1, 2], stats=stats)
    levels = sorted(set(stats.type1_per_level) | set(stats.type2_per_level))
    return [
        {
            "level": level,
            "type1_nodes": stats.type1_per_level.get(level, 0),
            "type2_nodes": stats.type2_per_level.get(level, 0),
        }
        for level in levels
    ]


def test_f2_node_types(benchmark):
    rows = _rows()
    summarize_sweep(
        "f2_node_types",
        rows,
        [
            "N",
            "height",
            "loglogN",
            "max_fanout",
            "fanout_bound(8*sqrtN)",
            "max_type2_per_level",
            "avg_type1_per_query",
            "avg_cost",
        ],
        "F2 dimension-reduction tree structure (Propositions 1-3)",
    )
    for row in rows:
        assert row["max_type2_per_level"] <= 2, row
        assert row["height"] <= row["loglogN"] + 3, row
        assert row["max_fanout"] <= row["fanout_bound(8*sqrtN)"] + 8, row

    breakdown = _level_breakdown()
    summarize_sweep(
        "f2_level_breakdown",
        breakdown,
        ["level", "type1_nodes", "type2_nodes"],
        "F2 per-level node types for one x-slab query (cf. Figure 2)",
    )
    for row in breakdown:
        assert row["type2_nodes"] <= 2

    ds = standard_dataset(SMALL_SWEEP_OBJECTS[-2], dim=3)
    index = DimReductionOrpKw(ds, k=2)
    rect = Rect((0.25, 0.0, 0.0), (0.75, 1.0, 1.0))
    benchmark(lambda: index.query(rect, [1, 2]))

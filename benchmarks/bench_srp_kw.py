"""Experiment T1.7 — SRP-KW (Corollary 6).

Paper claim: for d <= k-1 (covered here with d=1, k=2), O(N) space and
O(N^(1-1/k)(log N + OUT^(1/k))) query time; for d > k-1 (d=2, k=2) an extra
O(N^(1-1/(d+1))) geometric term.  Reduction: lift to d+1 dimensions where
the ball becomes a halfspace.

Measured here: both regimes, radius sweeps (OUT control), and the naive
baselines.
"""

from repro.core.baselines import KeywordsOnlyIndex
from repro.core.srp_kw import SrpKwIndex
from repro.costmodel import CostCounter

from common import (
    SMALL_SWEEP_OBJECTS,
    disjoint_pair_dataset,
    slope,
    standard_dataset,
    summarize_sweep,
    theory_bound,
)

_K = 2


def _sweep_rows(dim: int):
    rows = []
    for num in SMALL_SWEEP_OBJECTS:
        ds = disjoint_pair_dataset(num, dim=dim)
        index = SrpKwIndex(ds, k=_K)
        keywords = KeywordsOnlyIndex(ds)
        n = index.input_size
        center = (0.5,) * dim
        radius = 0.4
        c_idx, c_kw = CostCounter(), CostCounter()
        out = index.query(center, radius, [1, 2], counter=c_idx)
        keywords.query_predicate(
            lambda p: sum((a - b) ** 2 for a, b in zip(p, center)) <= radius**2,
            [1, 2],
            c_kw,
        )
        rows.append(
            {
                "N": n,
                "OUT": len(out),
                "index_cost": c_idx.total,
                "keywords_cost": c_kw.total,
                "kw_bound": round(theory_bound(n, _K, len(out), log_factor=True), 1),
                "geo_bound": round(n ** (1.0 - 1.0 / (dim + 1)), 1),
                "space/N": round(index.space_units / n, 2),
            }
        )
    return rows


def _radius_sweep_rows():
    rows = []
    ds = standard_dataset(4000)
    index = SrpKwIndex(ds, k=_K)
    n = index.input_size
    for radius in (0.05, 0.15, 0.3, 0.6):
        counter = CostCounter()
        out = index.query((0.5, 0.5), radius, [1, 2], counter=counter)
        bound = theory_bound(n, _K, len(out), log_factor=True)
        rows.append(
            {
                "radius": radius,
                "N": n,
                "OUT": len(out),
                "index_cost": counter.total,
                "bound": round(bound, 1),
                "cost/bound": round(counter.total / bound, 3),
            }
        )
    return rows


def test_t1_7_regime_d1(benchmark):
    rows = _sweep_rows(dim=1)
    summarize_sweep(
        "t1_7_d1",
        rows,
        ["N", "OUT", "index_cost", "keywords_cost", "kw_bound", "geo_bound", "space/N"],
        "T1.7 SRP-KW d=1 k=2 (d<=k-1 regime): OUT=0 sweep",
    )
    ns = [r["N"] for r in rows]
    index_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    naive_slope = slope(ns, [r["keywords_cost"] for r in rows])
    assert index_slope < naive_slope

    ds = disjoint_pair_dataset(SMALL_SWEEP_OBJECTS[-1], dim=1)
    index = SrpKwIndex(ds, k=_K)
    benchmark(lambda: index.query((0.5,), 0.4, [1, 2]))


def test_t1_7_regime_d2(benchmark):
    rows = _sweep_rows(dim=2)
    summarize_sweep(
        "t1_7_d2",
        rows,
        ["N", "OUT", "index_cost", "keywords_cost", "kw_bound", "geo_bound", "space/N"],
        "T1.7 SRP-KW d=2 k=2 (d>k-1 regime): the geometric term appears",
    )
    ns = [r["N"] for r in rows]
    index_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    assert index_slope < 0.95, index_slope

    ds = disjoint_pair_dataset(SMALL_SWEEP_OBJECTS[-2], dim=2)
    index = SrpKwIndex(ds, k=_K)
    benchmark(lambda: index.query((0.5, 0.5), 0.4, [1, 2]))


def test_t1_7_radius_sweep(benchmark):
    rows = _radius_sweep_rows()
    summarize_sweep(
        "t1_7_radius",
        rows,
        ["radius", "N", "OUT", "index_cost", "bound", "cost/bound"],
        "T1.7 SRP-KW d=2 k=2: radius sweep (cost tracks the bound)",
    )
    for row in rows:
        assert row["cost/bound"] < 30, row

    ds = standard_dataset(2000)
    index = SrpKwIndex(ds, k=_K)
    benchmark(lambda: index.query((0.5, 0.5), 0.3, [1, 2]))

"""Experiment T1.4 — RR-KW (Corollary 3).

Paper claim: O(N (loglog N)^(2d-2)) space, O(N^(1-1/k)(1+OUT^(1/k))) query
time, via the rectangle -> 2d-dimensional-point reduction.

Measured here: d = 1 (temporal documents) with the 2-D kd-tree index under
the hood, and d = 2 (geographic MBRs) with the 4-D dimension-reduction
index; both against the scan baselines.
"""

import random

from repro.core.baselines import NaiveRectangleIndex
from repro.core.rr_kw import RrKwIndex
from repro.costmodel import CostCounter
from repro.dataset import RectangleObject
from repro.intervaltree import IntervalTree

from common import SMALL_SWEEP_OBJECTS, slope, summarize_sweep, theory_bound

_K = 2


def _interval_instance(num: int, seed: int = 0):
    """Disjoint keyword populations of random lifespan intervals."""
    rng = random.Random(seed)
    rects = []
    for i in range(num):
        a = rng.uniform(0.0, 10.0)
        b = a + rng.uniform(0.0, 1.0)
        rects.append(
            RectangleObject(
                oid=i, lo=(a,), hi=(b,), doc=frozenset({1 if i % 2 == 0 else 2})
            )
        )
    return rects


def _box_instance(num: int, seed: int = 0):
    rng = random.Random(seed)
    rects = []
    for i in range(num):
        lo = (rng.uniform(0, 10), rng.uniform(0, 10))
        hi = (lo[0] + rng.uniform(0, 1), lo[1] + rng.uniform(0, 1))
        rects.append(
            RectangleObject(
                oid=i, lo=lo, hi=hi, doc=frozenset({1 if i % 2 == 0 else 2})
            )
        )
    return rects


def _interval_rows():
    rows = []
    for num in SMALL_SWEEP_OBJECTS:
        rects = _interval_instance(num)
        index = RrKwIndex(rects, k=_K)
        naive = NaiveRectangleIndex(rects)
        # The *fair* structured-only baseline: a classical interval tree
        # (O(log n + candidates)) followed by the keyword filter.
        itree = IntervalTree([(r.lo[0], r.hi[0]) for r in rects])
        n = index.input_size
        c_idx, c_it, c_kw = CostCounter(), CostCounter(), CostCounter()
        out = index.query((0.0,), (10.0,), [1, 2], counter=c_idx)
        hits = itree.overlap_query(0.0, 10.0, c_it)
        for i in hits:
            c_it.charge("structure_probes", 2)  # keyword filter per candidate
        naive.query_keywords((0.0,), (10.0,), [1, 2], c_kw)
        rows.append(
            {
                "N": n,
                "OUT": len(out),
                "index_cost": c_idx.total,
                "structured_cost": c_it.total,
                "keywords_cost": c_kw.total,
                "bound": round(theory_bound(n, _K, len(out)), 1),
                "space/N": round(index.space_units / n, 2),
            }
        )
    return rows


def _box_rows():
    rows = []
    for num in (500, 1000, 2000):
        rects = _box_instance(num)
        index = RrKwIndex(rects, k=_K)
        n = index.input_size
        counter = CostCounter()
        out = index.query((2.0, 2.0), (8.0, 8.0), [1, 2], counter=counter)
        rows.append(
            {
                "N": n,
                "OUT": len(out),
                "index_cost": counter.total,
                "bound": round(theory_bound(n, _K, len(out)), 1),
                "space/N": round(index.space_units / n, 2),
            }
        )
    return rows


def test_t1_4_intervals(benchmark):
    rows = _interval_rows()
    summarize_sweep(
        "t1_4_intervals",
        rows,
        [
            "N",
            "OUT",
            "index_cost",
            "structured_cost",
            "keywords_cost",
            "bound",
            "space/N",
        ],
        "T1.4 RR-KW d=1 k=2 (temporal documents): OUT=0 full-range sweep",
    )
    ns = [r["N"] for r in rows]
    index_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    naive_slope = slope(ns, [r["structured_cost"] for r in rows])
    assert index_slope < naive_slope
    assert rows[-1]["index_cost"] < rows[-1]["structured_cost"]

    rects = _interval_instance(SMALL_SWEEP_OBJECTS[-1])
    index = RrKwIndex(rects, k=_K)
    benchmark(lambda: index.query((0.0,), (10.0,), [1, 2]))


def test_t1_4_boxes(benchmark):
    rows = _box_rows()
    summarize_sweep(
        "t1_4_boxes",
        rows,
        ["N", "OUT", "index_cost", "bound", "space/N"],
        "T1.4 RR-KW d=2 k=2 (geographic MBRs via 4-D dimension reduction)",
    )
    for row in rows:
        assert row["index_cost"] <= 40 * row["bound"] + 40, row

    rects = _box_instance(1000)
    index = RrKwIndex(rects, k=_K)
    benchmark(lambda: index.query((2.0, 2.0), (8.0, 8.0), [1, 2]))

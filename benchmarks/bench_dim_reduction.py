"""Experiment T1.2 — ORP-KW, d >= 3 via dimension reduction (Theorem 2).

Paper claim: O(N (loglog N)^(d-2)) space, same O(N^(1-1/k)(1+OUT^(1/k)))
query time as d <= 2.

Measured here: 3-D query cost vs the Theorem-1 bound, space per unit vs the
log log N factor, and the structural propositions (height = O(loglog N),
fanout = O(N^(1-1/k))).
"""

import math

from repro.core.dim_reduction import DimReductionOrpKw
from repro.costmodel import CostCounter
from repro.geometry.rectangles import Rect

from common import (
    SMALL_SWEEP_OBJECTS,
    disjoint_pair_dataset,
    slope,
    standard_dataset,
    summarize_sweep,
    theory_bound,
)

_K = 2


def _sweep_rows():
    rows = []
    for num in SMALL_SWEEP_OBJECTS:
        ds = disjoint_pair_dataset(num, dim=3)
        index = DimReductionOrpKw(ds, k=_K)
        n = index.input_size
        counter = CostCounter()
        out = index.query(Rect.full(3), [1, 2], counter=counter)
        loglog = max(math.log2(math.log2(n)), 1.0)
        rows.append(
            {
                "N": n,
                "OUT": len(out),
                "index_cost": counter.total,
                "bound": round(theory_bound(n, _K, len(out)), 1),
                "space/(N*loglogN)": round(index.space_units / (n * loglog), 2),
                "height": index.height(),
                "max_fanout": index.max_fanout(),
                "fanout_bound": round(8 * n ** 0.5),
            }
        )
    return rows


def _selective_rows():
    rows = []
    ds = standard_dataset(4000, dim=3)
    index = DimReductionOrpKw(ds, k=_K)
    n = index.input_size
    for side in (0.2, 0.5, 1.0):
        rect = Rect(
            (0.5 - side / 2,) * 3,
            (0.5 + side / 2,) * 3,
        )
        counter = CostCounter()
        out = index.query(rect, [1, 2], counter=counter)
        bound = theory_bound(n, _K, len(out))
        rows.append(
            {
                "side": side,
                "N": n,
                "OUT": len(out),
                "index_cost": counter.total,
                "bound": round(bound, 1),
                "cost/bound": round(counter.total / bound, 3),
            }
        )
    return rows


def test_t1_2_scaling(benchmark):
    rows = _sweep_rows()
    summarize_sweep(
        "t1_2_dim_reduction",
        rows,
        [
            "N",
            "OUT",
            "index_cost",
            "bound",
            "space/(N*loglogN)",
            "height",
            "max_fanout",
            "fanout_bound",
        ],
        "T1.2 ORP-KW d=3 k=2 (dimension reduction): OUT=0 sweep",
    )
    ns = [r["N"] for r in rows]
    cost_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    assert cost_slope < 0.85, cost_slope
    for row in rows:
        assert row["height"] <= math.log2(math.log2(row["N"])) + 3
        assert row["max_fanout"] <= row["fanout_bound"] + 8
    space_factors = [r["space/(N*loglogN)"] for r in rows]
    assert max(space_factors) / min(space_factors) < 4.0

    ds = disjoint_pair_dataset(SMALL_SWEEP_OBJECTS[-1], dim=3)
    index = DimReductionOrpKw(ds, k=_K)
    benchmark(lambda: index.query(Rect.full(3), [1, 2]))


def test_t1_2_selective_queries(benchmark):
    rows = _selective_rows()
    summarize_sweep(
        "t1_2_selective",
        rows,
        ["side", "N", "OUT", "index_cost", "bound", "cost/bound"],
        "T1.2 ORP-KW d=3 k=2: shrinking query boxes (cost tracks the bound)",
    )
    for row in rows:
        assert row["cost/bound"] < 30, row

    ds = standard_dataset(2000, dim=3)
    index = DimReductionOrpKw(ds, k=_K)
    rect = Rect((0.25,) * 3, (0.75,) * 3)
    benchmark(lambda: index.query(rect, [1, 2]))

"""Experiment B1 — construction cost and space across the index family.

Not a paper table, but the number a downstream adopter asks first: what
does building each index cost?  All constructions here are
``O(N polylog N)`` time; the measured wall-clock slopes should sit close
to 1 on log-log sweeps, and space-per-unit should stay flat (modulo the
documented loglog factors).
"""

import time

from repro.core.dim_reduction import DimReductionOrpKw
from repro.core.lc_kw import SpKwIndex
from repro.core.orp_kw import OrpKwIndex
from repro.ksi.cohen_porat import KSetIndex
from repro.workloads.generators import adversarial_ksi_sets

from common import slope, standard_dataset, summarize_sweep


def _rows():
    rows = []
    for num in (1000, 2000, 4000, 8000):
        ds2 = standard_dataset(num, dim=2)
        ds3 = standard_dataset(num, dim=3)
        sets = adversarial_ksi_sets(12, max(num // 12, 10), planted=8, seed=1)

        timings = {}
        spaces = {}
        for name, builder in (
            ("orp_kw", lambda: OrpKwIndex(ds2, k=2)),
            ("sp_kw", lambda: SpKwIndex(ds2, k=2)),
            ("dim_red", lambda: DimReductionOrpKw(ds3, k=2)),
            ("kset", lambda: KSetIndex(sets, k=2)),
        ):
            start = time.perf_counter()
            index = builder()
            timings[name] = time.perf_counter() - start
            spaces[name] = index.space_units / index.input_size
        rows.append(
            {
                "N": ds2.total_doc_size,
                "orp_build_s": round(timings["orp_kw"], 3),
                "sp_build_s": round(timings["sp_kw"], 3),
                "dimred_build_s": round(timings["dim_red"], 3),
                "kset_build_s": round(timings["kset"], 3),
                "orp_space/N": round(spaces["orp_kw"], 2),
                "dimred_space/N": round(spaces["dim_red"], 2),
            }
        )
    return rows


def test_b1_build_scaling(benchmark):
    rows = _rows()
    summarize_sweep(
        "b1_build",
        rows,
        [
            "N",
            "orp_build_s",
            "sp_build_s",
            "dimred_build_s",
            "kset_build_s",
            "orp_space/N",
            "dimred_space/N",
        ],
        "B1 construction cost (wall clock) and space across the family",
    )
    ns = [r["N"] for r in rows]
    build_slope = slope(ns, [max(r["orp_build_s"], 1e-4) for r in rows])
    assert build_slope < 1.6, build_slope  # near-linear build
    space_factors = [r["orp_space/N"] for r in rows]
    assert max(space_factors) / min(space_factors) < 2.0

    ds = standard_dataset(2000)
    benchmark(lambda: OrpKwIndex(ds, k=2))

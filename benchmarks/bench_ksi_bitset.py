"""Experiment H2 — the word-parallel k-SI line (§2: [11, 27, 33]).

§2 splits prior k-SI work into two lines: word-parallel ``o(N)+O(OUT)``
indexes (Bille et al., Eppstein et al., Goodrich) and small-OUT-optimal
``O(N^(1-1/k)(1+OUT^(1/k)))`` indexes (Cohen-Porat and this paper).  The two
are incomparable: the bitset index always pays ``Θ(k N / wlen)`` word
operations, the tree index pays ``~N^(1-1/k)`` — so the bitset wins when OUT
is large relative to N, the tree wins when OUT is small.

Measured here: the crossover between the two on a planted-OUT sweep, plus
Goodrich's d = 1 interval variant against the Theorem-1 index.
"""

import math
import random

from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.geometry.rectangles import Rect
from repro.ksi.bitset import BitsetIntervalIndex, BitsetKSI
from repro.ksi.cohen_porat import KSetIndex
from repro.workloads.generators import adversarial_ksi_sets

from common import summarize_sweep


def _crossover_rows():
    rows = []
    set_size = 2000
    for planted in (0, 16, 128, 1024, 1900):
        sets = adversarial_ksi_sets(12, set_size, planted=planted, seed=4)
        tree = KSetIndex(sets, k=2)
        bits = BitsetKSI(sets)
        n = tree.input_size
        c_tree, c_bits = CostCounter(), CostCounter()
        out_tree = tree.report([0, 1], c_tree)
        out_bits = bits.report([0, 1], c_bits)
        assert out_tree == out_bits
        rows.append(
            {
                "N": n,
                "OUT": planted,
                "tree_cost": c_tree.total,
                "bitset_cost": c_bits.total,
                "tree_bound": round(math.sqrt(n) * (1 + math.sqrt(planted)), 1),
                "bitset_bound": c_bits["structure_probes"] + planted,
            }
        )
    return rows


def _interval_rows():
    rows = []
    rng = random.Random(6)
    for num in (2000, 4000, 8000):
        points = [(rng.uniform(0, 10),) for _ in range(num)]
        docs = [[1] if i % 2 == 0 else [2] for i in range(num)]
        ds = Dataset.from_points(points, docs)
        from repro.core.orp_kw import OrpKwIndex

        goodrich = BitsetIntervalIndex(ds)
        theorem1 = OrpKwIndex(ds, k=2)
        c_bits, c_tree = CostCounter(), CostCounter()
        out_bits = goodrich.query(0.0, 10.0, [1, 2], counter=c_bits)
        out_tree = theorem1.query(Rect((0.0,), (10.0,)), [1, 2], counter=c_tree)
        assert len(out_bits) == len(out_tree) == 0
        rows.append(
            {
                "N": ds.total_doc_size,
                "goodrich_cost": c_bits.total,
                "theorem1_cost": c_tree.total,
                "goodrich_words": c_bits["structure_probes"],
            }
        )
    return rows


def test_h2_bitset_vs_tree_crossover(benchmark):
    rows = _crossover_rows()
    summarize_sweep(
        "h2_crossover",
        rows,
        ["N", "OUT", "tree_cost", "bitset_cost", "tree_bound", "bitset_bound"],
        "H2 k-SI: small-OUT tree index vs word-parallel bitset index",
    )
    # Tree wins at OUT=0, bitset wins (or ties) at near-total overlap.
    assert rows[0]["tree_cost"] < rows[0]["bitset_cost"]
    dense = rows[-1]
    assert dense["bitset_cost"] <= dense["tree_cost"] * 4

    sets = adversarial_ksi_sets(12, 2000, planted=1024, seed=4)
    bits = BitsetKSI(sets)
    benchmark(lambda: bits.report([0, 1]))


def test_h2_goodrich_intervals(benchmark):
    rows = _interval_rows()
    summarize_sweep(
        "h2_goodrich",
        rows,
        ["N", "goodrich_cost", "theorem1_cost", "goodrich_words"],
        "H2 ORP-KW d=1: Goodrich word-RAM variant vs Theorem 1 (OUT=0)",
    )
    # Both must be strongly sublinear; the tree index is asymptotically
    # better at OUT=0 (constant vs N/wlen).
    for row in rows:
        assert row["goodrich_cost"] < row["N"] / 8
        assert row["theorem1_cost"] <= row["goodrich_cost"] + 8

    rng = random.Random(6)
    points = [(rng.uniform(0, 10),) for _ in range(4000)]
    docs = [[1] if i % 2 == 0 else [2] for i in range(4000)]
    ds = Dataset.from_points(points, docs)
    goodrich = BitsetIntervalIndex(ds)
    benchmark(lambda: goodrich.query(0.0, 10.0, [1, 2]))

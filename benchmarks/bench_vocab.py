"""Experiment W1 — query cost is governed by N, not by the vocabulary W.

The Table-1 bounds mention only ``N``, ``k`` and ``OUT`` — never ``W``,
the number of distinct keywords.  Sweep W at fixed N on the Theorem-1
index: query cost for a fixed-frequency keyword pair must stay flat while
the keywords-only baseline tracks the (shrinking) posting lists.
"""

from repro.core.baselines import KeywordsOnlyIndex
from repro.core.orp_kw import OrpKwIndex
from repro.costmodel import CostCounter
from repro.geometry.rectangles import Rect
from repro.workloads.generators import WorkloadConfig, zipf_dataset
from repro.workloads.queries import frequent_keywords

from common import summarize_sweep


def _rows():
    rows = []
    for vocab in (8, 32, 128, 512):
        config = WorkloadConfig(
            num_objects=6000,
            vocabulary=vocab,
            doc_min=1,
            doc_max=4,
            zipf_s=0.5,
            seed=5,
        )
        ds = zipf_dataset(config)
        index = OrpKwIndex(ds, k=2)
        keywords_only = KeywordsOnlyIndex(ds)
        words = frequent_keywords(ds, 2)
        n = index.input_size
        rect = Rect((0.3, 0.3), (0.7, 0.7))
        c_idx, c_kw = CostCounter(), CostCounter()
        out = index.query(rect, words, counter=c_idx)
        keywords_only.query_rect(rect, words, c_kw)
        rows.append(
            {
                "W": vocab,
                "N": n,
                "OUT": len(out),
                "index_cost": c_idx.total,
                "keywords_cost": c_kw.total,
                "space/N": round(index.space_units / n, 2),
            }
        )
    return rows


def test_w1_vocabulary_independence(benchmark):
    rows = _rows()
    summarize_sweep(
        "w1_vocab",
        rows,
        ["W", "N", "OUT", "index_cost", "keywords_cost", "space/N"],
        "W1 vocabulary sweep at fixed N (Table-1 bounds do not mention W)",
    )
    # Cost per reported object must not grow with W.
    unit_costs = [r["index_cost"] / max(r["OUT"], 1) for r in rows]
    assert max(unit_costs) / max(min(unit_costs), 1e-9) < 64, unit_costs
    spaces = [r["space/N"] for r in rows]
    assert max(spaces) / min(spaces) < 3.0

    config = WorkloadConfig(num_objects=4000, vocabulary=128, seed=5)
    ds = zipf_dataset(config)
    index = OrpKwIndex(ds, k=2)
    words = frequent_keywords(ds, 2)
    rect = Rect((0.3, 0.3), (0.7, 0.7))
    benchmark(lambda: index.query(rect, words))

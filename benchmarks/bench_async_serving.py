"""Experiment S3 — async serving: concurrent fan-out and mixed churn.

Two tables (core logic in :mod:`repro.bench.serving`, shared with the CLI's
``bench-serve`` subcommand):

* **fan-out wall-clock** — a selective-rectangle workload served through the
  sequential :class:`repro.service.ShardedQueryEngine` loop vs the
  concurrent :class:`repro.service.AsyncQueryEngine` fan-out, asserted
  result-identical per query.  The concurrent path's win comes from pruning
  shards whose bounding box misses the rectangle (the ``pruned_pct``
  column makes the source of the win explicit) plus worker-pool overlap on
  multi-core hosts.  Wall-clock — not cost units — is the honest metric for
  a concurrency layer, so this benchmark, unlike the cost experiments,
  times with ``time.perf_counter``.
* **mixed churn** — one writer streaming ``insert_many``/``delete`` batches
  against several concurrent snapshot readers over
  :class:`repro.service.AsyncDynamicIndex`; every read is oracle-checked
  against its pinned epoch's live set (an isolation violation raises, so a
  completed run certifies zero).

``python benchmarks/bench_async_serving.py --quick`` runs the CI smoke
configuration (no results file written); the committed
``benchmarks/results/s3_async_serving.txt`` comes from the full run.
"""

import sys

from repro.bench.reporting import format_table
from repro.bench.serving import bench_fanout, bench_mixed, run_serving_bench

from common import record

_FANOUT_COLUMNS = [
    "shards", "budget", "queries", "seq_ms", "conc_ms", "speedup", "pruned_pct",
]
_MIXED_COLUMNS = [
    "readers", "writes", "reads", "epochs", "live_objects", "elapsed_ms",
    "violations",
]
_TITLE = "S3: async serving — sequential vs concurrent fan-out (wall-clock)"
_MIXED_TITLE = "S3: mixed read/write churn under snapshot isolation"


def run(quick: bool = False) -> None:
    rows, mixed = run_serving_bench(quick=quick)
    fanout_table = format_table(
        rows, columns=_FANOUT_COLUMNS,
        title=_TITLE + (" [quick]" if quick else ""),
    )
    mixed_table = format_table(
        [mixed], columns=_MIXED_COLUMNS,
        title=_MIXED_TITLE + (" [quick]" if quick else ""),
    )
    if quick:
        # CI smoke: print only; the committed results file comes from the
        # full run.
        print()
        print(fanout_table)
        print()
        print(mixed_table)
        return
    record("s3_async_serving", fanout_table + "\n\n" + mixed_table)


def test_async_fanout_beats_sequential(benchmark):
    """Wall-clock check: the concurrent fan-out at S=4 on a selective load.

    The benchmark fixture times one full comparison row; the row itself
    asserts per-query result equality between the two paths.
    """
    row = benchmark(
        lambda: bench_fanout(600, 30, shards=4, budget=256, repeats=1)
    )
    assert row["pruned_pct"] > 0  # the selective load must actually prune


def test_mixed_churn_zero_violations():
    """A completed mixed run certifies zero isolation violations."""
    row = bench_mixed(num_objects=150, batches=6, batch_size=12)
    assert row["violations"] == 0
    assert row["reads"] > 0 and row["epochs"] > row["writes"]


if __name__ == "__main__":
    run(quick="--quick" in sys.argv[1:])

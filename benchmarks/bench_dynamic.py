"""Experiment D1 — dynamization overhead (extension; logarithmic method).

The Bentley–Saxe wrapper multiplies the static query bound by the O(log n)
live buckets and costs amortized O(log n) rebuild participations per
insertion.  Measured here: query overhead factor vs the equivalent static
index, and the amortized insertion cost in objects-rebuilt per insertion.
"""

import math
import random

from repro.core.dynamic import DynamicOrpKw
from repro.core.dynamize import (
    DynamicKeywordsOnly,
    DynamicLcKw,
    DynamicMultiKOrp,
    DynamicSrpKw,
)
from repro.core.orp_kw import OrpKwIndex
from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.rectangles import Rect

from common import summarize_sweep


def _rows():
    rows = []
    rng = random.Random(21)
    for num in (1000, 2000, 4000):
        points = [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(num)]
        docs = [
            frozenset(rng.sample(range(1, 17), rng.randint(1, 4)))
            for _ in range(num)
        ]
        dynamic = DynamicOrpKw(k=2, dim=2)
        for point, doc in zip(points, docs):
            dynamic.insert(point, doc)
        static = OrpKwIndex(Dataset.from_points(points, docs), k=2)

        rect = Rect((0.25, 0.25), (0.75, 0.75))
        c_dyn, c_static = CostCounter(), CostCounter()
        out_dyn = dynamic.query(rect, [1, 2], counter=c_dyn)
        out_static = static.query(rect, [1, 2], counter=c_static)
        assert len(out_dyn) == len(out_static)
        rows.append(
            {
                "n": num,
                "OUT": len(out_dyn),
                "dynamic_cost": c_dyn.total,
                "static_cost": c_static.total,
                "overhead": round(c_dyn.total / max(c_static.total, 1), 2),
                "log2(n)": round(math.log2(num), 1),
                "live_buckets": sum(1 for s in dynamic.bucket_sizes if s),
            }
        )
    return rows


def test_d1_dynamization_overhead(benchmark):
    rows = _rows()
    summarize_sweep(
        "d1_dynamic",
        rows,
        ["n", "OUT", "dynamic_cost", "static_cost", "overhead", "log2(n)", "live_buckets"],
        "D1 logarithmic-method dynamization: query overhead vs static",
    )
    for row in rows:
        # The overhead must stay within the O(log n) envelope.
        assert row["overhead"] <= row["log2(n)"] + 1, row
        assert row["live_buckets"] <= row["log2(n)"] + 1

    rng = random.Random(3)
    dynamic = DynamicOrpKw(k=2, dim=2)
    for _ in range(2000):
        dynamic.insert(
            (rng.uniform(0, 1), rng.uniform(0, 1)),
            frozenset(rng.sample(range(1, 17), 3)),
        )
    rect = Rect((0.25, 0.25), (0.75, 0.75))
    benchmark(lambda: dynamic.query(rect, [1, 2]))


# -- D2: the whole dynamized Table-1 family under one churn workload ----------

RECT = Rect((0.25, 0.25), (0.75, 0.75))
CONSTRAINTS = (HalfSpace((1.0, 0.0), 0.75), HalfSpace((0.0, 1.0), 0.75))

#: (family, constructor, query thunk, churn size).  The partition-tree
#: families (LC/SRP) rebuild sub-indexes from scratch on every carry merge,
#: so their churn sizes stay small; the inverted-index families take the
#: larger workload.
FAMILIES = (
    ("orp_kw", lambda: DynamicOrpKw(k=2, dim=2),
     lambda ix, c: ix.query(RECT, [1, 2], counter=c), 512),
    ("keywords_only", lambda: DynamicKeywordsOnly(dim=2),
     lambda ix, c: ix.query(RECT, [1, 2], counter=c), 512),
    ("multi_k_orp", lambda: DynamicMultiKOrp(dim=2, max_k=3),
     lambda ix, c: ix.query(RECT, [1, 2], counter=c), 512),
    ("lc_kw", lambda: DynamicLcKw(k=2, dim=2),
     lambda ix, c: ix.query(CONSTRAINTS, [1, 2], counter=c), 128),
    ("srp_kw", lambda: DynamicSrpKw(k=2, dim=2),
     lambda ix, c: ix.query((0.5, 0.5), 0.25, [1, 2], counter=c), 128),
)


def _churn(make_index, num, seed=29):
    """Seeded insert/delete mix (one delete per four inserts, warmed up)."""
    rng = random.Random(seed)
    index = make_index()
    live = []
    updates = 0
    for i in range(num):
        oid = index.insert(
            (rng.uniform(0, 1), rng.uniform(0, 1)),
            frozenset({1, 2} if i % 3 == 0 else rng.sample(range(3, 17), 3)),
        )
        live.append(oid)
        updates += 1
        if len(live) > 8 and i % 4 == 0:
            index.delete(live.pop(rng.randrange(len(live))))
            updates += 1
    return index, updates


def test_d2_dynamized_family_churn(benchmark):
    rows = []
    for name, make_index, run_query, num in FAMILIES:
        index, updates = _churn(make_index, num)
        counter = CostCounter()
        out = run_query(index, counter)
        snapshot = index.maintenance.snapshot()
        rows.append(
            {
                "family": name,
                "updates": updates,
                "live": len(index),
                "OUT": len(out),
                "query_cost": counter.total,
                "rebuilt/update": round(
                    snapshot["objects_examined"] / updates, 2
                ),
                "log2(n)": round(math.log2(len(index)), 1),
                "live_buckets": sum(1 for s in index.bucket_sizes if s),
            }
        )
    summarize_sweep(
        "d2_dynamized_families",
        rows,
        ["family", "updates", "live", "OUT", "query_cost",
         "rebuilt/update", "log2(n)", "live_buckets"],
        "D2 Bentley-Saxe across every dynamized Table-1 family",
    )
    for row in rows:
        # Amortized rebuild participations per update stay logarithmic, and
        # the ladder never holds more than ~log2(n) live levels.  The +2
        # absorbs delete-triggered half-dead rebuilds, which repack the full
        # live set on top of the insert carries.
        assert row["rebuilt/update"] <= row["log2(n)"] + 2, row
        assert row["live_buckets"] <= row["log2(n)"] + 1, row
        assert row["OUT"] > 0, row

    index, _ = _churn(lambda: DynamicOrpKw(k=2, dim=2), 512)
    benchmark(lambda: index.query(RECT, [1, 2]))

"""Experiment D1 — dynamization overhead (extension; logarithmic method).

The Bentley–Saxe wrapper multiplies the static query bound by the O(log n)
live buckets and costs amortized O(log n) rebuild participations per
insertion.  Measured here: query overhead factor vs the equivalent static
index, and the amortized insertion cost in objects-rebuilt per insertion.
"""

import math
import random

from repro.core.dynamic import DynamicOrpKw
from repro.core.orp_kw import OrpKwIndex
from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.geometry.rectangles import Rect

from common import summarize_sweep


def _rows():
    rows = []
    rng = random.Random(21)
    for num in (1000, 2000, 4000):
        points = [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(num)]
        docs = [
            frozenset(rng.sample(range(1, 17), rng.randint(1, 4)))
            for _ in range(num)
        ]
        dynamic = DynamicOrpKw(k=2, dim=2)
        for point, doc in zip(points, docs):
            dynamic.insert(point, doc)
        static = OrpKwIndex(Dataset.from_points(points, docs), k=2)

        rect = Rect((0.25, 0.25), (0.75, 0.75))
        c_dyn, c_static = CostCounter(), CostCounter()
        out_dyn = dynamic.query(rect, [1, 2], counter=c_dyn)
        out_static = static.query(rect, [1, 2], counter=c_static)
        assert len(out_dyn) == len(out_static)
        rows.append(
            {
                "n": num,
                "OUT": len(out_dyn),
                "dynamic_cost": c_dyn.total,
                "static_cost": c_static.total,
                "overhead": round(c_dyn.total / max(c_static.total, 1), 2),
                "log2(n)": round(math.log2(num), 1),
                "live_buckets": sum(1 for s in dynamic.bucket_sizes if s),
            }
        )
    return rows


def test_d1_dynamization_overhead(benchmark):
    rows = _rows()
    summarize_sweep(
        "d1_dynamic",
        rows,
        ["n", "OUT", "dynamic_cost", "static_cost", "overhead", "log2(n)", "live_buckets"],
        "D1 logarithmic-method dynamization: query overhead vs static",
    )
    for row in rows:
        # The overhead must stay within the O(log n) envelope.
        assert row["overhead"] <= row["log2(n)"] + 1, row
        assert row["live_buckets"] <= row["log2(n)"] + 1

    rng = random.Random(3)
    dynamic = DynamicOrpKw(k=2, dim=2)
    for _ in range(2000):
        dynamic.insert(
            (rng.uniform(0, 1), rng.uniform(0, 1)),
            frozenset(rng.sample(range(1, 17), 3)),
        )
    rect = Rect((0.25, 0.25), (0.75, 0.75))
    benchmark(lambda: dynamic.query(rect, [1, 2]))

"""Experiment T1.5 — L∞NN-KW (Corollary 4).

Paper claim: O(N (loglog N)^(d-2)) space and
O(N^(1-1/k) * t^(1/k) * log N) query time via binary search over candidate
radii with budgeted ORP-KW probes.

Measured here: cost vs the bound as N and t grow, against the linear-scan
baseline.
"""

import math

from repro.core.baselines import ScanAllNn, linf_distance
from repro.core.nn_linf import LinfNnIndex
from repro.costmodel import CostCounter

from common import SMALL_SWEEP_OBJECTS, slope, standard_dataset, summarize_sweep

_K = 2


def _bound(n: int, t: int) -> float:
    return n ** (1.0 - 1.0 / _K) * t ** (1.0 / _K) * math.log(max(n, 2))


def _n_sweep_rows():
    rows = []
    for num in SMALL_SWEEP_OBJECTS:
        ds = standard_dataset(num)
        index = LinfNnIndex(ds, k=_K)
        scan = ScanAllNn(ds)
        n = index.input_size
        q = (0.5, 0.5)
        c_idx, c_scan = CostCounter(), CostCounter()
        index.query(q, 4, [1, 2], counter=c_idx)
        scan.nearest(q, 4, [1, 2], linf_distance, counter=c_scan)
        bound = _bound(n, 4)
        rows.append(
            {
                "N": n,
                "t": 4,
                "index_cost": c_idx.total,
                "scan_cost": c_scan.total,
                "bound": round(bound, 1),
                "cost/bound": round(c_idx.total / bound, 3),
            }
        )
    return rows


def _t_sweep_rows():
    rows = []
    ds = standard_dataset(8000)
    index = LinfNnIndex(ds, k=_K)
    n = index.input_size
    q = (0.5, 0.5)
    for t in (1, 4, 16, 64):
        counter = CostCounter()
        found = index.query(q, t, [1, 2], counter=counter)
        bound = _bound(n, t)
        rows.append(
            {
                "N": n,
                "t": t,
                "found": len(found),
                "index_cost": counter.total,
                "bound": round(bound, 1),
                "cost/bound": round(counter.total / bound, 3),
            }
        )
    return rows


def test_t1_5_n_sweep(benchmark):
    rows = _n_sweep_rows()
    summarize_sweep(
        "t1_5_n_sweep",
        rows,
        ["N", "t", "index_cost", "scan_cost", "bound", "cost/bound"],
        "T1.5 L∞NN-KW k=2: N sweep at t=4 (index vs full scan)",
    )
    ns = [r["N"] for r in rows]
    index_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    scan_slope = slope(ns, [r["scan_cost"] for r in rows])
    assert index_slope < scan_slope, (index_slope, scan_slope)

    ds = standard_dataset(SMALL_SWEEP_OBJECTS[-1])
    index = LinfNnIndex(ds, k=_K)
    benchmark(lambda: index.query((0.5, 0.5), 4, [1, 2]))


def test_t1_5_t_sweep(benchmark):
    rows = _t_sweep_rows()
    summarize_sweep(
        "t1_5_t_sweep",
        rows,
        ["N", "t", "found", "index_cost", "bound", "cost/bound"],
        "T1.5 L∞NN-KW k=2: t sweep at fixed N (cost tracks t^(1/k))",
    )
    ratios = [r["cost/bound"] for r in rows]
    assert max(ratios) < 60, ratios

    ds = standard_dataset(4000)
    index = LinfNnIndex(ds, k=_K)
    benchmark(lambda: index.query((0.5, 0.5), 8, [1, 2]))

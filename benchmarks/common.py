"""Shared machinery for the benchmark suite.

Every benchmark measures RAM-model *cost units* (see DESIGN.md) against the
paper's predicted bound, prints an ASCII table, and appends the table to
``benchmarks/results/`` so the numbers recorded in EXPERIMENTS.md can be
regenerated.  A representative query additionally runs under
``pytest-benchmark`` for a wall-clock sanity check.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict, List, Sequence

from repro.audit.sweeps import measure_query as _measure_query
from repro.bench.reporting import format_table
from repro.dataset import Dataset
from repro.trace import MetricsRegistry
from repro.workloads.generators import (
    WorkloadConfig,
    disjoint_pair_dataset,
    planted_dataset,
    zipf_dataset,
)

__all__ = [
    "BENCH_METRICS",
    "RESULTS_DIR",
    "SMALL_SWEEP_OBJECTS",
    "SWEEP_OBJECTS",
    "disjoint_pair_dataset",
    "measure_query",
    "planted_out_dataset",
    "record",
    "slope",
    "standard_dataset",
    "summarize_sweep",
    "theory_bound",
]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-benchmark metrics accumulator: every measured query feeds its cost
#: distribution here, and :func:`record` snapshots it to
#: ``results/<name>.metrics.json`` next to the table, then resets it — so
#: each table file gets exactly the metrics of the queries behind it.
BENCH_METRICS = MetricsRegistry()

#: Object counts for the main N sweeps (input size N is ~2.5x this).
SWEEP_OBJECTS = (2000, 4000, 8000, 16000)
#: Smaller sweep for the expensive builds (dimension reduction, partition trees).
SMALL_SWEEP_OBJECTS = (1000, 2000, 4000, 8000)


def record(name: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/.

    Alongside the table, a JSON snapshot of :data:`BENCH_METRICS` (the cost
    distributions of every :func:`measure_query` call since the previous
    ``record``) lands in ``results/<name>.metrics.json``; the registry is
    then reset for the next benchmark.
    """
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")
    metrics_path = RESULTS_DIR / f"{name}.metrics.json"
    metrics_path.write_text(
        json.dumps(BENCH_METRICS.snapshot(), indent=2, sort_keys=True) + "\n"
    )
    BENCH_METRICS.reset()


def standard_dataset(num_objects: int, dim: int = 2, seed: int = 7) -> Dataset:
    """Zipf-keyword dataset used across the sweeps."""
    config = WorkloadConfig(
        num_objects=num_objects,
        dim=dim,
        vocabulary=48,
        doc_min=1,
        doc_max=4,
        zipf_s=1.0,
        seed=seed,
    )
    return zipf_dataset(config)


def planted_out_dataset(
    num_objects: int, out: int, dim: int = 2, seed: int = 5
) -> Dataset:
    """Dataset where exactly ``out`` objects match keywords {1, 2}."""
    return planted_dataset(
        num_objects,
        dim,
        keywords=[1, 2],
        planted_fraction=out / num_objects,
        seed=seed,
        vocabulary=48,
    )


def measure_query(fn) -> Dict[str, float]:
    """Run ``fn(counter)`` and return {'cost': units, 'out': len(result)}.

    Delegates to the audit subsystem's shared measurement hook
    (:func:`repro.audit.sweeps.measure_query`) with :data:`BENCH_METRICS` as
    the registry, so benchmark tables and ``audit run`` account cost
    identically; the next :func:`record` call snapshots the distribution of
    everything measured for its table.
    """
    measured = _measure_query(fn, registry=BENCH_METRICS)
    return {"cost": float(measured["cost"]["total"]), "out": float(measured["out"])}


def theory_bound(n: int, k: int, out: int, log_factor: bool = False) -> float:
    """``N^(1-1/k) * (c + OUT^(1/k))`` with c = log N when requested."""
    base = math.log(max(n, 2)) if log_factor else 1.0
    return n ** (1.0 - 1.0 / k) * (base + out ** (1.0 / k))


def slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    from repro.bench.harness import fit_loglog_slope

    return fit_loglog_slope(xs, ys)


def summarize_sweep(
    name: str,
    rows: List[Dict[str, float]],
    columns: Sequence[str],
    title: str,
) -> None:
    record(name, format_table(rows, columns=columns, title=title))

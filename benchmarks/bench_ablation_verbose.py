"""Experiment A3 — the verbose set is load-bearing (§3.2).

The framework builds the kd-tree on the *verbose* point set (each object
replicated ``|e.Doc|`` times) so that a node's document mass ``N_u`` is
bounded by its subtree size — tree balance then caps the large/small
machinery's work at every level.  Building on the plain object set instead
keeps the index *correct* (the transform never relies on the duplication
for correctness) but lets document-heavy regions hide Θ(N) of mass inside
small subtrees, inflating materialized scans.

Measured here: a skewed workload (10% of objects carry 10x documents,
packed into one corner) through both constructions.
"""

import random

from repro.core.transform import KeywordTransform, verbose_points
from repro.costmodel import CostCounter
from repro.dataset import Dataset, make_objects
from repro.geometry.rectangles import Rect
from repro.geometry.regions import RectRegion
from repro.kdtree import KdTree

from common import summarize_sweep


def _skewed_dataset(num: int, seed: int = 0) -> Dataset:
    """Heavy documents concentrated in one geometric corner."""
    rng = random.Random(seed)
    points, docs = [], []
    for i in range(num):
        if i % 10 == 0:
            points.append((rng.uniform(0.0, 0.1), rng.uniform(0.0, 0.1)))
            docs.append(rng.sample(range(1, 64), 20))
        else:
            points.append((rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)))
            docs.append(rng.sample(range(1, 64), 2))
    return Dataset(make_objects(points, docs))


def _build(dataset: Dataset, verbose: bool) -> KeywordTransform:
    if verbose:
        points = verbose_points(dataset.objects)
    else:
        points = [obj.point for obj in dataset.objects]
    lo = tuple(min(p[i] for p in points) - 1.0 for i in range(2))
    hi = tuple(max(p[i] for p in points) + 1.0 for i in range(2))
    tree = KdTree(points, leaf_size=1, root_cell=Rect(lo, hi))
    return KeywordTransform(dataset.objects, tree, k=2)


def _rows():
    rows = []
    for num in (1000, 2000, 4000):
        ds = _skewed_dataset(num)
        verbose = _build(ds, verbose=True)
        plain = _build(ds, verbose=False)
        region = RectRegion(Rect((0.0, 0.0), (0.12, 0.12)))  # the heavy corner
        costs = {}
        for name, transform in (("verbose", verbose), ("plain", plain)):
            counter = CostCounter()
            out = transform.query(region, [1, 2], counter=counter)
            costs[name] = (counter.total, len(out))
        assert costs["verbose"][1] == costs["plain"][1]  # identical answers
        rows.append(
            {
                "N": ds.total_doc_size,
                "OUT": costs["verbose"][1],
                "verbose_cost": costs["verbose"][0],
                "plain_cost": costs["plain"][0],
                "plain/verbose": round(
                    costs["plain"][0] / max(costs["verbose"][0], 1), 2
                ),
            }
        )
    return rows


def test_a3_verbose_set_ablation(benchmark):
    rows = _rows()
    summarize_sweep(
        "a3_verbose",
        rows,
        ["N", "OUT", "verbose_cost", "plain_cost", "plain/verbose"],
        "A3 verbose-set ablation (§3.2): plain-tree cost on skewed documents",
    )
    # The verbose construction must never lose, and should win visibly on
    # at least the largest size.
    for row in rows:
        assert row["verbose_cost"] <= row["plain_cost"] * 1.5 + 32, row

    ds = _skewed_dataset(4000)
    transform = _build(ds, verbose=True)
    region = RectRegion(Rect((0.0, 0.0), (0.12, 0.12)))
    benchmark(lambda: transform.query(region, [1, 2]))

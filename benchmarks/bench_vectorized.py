"""Experiment S4 — vectorized numpy backend vs the scalar cost-model path.

An intersection-heavy workload (the regime the fast path targets: the two
most frequent Zipf keywords, whose posting lists cover a large fraction of
the corpus, plus a selective rectangle) is served by
:class:`repro.core.baselines.KeywordsOnlyIndex` on both backends at a sweep
of corpus sizes.  Measured per N: wall-clock for the full query batch on
each backend and the speedup ratio.  Two claims under test:

* **oracle equivalence** — the vectorized path returns byte-identical
  object-id lists (asserted on every query of the sweep; the charged
  cost-model units are pinned separately by
  ``tests/fast/test_backend_oracle.py``);
* **throughput** — batched numpy execution wins at least 10x wall-clock at
  the largest corpus size (asserted in full mode; the committed
  ``benchmarks/results/s4_vectorized.txt`` records the measured numbers).

Wall-clock appears here *by design*: this is the one benchmark whose claim
is about real time, not cost units — the cost-model charges of the two
backends are identical by construction, so only the clock can tell them
apart.

``python benchmarks/bench_vectorized.py --quick`` runs a tiny configuration
(CI smoke: no results file is written); the committed results come from the
full run.
"""

import random
import sys
import time

from repro.core.baselines import KeywordsOnlyIndex
from repro.geometry.rectangles import Rect

from common import record, standard_dataset
from repro.bench.reporting import format_table

SWEEP_OBJECTS = (2000, 8000, 32000, 64000)
NUM_QUERIES = 40
#: Required speedup at the largest N of the full sweep.
HEADLINE_SPEEDUP = 10.0


def _workload(dataset, num_queries, seed=29):
    """Intersection-heavy queries: frequent keyword pairs, varied rects."""
    rng = random.Random(seed)
    frequencies = {}
    for obj in dataset.objects:
        for word in obj.doc:
            frequencies[word] = frequencies.get(word, 0) + 1
    common = sorted(frequencies, key=frequencies.get, reverse=True)[:5]
    queries = []
    for _ in range(num_queries):
        # Three frequent keywords -> long posting lists with per-candidate
        # membership probes dominating the scalar path; a selective rect
        # keeps the reported set (materialized object-by-object on both
        # backends) small relative to the intersection work.
        words = rng.sample(common, 3)
        side = rng.uniform(0.05, 0.25)
        a = rng.uniform(0, 1 - side)
        c = rng.uniform(0, 1 - side)
        queries.append((Rect((a, c), (a + side, c + side)), words))
    return queries


def _timed_batch(index, workload):
    """Serve the whole workload; return (seconds, per-query oid lists)."""
    start = time.perf_counter()
    answers = [
        [o.oid for o in index.query_rect(rect, words)] for rect, words in workload
    ]
    return time.perf_counter() - start, answers


def _sweep_rows(sweep_objects=SWEEP_OBJECTS, num_queries=NUM_QUERIES):
    rows = []
    for num_objects in sweep_objects:
        dataset = standard_dataset(num_objects)
        workload = _workload(dataset, num_queries)
        scalar = KeywordsOnlyIndex(dataset)
        vectorized = KeywordsOnlyIndex(dataset, backend="vectorized")
        vectorized._fast_backend()  # build the arrays outside the timed region
        scalar_s, scalar_answers = _timed_batch(scalar, workload)
        vector_s, vector_answers = _timed_batch(vectorized, workload)
        # Oracle equivalence on every query of the sweep.
        assert vector_answers == scalar_answers, num_objects
        rows.append(
            {
                "objects": num_objects,
                "queries": num_queries,
                "scalar_ms": round(1000.0 * scalar_s, 2),
                "vectorized_ms": round(1000.0 * vector_s, 2),
                "speedup": round(scalar_s / vector_s, 1),
            }
        )
    return rows


_COLUMNS = ["objects", "queries", "scalar_ms", "vectorized_ms", "speedup"]
_TITLE = (
    "S4: vectorized backend — wall-clock vs the scalar path "
    "(intersection-heavy Zipf workload)"
)


def run(quick: bool = False) -> None:
    if quick:
        rows = _sweep_rows(sweep_objects=(500, 1500), num_queries=8)
        # CI smoke: print only; the committed results file comes from the
        # full run.  No speedup floor — tiny corpora sit in the fixed-
        # overhead regime the auto backend routes around.
        print()
        print(format_table(rows, columns=_COLUMNS, title=_TITLE + " [quick]"))
        return
    rows = _sweep_rows()
    headline = rows[-1]["speedup"]
    assert headline >= HEADLINE_SPEEDUP, (
        f"headline speedup {headline}x below the {HEADLINE_SPEEDUP}x floor"
    )
    record("s4_vectorized", format_table(rows, columns=_COLUMNS, title=_TITLE))


def _headline_fixture(num_objects=8000):
    dataset = standard_dataset(num_objects)
    workload = _workload(dataset, 10)
    scalar = KeywordsOnlyIndex(dataset)
    vectorized = KeywordsOnlyIndex(dataset, backend="vectorized")
    vectorized._fast_backend()
    return scalar, vectorized, workload


def test_scalar_headline(benchmark):
    """Wall-clock baseline: the scalar cost-model path."""
    scalar, _vectorized, workload = _headline_fixture()
    benchmark(lambda: _timed_batch(scalar, workload))


def test_vectorized_headline(benchmark):
    """Wall-clock headline: the numpy fast path on the same workload."""
    _scalar, vectorized, workload = _headline_fixture()
    benchmark(lambda: _timed_batch(vectorized, workload))


def test_backends_agree_in_bench_harness():
    """Spot check inside the bench harness: vectorized == scalar."""
    scalar, vectorized, workload = _headline_fixture(num_objects=1000)
    _, want = _timed_batch(scalar, workload)
    _, got = _timed_batch(vectorized, workload)
    assert got == want


if __name__ == "__main__":
    run(quick="--quick" in sys.argv[1:])

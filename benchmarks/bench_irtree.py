"""Experiment E1 — the §2 framing: empirical indexes vs worst-case indexes.

"The past investigation has produced numerous indexes that perform well on
real data.  Nonetheless, surprisingly little progress has been achieved in
theory" (§1).  This benchmark makes that sentence quantitative with an
IR-tree [42] (the canonical system-community index) against the Theorem-1
index:

* on clustered, keyword-correlated data (the "real data" regime) the
  IR-tree's summary pruning is extremely effective — often beating the
  theoretical index's constants;
* on the adversarial disjoint-keyword instance the IR-tree's pruning never
  fires and its cost grows as Θ(N), while Theorem 1 stays at O(√N).
"""

from repro.core.orp_kw import OrpKwIndex
from repro.costmodel import CostCounter
from repro.geometry.rectangles import Rect
from repro.irtree import IrTree
from repro.workloads.generators import WorkloadConfig, zipf_dataset

from common import SWEEP_OBJECTS, disjoint_pair_dataset, slope, summarize_sweep


def _adversarial_rows():
    rows = []
    for num in SWEEP_OBJECTS:
        ds = disjoint_pair_dataset(num)
        irtree = IrTree(ds)
        theorem1 = OrpKwIndex(ds, k=2)
        n = theorem1.input_size
        c_ir, c_t1 = CostCounter(), CostCounter()
        out_ir = irtree.query(Rect.full(2), [1, 2], counter=c_ir)
        out_t1 = theorem1.query(Rect.full(2), [1, 2], counter=c_t1)
        assert out_ir == [] and out_t1 == []
        rows.append(
            {
                "N": n,
                "irtree_cost": c_ir.total,
                "theorem1_cost": c_t1.total,
                "sqrtN": round(n**0.5, 1),
            }
        )
    return rows


def _clustered_rows():
    rows = []
    for num in (2000, 4000, 8000):
        config = WorkloadConfig(num_objects=num, vocabulary=48, zipf_s=1.2, seed=13)
        ds = zipf_dataset(config, clustered=True)
        irtree = IrTree(ds)
        theorem1 = OrpKwIndex(ds, k=2)
        n = theorem1.input_size
        rect = Rect((0.35, 0.35), (0.65, 0.65))
        c_ir, c_t1 = CostCounter(), CostCounter()
        out_ir = irtree.query(rect, [2, 3], counter=c_ir)
        out_t1 = theorem1.query(rect, [2, 3], counter=c_t1)
        assert sorted(o.oid for o in out_ir) == sorted(o.oid for o in out_t1)
        rows.append(
            {
                "N": n,
                "OUT": len(out_ir),
                "irtree_cost": c_ir.total,
                "theorem1_cost": c_t1.total,
            }
        )
    return rows


def test_e1_adversarial_regime(benchmark):
    rows = _adversarial_rows()
    summarize_sweep(
        "e1_adversarial",
        rows,
        ["N", "irtree_cost", "theorem1_cost", "sqrtN"],
        "E1 adversarial data: IR-tree degrades to Θ(N), Theorem 1 stays flat",
    )
    ns = [r["N"] for r in rows]
    ir_slope = slope(ns, [r["irtree_cost"] for r in rows])
    t1_slope = slope(ns, [max(r["theorem1_cost"], 1) for r in rows])
    assert ir_slope > 0.8, ir_slope
    assert t1_slope < 0.6, t1_slope
    assert rows[-1]["theorem1_cost"] < rows[-1]["irtree_cost"] / 100

    ds = disjoint_pair_dataset(SWEEP_OBJECTS[-1])
    irtree = IrTree(ds)
    benchmark(lambda: irtree.query(Rect.full(2), [1, 2]))


def test_e1_clustered_regime(benchmark):
    rows = _clustered_rows()
    summarize_sweep(
        "e1_clustered",
        rows,
        ["N", "OUT", "irtree_cost", "theorem1_cost"],
        "E1 clustered correlated data: the IR-tree's home turf",
    )
    # Both must beat a full scan by a wide margin on friendly data.
    for row in rows:
        assert row["irtree_cost"] < row["N"] / 2
        assert row["theorem1_cost"] < row["N"] / 2

    config = WorkloadConfig(num_objects=4000, vocabulary=48, zipf_s=1.2, seed=13)
    ds = zipf_dataset(config, clustered=True)
    irtree = IrTree(ds)
    rect = Rect((0.35, 0.35), (0.65, 0.65))
    benchmark(lambda: irtree.query(rect, [2, 3]))

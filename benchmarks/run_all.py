"""Standalone experiment driver: regenerate every EXPERIMENTS.md table.

``pytest benchmarks/ --benchmark-only`` runs the same experiments with
assertions and wall-clock measurements; this script is the assertion-free
variant for quickly regenerating the tables (printed and written to
``benchmarks/results/``).

Run with:  python benchmarks/run_all.py [--quick] [experiment ...]

A failing experiment no longer aborts the run: every remaining experiment
still executes, each failure is reported as it happens, and one summary
error carrying all of them is raised at the end.  ``--quick`` shrinks the
shared sweep sizes in every benchmark module for a fast smoke pass.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import traceback

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import bench_ablation_kd3d
import bench_ablation_threshold
import bench_ablation_verbose
import bench_build
import bench_dim_reduction
import bench_dynamic
import bench_engine
import bench_fig1_crossing
import bench_fig2_dimred
import bench_irtree
import bench_ksi_bitset
import bench_ksi_hardness
import bench_lc_kw
import bench_nn_l2
import bench_nn_linf
import bench_orp_kw
import bench_planner
import bench_rr_kw
import bench_sharding
import bench_srp_kw
import bench_tradeoff
import bench_vocab
import common
from common import summarize_sweep

#: Every imported benchmark module, for --quick sweep-size patching.
_BENCH_MODULES = [
    module
    for name, module in sorted(sys.modules.items())
    if name == "common" or name.startswith("bench_")
]

#: Sweep sizes --quick substitutes for the shared full-size constants.
QUICK_SWEEP_OBJECTS = (1000, 2000, 4000)
QUICK_SMALL_SWEEP_OBJECTS = (500, 1000, 2000)


def apply_quick() -> None:
    """Shrink the shared sweep constants in common *and* every bench module.

    The bench scripts bind ``SWEEP_OBJECTS``/``SMALL_SWEEP_OBJECTS`` by
    ``from common import ...`` at import time, so patching ``common`` alone
    would not reach them — each module's own binding is rewritten too.
    """
    for module in _BENCH_MODULES:
        if hasattr(module, "SWEEP_OBJECTS"):
            module.SWEEP_OBJECTS = QUICK_SWEEP_OBJECTS
        if hasattr(module, "SMALL_SWEEP_OBJECTS"):
            module.SMALL_SWEEP_OBJECTS = QUICK_SMALL_SWEEP_OBJECTS

#: experiment id -> (row producer, result name, columns, title)
EXPERIMENTS = {
    "t1.1": [
        (bench_orp_kw._empty_out_rows, "t1_1_empty_out", None,
         "T1.1 ORP-KW d=2 k=2: OUT=0 adversarial sweep (index vs naives)"),
        (bench_orp_kw._planted_out_rows, "t1_1_planted_out", None,
         "T1.1 ORP-KW d=2 k=2: OUT sweep at fixed N"),
        (bench_orp_kw._k_sweep_rows, "t1_1_k_sweep", None,
         "T1.1 ORP-KW d=2: k sweep"),
    ],
    "t1.2": [
        (bench_dim_reduction._sweep_rows, "t1_2_dim_reduction", None,
         "T1.2 ORP-KW d=3 k=2 (dimension reduction): OUT=0 sweep"),
        (bench_dim_reduction._selective_rows, "t1_2_selective", None,
         "T1.2 ORP-KW d=3 k=2: shrinking query boxes"),
    ],
    "t1.3": [
        (bench_lc_kw._rect_route_rows, "t1_3_rect_route", None,
         "T1.3 ORP-KW answered by LC-KW"),
    ],
    "t1.4": [
        (bench_rr_kw._interval_rows, "t1_4_intervals", None,
         "T1.4 RR-KW d=1 k=2 (temporal documents)"),
        (bench_rr_kw._box_rows, "t1_4_boxes", None,
         "T1.4 RR-KW d=2 k=2 (geographic MBRs)"),
    ],
    "t1.5": [
        (bench_nn_linf._n_sweep_rows, "t1_5_n_sweep", None,
         "T1.5 L∞NN-KW k=2: N sweep at t=4"),
        (bench_nn_linf._t_sweep_rows, "t1_5_t_sweep", None,
         "T1.5 L∞NN-KW k=2: t sweep at fixed N"),
    ],
    "t1.6": [
        (lambda: bench_lc_kw._regime_rows(dim=2, k=2), "t1_6_d_le_k", None,
         "T1.6 LC-KW d=2 k=2 (d<=k regime)"),
        (lambda: bench_lc_kw._regime_rows(dim=3, k=2), "t1_6_d_gt_k", None,
         "T1.6 LC-KW d=3 k=2 (d>k regime)"),
        (bench_lc_kw._scheme_ablation_rows, "t1_6_scheme_ablation", None,
         "LC-KW partition-scheme ablation"),
    ],
    "t1.7": [
        (lambda: bench_srp_kw._sweep_rows(dim=1), "t1_7_d1", None,
         "T1.7 SRP-KW d=1 k=2"),
        (lambda: bench_srp_kw._sweep_rows(dim=2), "t1_7_d2", None,
         "T1.7 SRP-KW d=2 k=2"),
        (bench_srp_kw._radius_sweep_rows, "t1_7_radius", None,
         "T1.7 SRP-KW d=2 k=2: radius sweep"),
    ],
    "t1.8": [
        (bench_nn_l2._n_sweep_rows, "t1_8_n_sweep", None,
         "T1.8 L2NN-KW k=2: N sweep at t=4"),
        (bench_nn_l2._t_sweep_rows, "t1_8_t_sweep", None,
         "T1.8 L2NN-KW k=2: t sweep at fixed N"),
    ],
    "f1": [
        (bench_fig1_crossing._rows, "f1_crossing", None,
         "F1 kd-tree crossing sensitivity (Lemma 10)"),
    ],
    "f2": [
        (bench_fig2_dimred._rows, "f2_node_types", None,
         "F2 dimension-reduction tree structure (Propositions 1-3)"),
        (bench_fig2_dimred._level_breakdown, "f2_level_breakdown", None,
         "F2 per-level node types for one x-slab query"),
    ],
    "h1": [
        (bench_ksi_hardness._empty_rows, "h1_empty", None,
         "H1 k-SI k=2: empty intersections"),
        (bench_ksi_hardness._planted_rows, "h1_planted", None,
         "H1 k-SI k=2: OUT sweep"),
        (bench_ksi_hardness._k_rows, "h1_k_sweep", None,
         "H1 k-SI: k sweep"),
    ],
    "h2": [
        (bench_ksi_bitset._crossover_rows, "h2_crossover", None,
         "H2 k-SI: tree index vs word-parallel bitset index"),
        (bench_ksi_bitset._interval_rows, "h2_goodrich", None,
         "H2 ORP-KW d=1: Goodrich variant vs Theorem 1"),
    ],
    "e1": [
        (bench_irtree._adversarial_rows, "e1_adversarial", None,
         "E1 adversarial data: IR-tree vs Theorem 1"),
        (bench_irtree._clustered_rows, "e1_clustered", None,
         "E1 clustered correlated data"),
    ],
    "a1": [
        (bench_ablation_kd3d._rows, "a1_kd3d", None,
         "A1 ORP-KW d=3: kd-tree route vs Theorem 2"),
    ],
    "a2": [
        (bench_ablation_threshold._rows, "a2_threshold", None,
         "A2 large/small threshold multiplier sweep"),
    ],
    "d1": [
        (bench_dynamic._rows, "d1_dynamic", None,
         "D1 logarithmic-method dynamization"),
    ],
    "h3": [
        (bench_tradeoff._rows, "h3_tradeoff", None,
         "H3 threshold-exponent trade-off"),
    ],
    "a3": [
        (bench_ablation_verbose._rows, "a3_verbose", None,
         "A3 verbose-set ablation"),
    ],
    "p1": [
        (bench_planner._regime_rows, "p1_regimes", None,
         "P1 planner choice per regime"),
        (bench_planner._mixed_rows, "p1_mixed", None,
         "P1 mixed workload aggregate regret"),
    ],
    "b1": [
        (bench_build._rows, "b1_build", None,
         "B1 construction cost and space"),
    ],
    "s1": [
        (bench_engine._cold_warm_rows, "s1_engine_cache", None,
         "S1a QueryEngine cache — replayed Zipf workload"),
        (bench_engine._budget_rows, "s1_engine_budget", None,
         "S1b QueryEngine budget sweep — fallbacks instead of errors"),
    ],
    "s2": [
        (bench_sharding._rows, "s2_sharding", bench_sharding._COLUMNS,
         bench_sharding._TITLE),
    ],
    "w1": [
        (bench_vocab._rows, "w1_vocab", None,
         "W1 vocabulary sweep at fixed N"),
    ],
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate EXPERIMENTS.md tables (all by default)"
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="experiment",
        help=f"experiment ids to run (known: {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink every sweep for a fast smoke pass (tables still written)",
    )
    args = parser.parse_args(argv)

    requested = args.experiments if args.experiments else sorted(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; known: {sorted(EXPERIMENTS)}")
        return 2
    if args.quick:
        apply_quick()

    failures = []
    for name in requested:
        for producer, result_name, columns, title in EXPERIMENTS[name]:
            try:
                rows = producer()
                cols = columns or list(rows[0].keys())
                summarize_sweep(result_name, rows, cols, title)
            except Exception as exc:  # keep going; re-raise collected at end
                failures.append((name, result_name, exc))
                print(f"# FAILED {name}/{result_name}:", file=sys.stderr)
                traceback.print_exc()
                common.BENCH_METRICS.reset()  # don't leak into the next table
    if failures:
        summary = "; ".join(
            f"{name}/{result_name}: {type(exc).__name__}: {exc}"
            for name, result_name, exc in failures
        )
        raise RuntimeError(
            f"{len(failures)} of {sum(len(v) for v in EXPERIMENTS.values())} "
            f"experiment(s) failed: {summary}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

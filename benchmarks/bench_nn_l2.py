"""Experiment T1.8 — L2NN-KW (Corollary 7).

Paper claim: O(N) space (d <= k-1) and
O(log N * N^(1-1/k) * (log N + t^(1/k))) query time, via integer binary
search over squared radii with budgeted SRP-KW probes.

Measured here: cost vs bound as N and t grow, on the paper's integer-grid
domain, against the linear-scan baseline.
"""

import math
import random

from repro.core.baselines import ScanAllNn, l2_distance_squared
from repro.core.nn_l2 import L2NnIndex
from repro.costmodel import CostCounter
from repro.dataset import Dataset

from common import slope, summarize_sweep

_K = 2


def _grid_dataset(num: int, seed: int = 0) -> Dataset:
    rng = random.Random(seed)
    side = 512
    points = [
        (float(rng.randint(0, side)), float(rng.randint(0, side)))
        for _ in range(num)
    ]
    docs = [
        rng.sample(range(1, 9), rng.randint(1, 4)) for _ in range(num)
    ]
    return Dataset.from_points(points, docs)


def _bound(n: int, t: int) -> float:
    log_n = math.log(max(n, 2))
    return log_n * n ** (1.0 - 1.0 / _K) * (log_n + t ** (1.0 / _K))


def _n_sweep_rows():
    rows = []
    for num in (500, 1000, 2000, 4000):
        ds = _grid_dataset(num)
        index = L2NnIndex(ds, k=_K)
        scan = ScanAllNn(ds)
        n = index.input_size
        q = (256.0, 256.0)
        c_idx, c_scan = CostCounter(), CostCounter()
        index.query(q, 4, [1, 2], counter=c_idx)
        scan.nearest(q, 4, [1, 2], l2_distance_squared, counter=c_scan)
        bound = _bound(n, 4)
        rows.append(
            {
                "N": n,
                "t": 4,
                "index_cost": c_idx.total,
                "scan_cost": c_scan.total,
                "bound": round(bound, 1),
                "cost/bound": round(c_idx.total / bound, 3),
            }
        )
    return rows


def _t_sweep_rows():
    rows = []
    ds = _grid_dataset(3000)
    index = L2NnIndex(ds, k=_K)
    n = index.input_size
    q = (256.0, 256.0)
    for t in (1, 4, 16, 64):
        counter = CostCounter()
        found = index.query(q, t, [1, 2], counter=counter)
        bound = _bound(n, t)
        rows.append(
            {
                "N": n,
                "t": t,
                "found": len(found),
                "index_cost": counter.total,
                "bound": round(bound, 1),
                "cost/bound": round(counter.total / bound, 3),
            }
        )
    return rows


def test_t1_8_n_sweep(benchmark):
    rows = _n_sweep_rows()
    summarize_sweep(
        "t1_8_n_sweep",
        rows,
        ["N", "t", "index_cost", "scan_cost", "bound", "cost/bound"],
        "T1.8 L2NN-KW k=2 (integer grid): N sweep at t=4",
    )
    ns = [r["N"] for r in rows]
    index_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    scan_slope = slope(ns, [r["scan_cost"] for r in rows])
    assert index_slope < scan_slope + 0.15, (index_slope, scan_slope)

    ds = _grid_dataset(2000)
    index = L2NnIndex(ds, k=_K)
    benchmark(lambda: index.query((256.0, 256.0), 4, [1, 2]))


def test_t1_8_t_sweep(benchmark):
    rows = _t_sweep_rows()
    summarize_sweep(
        "t1_8_t_sweep",
        rows,
        ["N", "t", "found", "index_cost", "bound", "cost/bound"],
        "T1.8 L2NN-KW k=2: t sweep at fixed N",
    )
    ratios = [r["cost/bound"] for r in rows]
    assert max(ratios) < 60, ratios

    ds = _grid_dataset(1500)
    index = L2NnIndex(ds, k=_K)
    benchmark(lambda: index.query((256.0, 256.0), 8, [1, 2]))

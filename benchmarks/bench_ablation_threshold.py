"""Experiment A2 — the large/small threshold is load-bearing (§3.2).

The classification threshold N_u^(1-1/k) balances two costs: a *smaller*
threshold makes more keywords "large", pushing queries deeper into the tree
(more combo tables, more space); a *larger* threshold materializes more,
making small-keyword scans longer.  The paper's exponent is exactly the
point where the two sides meet the output-sensitive bound.

Measured here: query cost and space across threshold multipliers on a mixed
workload; the paper's choice (scale = 1) should sit at or near the sweet
spot of the cost x space trade-off.
"""

from repro.core.orp_kw import OrpKwIndex
from repro.costmodel import CostCounter
from repro.geometry.rectangles import Rect
from repro.workloads.queries import frequent_keywords

from common import standard_dataset, summarize_sweep


def _rows():
    rows = []
    ds = standard_dataset(8000)
    words_frequent = frequent_keywords(ds, 2)
    words_rare = frequent_keywords(ds, 2, offset=20)
    for scale in (0.25, 0.5, 1.0, 2.0, 4.0):
        index = OrpKwIndex(ds, k=2, threshold_scale=scale)
        n = index.input_size
        rect = Rect((0.25, 0.25), (0.75, 0.75))
        c_freq, c_rare = CostCounter(), CostCounter()
        out_f = index.query(rect, words_frequent, counter=c_freq)
        out_r = index.query(rect, words_rare, counter=c_rare)
        rows.append(
            {
                "scale": scale,
                "N": n,
                "freq_cost": c_freq.total,
                "freq_out": len(out_f),
                "rare_cost": c_rare.total,
                "rare_out": len(out_r),
                "space/N": round(index.space_units / n, 2),
            }
        )
    return rows


def test_a2_threshold_scale(benchmark):
    rows = _rows()
    summarize_sweep(
        "a2_threshold",
        rows,
        ["scale", "N", "freq_cost", "freq_out", "rare_cost", "rare_out", "space/N"],
        "A2 large/small threshold multiplier sweep (paper's choice: 1.0)",
    )
    by_scale = {r["scale"]: r for r in rows}
    paper = by_scale[1.0]
    # The paper's threshold must not be dominated on both metrics by any
    # other scale (i.e. it is on the cost/space Pareto frontier).
    for scale, row in by_scale.items():
        if scale == 1.0:
            continue
        strictly_better = (
            row["freq_cost"] < paper["freq_cost"]
            and row["rare_cost"] < paper["rare_cost"]
            and row["space/N"] < paper["space/N"]
        )
        assert not strictly_better, (scale, row, paper)

    ds = standard_dataset(4000)
    index = OrpKwIndex(ds, k=2)
    words = frequent_keywords(ds, 2)
    rect = Rect((0.25, 0.25), (0.75, 0.75))
    benchmark(lambda: index.query(rect, words))

"""Experiment P1 — the hybrid planner's regret across query regimes.

The planner races the fused index under a budget set by the cheapest naive
estimate (see :mod:`repro.core.planner`).  Measured here: planned cost vs
the per-query optimum on three regimes — naive-friendly (tiny posting
lists), structure-friendly (sliver rectangles), and fused-friendly
(adversarial disjoint keywords) — plus a mixed workload's aggregate regret.
"""

import random

from repro.core.planner import STRATEGIES, HybridPlanner
from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.geometry.rectangles import Rect
from repro.workloads.generators import WorkloadConfig, zipf_dataset

from common import summarize_sweep


def _strategy_cost(planner, strategy, rect, words):
    counter = CostCounter()
    planner.query_with(strategy, rect, words, counter=counter)
    return counter.total


def _regime_rows():
    rng = random.Random(31)
    rows = []

    # fused-friendly: adversarial disjoint keywords.
    points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(3000)]
    docs = [[1] if i % 2 == 0 else [2] for i in range(3000)]
    adversarial = HybridPlanner(Dataset.from_points(points, docs), k=2)
    # naive-friendly: one singleton keyword.
    docs2 = [[1, 2] for _ in range(2999)] + [[1, 9]]
    singleton = HybridPlanner(Dataset.from_points(points, docs2), k=2)
    # structure-friendly: sliver rectangle on uniform tags.
    docs3 = [[1, 2] for _ in range(3000)]
    sliver = HybridPlanner(Dataset.from_points(points, docs3), k=2)

    cases = [
        ("fused-friendly", adversarial, Rect.full(2), [1, 2]),
        ("posting-friendly", singleton, Rect.full(2), [1, 9]),
        ("rect-friendly", sliver, Rect((5.0, 5.0), (5.01, 5.01)), [1, 2]),
    ]
    for name, planner, rect, words in cases:
        counter = CostCounter()
        planner.query(rect, words, counter=counter)
        best = min(_strategy_cost(planner, s, rect, words) for s in STRATEGIES)
        rows.append(
            {
                "regime": name,
                "choice": planner.last_plan["choice"],
                "planned_cost": counter.total,
                "best_cost": best,
                "regret": round(counter.total / max(best, 1), 2),
            }
        )
    return rows


def _mixed_rows():
    rng = random.Random(77)
    config = WorkloadConfig(num_objects=3000, vocabulary=24, seed=7)
    planner = HybridPlanner(zipf_dataset(config), k=2)
    total_planned, total_best, fused_picks = 0, 0, 0
    queries = 25
    for _ in range(queries):
        side = rng.choice([0.05, 0.3, 0.8])
        a = rng.uniform(0, 1 - side)
        c = rng.uniform(0, 1 - side)
        rect = Rect((a, c), (a + side, c + side))
        words = rng.sample(range(1, 25), 2)
        counter = CostCounter()
        planner.query(rect, words, counter=counter)
        total_planned += counter.total
        if planner.last_plan["choice"] == "fused":
            fused_picks += 1
        total_best += min(
            _strategy_cost(planner, s, rect, words) for s in STRATEGIES
        )
    return [
        {
            "queries": queries,
            "planned_total": total_planned,
            "optimal_total": total_best,
            "aggregate_regret": round(total_planned / max(total_best, 1), 2),
            "fused_picks": fused_picks,
        }
    ]


def test_p1_planner_regret(benchmark):
    regime_rows = _regime_rows()
    summarize_sweep(
        "p1_regimes",
        regime_rows,
        ["regime", "choice", "planned_cost", "best_cost", "regret"],
        "P1 planner choice per regime (race: fused under a naive budget)",
    )
    by_regime = {r["regime"]: r for r in regime_rows}
    assert by_regime["fused-friendly"]["choice"] == "fused"
    for row in regime_rows:
        assert row["regret"] <= 4.0, row

    mixed_rows = _mixed_rows()
    summarize_sweep(
        "p1_mixed",
        mixed_rows,
        ["queries", "planned_total", "optimal_total", "aggregate_regret", "fused_picks"],
        "P1 mixed workload: aggregate regret vs the per-query optimum",
    )
    assert mixed_rows[0]["aggregate_regret"] <= 3.0

    rng = random.Random(1)
    config = WorkloadConfig(num_objects=2000, vocabulary=24, seed=7)
    planner = HybridPlanner(zipf_dataset(config), k=2)
    rect = Rect((0.2, 0.2), (0.8, 0.8))
    benchmark(lambda: planner.query(rect, [1, 2]))

"""Experiment A1 — why dimension reduction exists (§3.5 remark).

The kd-tree transformation "also works for d >= 3, but its conversion to
ORP-KW will suffer from a query time O(N^(1-1/max{k,d}) + ...)": in 3-D the
crossing sensitivity of a kd-tree is N^(2/3), worse than the keyword term
N^(1/2) at k = 2.  Theorem 2's dimension-reduction index restores
N^(1-1/k).

Measured here: the same 3-D workload through both constructions; the
kd-route cost should grow with a visibly larger exponent.
"""

from repro.core.dim_reduction import DimReductionOrpKw
from repro.core.orp_kw import OrpKwIndex
from repro.costmodel import CostCounter
from repro.geometry.rectangles import Rect

from common import SMALL_SWEEP_OBJECTS, slope, standard_dataset, summarize_sweep


def _rows():
    rows = []
    for num in SMALL_SWEEP_OBJECTS:
        ds = standard_dataset(num, dim=3)
        kd_route = OrpKwIndex(ds, k=2)  # §3.5: works, but degrades
        dr_route = DimReductionOrpKw(ds, k=2)
        n = kd_route.input_size
        rect = Rect((0.2,) * 3, (0.8,) * 3)
        c_kd, c_dr = CostCounter(), CostCounter()
        out_kd = kd_route.query(rect, [1, 2], counter=c_kd)
        out_dr = dr_route.query(rect, [1, 2], counter=c_dr)
        assert sorted(o.oid for o in out_kd) == sorted(o.oid for o in out_dr)
        rows.append(
            {
                "N": n,
                "OUT": len(out_kd),
                "kd_cost": c_kd.total,
                "dimred_cost": c_dr.total,
                "N^(2/3)": round(n ** (2 / 3), 1),
                "N^(1/2)": round(n ** 0.5, 1),
            }
        )
    return rows


def test_a1_kd_vs_dimension_reduction(benchmark):
    rows = _rows()
    summarize_sweep(
        "a1_kd3d",
        rows,
        ["N", "OUT", "kd_cost", "dimred_cost", "N^(2/3)", "N^(1/2)"],
        "A1 ORP-KW d=3 k=2: kd-tree route (§3.5 remark) vs Theorem 2",
    )
    ns = [r["N"] for r in rows]
    kd_slope = slope(ns, [max(r["kd_cost"], 1) for r in rows])
    dr_slope = slope(ns, [max(r["dimred_cost"], 1) for r in rows])
    # Output cost is shared; the structural gap still shows as a slope gap
    # or as a consistent constant-factor gap at the top size.
    assert dr_slope <= kd_slope + 0.15, (kd_slope, dr_slope)

    ds = standard_dataset(SMALL_SWEEP_OBJECTS[-1], dim=3)
    index = DimReductionOrpKw(ds, k=2)
    rect = Rect((0.2,) * 3, (0.8,) * 3)
    benchmark(lambda: index.query(rect, [1, 2]))

"""Experiment T1.1 — ORP-KW, d <= 2 (Theorem 1).

Paper claim: O(N) space and O(N^(1-1/k) * (1 + OUT^(1/k))) query time; the
two naive solutions pay Θ(candidates) instead.

Measured here:

* empty-output queries over a disjoint-keyword instance — cost must scale
  like N^(1-1/k) (log-log slope ~0.5 for k = 2) while both naives stay ~N;
* planted-output queries — the ratio cost / bound must stay ~constant as
  OUT grows;
* k ∈ {2, 3} — larger k flattens the advantage, as §1.2 predicts;
* space per input unit — must stay ~constant across N.
"""


from repro.core.baselines import KeywordsOnlyIndex, StructuredOnlyIndex
from repro.core.orp_kw import OrpKwIndex
from repro.costmodel import CostCounter
from repro.geometry.rectangles import Rect

from common import (
    SWEEP_OBJECTS,
    disjoint_pair_dataset,
    measure_query,
    planted_out_dataset,
    slope,
    summarize_sweep,
    theory_bound,
)

_K = 2


def _empty_out_rows():
    rows = []
    for num in SWEEP_OBJECTS:
        ds = disjoint_pair_dataset(num)
        index = OrpKwIndex(ds, k=_K)
        structured = StructuredOnlyIndex(ds)
        keywords = KeywordsOnlyIndex(ds)
        n = index.input_size
        rect = Rect.full(2)
        # measure_query feeds each run's per-category costs into
        # BENCH_METRICS, so the t1_1 tables get a metrics snapshot too.
        idx_m = measure_query(lambda c: index.query(rect, [1, 2], counter=c))
        st_m = measure_query(lambda c: structured.query_rect(rect, [1, 2], c))
        kw_m = measure_query(lambda c: keywords.query_rect(rect, [1, 2], c))
        rows.append(
            {
                "N": n,
                "index_cost": int(idx_m["cost"]),
                "structured_cost": int(st_m["cost"]),
                "keywords_cost": int(kw_m["cost"]),
                "bound": round(theory_bound(n, _K, 0), 1),
                "space/N": round(index.space_units / n, 2),
            }
        )
    return rows


def _planted_out_rows():
    rows = []
    num = 8000
    for out in (0, 16, 64, 256, 1024):
        ds = planted_out_dataset(num, out)
        index = OrpKwIndex(ds, k=_K)
        n = index.input_size
        measured = measure_query(
            lambda c: index.query(Rect.full(2), [1, 2], counter=c)
        )
        bound = theory_bound(n, _K, int(measured["out"]))
        rows.append(
            {
                "N": n,
                "OUT": int(measured["out"]),
                "index_cost": int(measured["cost"]),
                "bound": round(bound, 1),
                "cost/bound": round(measured["cost"] / bound, 3),
            }
        )
    return rows


def _k_sweep_rows():
    rows = []
    num = 8000
    ds = disjoint_pair_dataset(num)
    for k in (2, 3, 4):
        # Give each object k-1 of the first k keywords so no object has all.
        docs = [
            [w for w in range(1, k + 1) if w != 1 + (i % k)]
            for i in range(num)
        ]
        from repro.dataset import Dataset

        ds_k = Dataset.from_points([o.point for o in ds.objects], docs)
        index = OrpKwIndex(ds_k, k=k)
        n = index.input_size
        counter = CostCounter()
        out = index.query(Rect.full(2), list(range(1, k + 1)), counter=counter)
        bound = theory_bound(n, k, len(out))
        rows.append(
            {
                "k": k,
                "N": n,
                "OUT": len(out),
                "index_cost": counter.total,
                "bound": round(bound, 1),
                "cost/bound": round(counter.total / bound, 3),
            }
        )
    return rows


def test_t1_1_empty_output_scaling(benchmark):
    rows = _empty_out_rows()
    summarize_sweep(
        "t1_1_empty_out",
        rows,
        ["N", "index_cost", "structured_cost", "keywords_cost", "bound", "space/N"],
        "T1.1 ORP-KW d=2 k=2: OUT=0 adversarial sweep (index vs naives)",
    )
    ns = [r["N"] for r in rows]
    index_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    naive_slope = slope(ns, [r["keywords_cost"] for r in rows])
    assert index_slope < 0.80, index_slope  # theory: 0.5
    assert naive_slope > 0.85, naive_slope  # theory: 1.0
    # The index must beat both naives at the largest size.
    last = rows[-1]
    assert last["index_cost"] < last["structured_cost"]
    assert last["index_cost"] < last["keywords_cost"]

    ds = disjoint_pair_dataset(SWEEP_OBJECTS[-1])
    index = OrpKwIndex(ds, k=_K)
    benchmark(lambda: index.query(Rect.full(2), [1, 2]))


def test_t1_1_output_sensitivity(benchmark):
    rows = _planted_out_rows()
    summarize_sweep(
        "t1_1_planted_out",
        rows,
        ["N", "OUT", "index_cost", "bound", "cost/bound"],
        "T1.1 ORP-KW d=2 k=2: OUT sweep at fixed N (cost tracks the bound)",
    )
    ratios = [r["cost/bound"] for r in rows]
    assert max(ratios) / max(min(ratios), 1e-9) < 40, ratios

    ds = planted_out_dataset(8000, 256)
    index = OrpKwIndex(ds, k=_K)
    benchmark(lambda: index.query(Rect.full(2), [1, 2]))


def test_t1_1_k_sweep(benchmark):
    rows = _k_sweep_rows()
    summarize_sweep(
        "t1_1_k_sweep",
        rows,
        ["k", "N", "OUT", "index_cost", "bound", "cost/bound"],
        "T1.1 ORP-KW d=2: k sweep (advantage shrinks as k grows, §1.2)",
    )
    for row in rows:
        assert row["cost/bound"] < 30, row

    ds = disjoint_pair_dataset(4000)
    index = OrpKwIndex(ds, k=2)
    benchmark(lambda: index.query(Rect((0.2, 0.2), (0.8, 0.8)), [1, 2]))

"""Experiments T1.3 and T1.6 — LC-KW / SP-KW (Theorems 5 and 12).

Paper claims:

* d <= k: O(N) space, O(N^(1-1/k)(log N + OUT^(1/k))) query time (this
  also covers T1.3: ORP-KW through LC-KW with the rectangle expressed as
  2d linear constraints);
* d > k: O(N^(1-1/d) + N^(1-1/k) OUT^(1/k)) — the geometric crossing term
  takes over.

Measured here: both regimes against the naive solutions, the rectangle-as-
constraints route (T1.3), and the partition-scheme ablation (box vs
Willard).
"""


from repro.core.baselines import KeywordsOnlyIndex, StructuredOnlyIndex
from repro.core.lc_kw import LcKwIndex
from repro.costmodel import CostCounter
from repro.geometry.halfspaces import HalfSpace, rect_to_halfspaces
from repro.geometry.rectangles import Rect
from repro.partitiontree import WillardScheme

from common import (
    SMALL_SWEEP_OBJECTS,
    disjoint_pair_dataset,
    slope,
    standard_dataset,
    summarize_sweep,
    theory_bound,
)


def _diagonal_constraint(dim: int) -> HalfSpace:
    return HalfSpace((1.0,) * dim, 0.8 * dim / 2.0)


def _regime_rows(dim: int, k: int):
    rows = []
    for num in SMALL_SWEEP_OBJECTS:
        ds = disjoint_pair_dataset(num, dim=dim)
        index = LcKwIndex(ds, k=k)
        structured = StructuredOnlyIndex(ds)
        keywords = KeywordsOnlyIndex(ds)
        n = index.input_size
        constraint = _diagonal_constraint(dim)
        c_idx, c_st, c_kw = CostCounter(), CostCounter(), CostCounter()
        out = index.query([constraint], [1, 2][:k] if k == 2 else [1, 2, 3], counter=c_idx)
        words = [1, 2] if k == 2 else [1, 2, 3]
        structured.query_constraints([constraint], words, c_st)
        keywords.query_constraints([constraint], words, c_kw)
        bound_kw = theory_bound(n, k, len(out), log_factor=True)
        bound_geo = n ** (1.0 - 1.0 / dim)
        rows.append(
            {
                "N": n,
                "OUT": len(out),
                "index_cost": c_idx.total,
                "structured_cost": c_st.total,
                "keywords_cost": c_kw.total,
                "kw_bound": round(bound_kw, 1),
                "geo_bound": round(bound_geo, 1),
                "space/N": round(index.space_units / n, 2),
            }
        )
    return rows


def _rect_route_rows():
    """T1.3: ORP-KW answered through LC-KW (rectangle = 2d constraints)."""
    rows = []
    ds = standard_dataset(4000)
    index = LcKwIndex(ds, k=2)
    n = index.input_size
    for side in (0.2, 0.5, 0.9):
        rect = Rect((0.5 - side / 2,) * 2, (0.5 + side / 2,) * 2)
        constraints = list(rect_to_halfspaces(rect.lo, rect.hi))
        counter = CostCounter()
        out = index.query(constraints, [1, 2], counter=counter)
        bound = theory_bound(n, 2, len(out), log_factor=True)
        rows.append(
            {
                "side": side,
                "N": n,
                "OUT": len(out),
                "index_cost": counter.total,
                "bound": round(bound, 1),
                "cost/bound": round(counter.total / bound, 3),
            }
        )
    return rows


def _scheme_ablation_rows():
    rows = []
    ds = disjoint_pair_dataset(4000, dim=2)
    for name, scheme in (("kd-box", None), ("willard", WillardScheme())):
        index = LcKwIndex(ds, k=2, scheme=scheme)
        n = index.input_size
        counter = CostCounter()
        out = index.query([_diagonal_constraint(2)], [1, 2], counter=counter)
        rows.append(
            {
                "scheme": name,
                "N": n,
                "OUT": len(out),
                "index_cost": counter.total,
                "space/N": round(index.space_units / n, 2),
            }
        )
    return rows


def test_t1_6_regime_d_le_k(benchmark):
    rows = _regime_rows(dim=2, k=2)
    summarize_sweep(
        "t1_6_d_le_k",
        rows,
        [
            "N",
            "OUT",
            "index_cost",
            "structured_cost",
            "keywords_cost",
            "kw_bound",
            "geo_bound",
            "space/N",
        ],
        "T1.6 LC-KW d=2 k=2 (d<=k regime): OUT=0, one oblique constraint",
    )
    ns = [r["N"] for r in rows]
    index_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    keyword_slope = slope(ns, [r["keywords_cost"] for r in rows])
    assert index_slope < keyword_slope, (index_slope, keyword_slope)
    last = rows[-1]
    assert last["index_cost"] < last["keywords_cost"]

    ds = disjoint_pair_dataset(SMALL_SWEEP_OBJECTS[-1])
    index = LcKwIndex(ds, k=2)
    constraint = _diagonal_constraint(2)
    benchmark(lambda: index.query([constraint], [1, 2]))


def test_t1_6_regime_d_gt_k(benchmark):
    rows = _regime_rows(dim=3, k=2)
    summarize_sweep(
        "t1_6_d_gt_k",
        rows,
        [
            "N",
            "OUT",
            "index_cost",
            "structured_cost",
            "keywords_cost",
            "kw_bound",
            "geo_bound",
            "space/N",
        ],
        "T1.6 LC-KW d=3 k=2 (d>k regime): the geometric term takes over",
    )
    # Still sublinear, but allowed to exceed the pure keyword bound:
    ns = [r["N"] for r in rows]
    index_slope = slope(ns, [max(r["index_cost"], 1) for r in rows])
    assert index_slope < 0.95, index_slope

    ds = disjoint_pair_dataset(SMALL_SWEEP_OBJECTS[-2], dim=3)
    index = LcKwIndex(ds, k=2)
    constraint = _diagonal_constraint(3)
    benchmark(lambda: index.query([constraint], [1, 2]))


def test_t1_3_rectangles_through_lc(benchmark):
    rows = _rect_route_rows()
    summarize_sweep(
        "t1_3_rect_route",
        rows,
        ["side", "N", "OUT", "index_cost", "bound", "cost/bound"],
        "T1.3 ORP-KW answered by LC-KW (rectangle = 4 linear constraints)",
    )
    for row in rows:
        assert row["cost/bound"] < 30, row

    ds = standard_dataset(2000)
    index = LcKwIndex(ds, k=2)
    constraints = list(rect_to_halfspaces((0.3, 0.3), (0.7, 0.7)))
    benchmark(lambda: index.query(constraints, [1, 2]))


def test_partition_scheme_ablation(benchmark):
    rows = _scheme_ablation_rows()
    summarize_sweep(
        "t1_6_scheme_ablation",
        rows,
        ["scheme", "N", "OUT", "index_cost", "space/N"],
        "LC-KW partition-scheme ablation (kd-box vs Willard, DESIGN.md §1)",
    )
    for row in rows:
        assert row["index_cost"] < row["N"], row

    ds = disjoint_pair_dataset(2000)
    index = LcKwIndex(ds, k=2, scheme=WillardScheme())
    constraint = _diagonal_constraint(2)
    benchmark(lambda: index.query([constraint], [1, 2]))

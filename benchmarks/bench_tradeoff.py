"""Experiment H3 — the smooth space/query trade-off (§2, [38]).

§2: "Kopelowitz et al. explained how to achieve a smooth tradeoff between
space and query time, which captured the result of [23] as a special case."
The trade-off knob in the large/small recursion is the threshold exponent
``α``: large keywords are those with count ``>= N_u^α``.

Measured here: sweeping ``α`` on an adversarial 2-SI instance traces the
curve — query cost rises with ``α`` (empty intersections cost ``~N^α``)
while space falls.  The paper's ``α = 1 - 1/k`` is the point where query
time meets the output-sensitive optimum.
"""

from repro.costmodel import CostCounter
from repro.ksi.cohen_porat import KSetIndex
from repro.workloads.generators import adversarial_ksi_sets

from common import summarize_sweep


def _rows():
    rows = []
    sets = adversarial_ksi_sets(20, 1000, planted=0, seed=8)
    planted_sets = adversarial_ksi_sets(20, 1000, planted=64, seed=8)
    for alpha in (0.25, 0.4, 0.5, 0.65, 0.8):
        empty_index = KSetIndex(sets, k=2, threshold_exponent=alpha)
        planted_index = KSetIndex(planted_sets, k=2, threshold_exponent=alpha)
        n = empty_index.input_size
        c_empty, c_planted = CostCounter(), CostCounter()
        assert empty_index.report([0, 1], c_empty) == []
        out = planted_index.report([0, 1], c_planted)
        assert len(out) == 64
        rows.append(
            {
                "alpha": alpha,
                "N": n,
                "empty_cost": c_empty.total,
                "planted_cost": c_planted.total,
                "space/N": round(empty_index.space_units / n, 2),
                "N^alpha": round(n**alpha, 1),
            }
        )
    return rows


def test_h3_space_query_tradeoff(benchmark):
    rows = _rows()
    summarize_sweep(
        "h3_tradeoff",
        rows,
        ["alpha", "N", "empty_cost", "planted_cost", "space/N", "N^alpha"],
        "H3 threshold-exponent trade-off (paper's point: alpha = 1 - 1/k = 0.5)",
    )
    # Space decreases (weakly) as alpha grows; query cost tracks N^alpha.
    spaces = [r["space/N"] for r in rows]
    assert all(a >= b - 0.05 for a, b in zip(spaces, spaces[1:])), spaces
    for row in rows:
        assert row["empty_cost"] <= 16 * row["N^alpha"] + 16, row

    sets = adversarial_ksi_sets(20, 1000, planted=64, seed=8)
    index = KSetIndex(sets, k=2, threshold_exponent=0.5)
    benchmark(lambda: index.report([0, 1]))

"""Experiment H1 — the k-SI hardness frame (§1.2, Lemma 8).

§1.2 argues that keyword search *is* k-set intersection, that
O(N^(1-1/k)(1+OUT^(1/k))) is the right target, and that the naive hashing
index (O(N) query) is what everything improves on.  Appendix G's doubling
reduction turns a reporting index into the L∞NN tightness argument.

Measured here, on adversarial set families (§ workloads):

* the naive index pays Θ(set size) even when the intersection is empty;
* the direct KSetIndex (Cohen-Porat-style, §3.5) and the ORP-KW-backed
  reduction both hit the N^(1-1/k) shape;
* with planted intersections, cost grows like OUT^(1/k), not OUT.
"""

import math

from repro.costmodel import CostCounter
from repro.ksi.cohen_porat import KSetIndex
from repro.ksi.ksi_index import OrpBackedKsi
from repro.ksi.naive import NaiveKSI
from repro.workloads.generators import adversarial_ksi_sets

from common import slope, summarize_sweep


def _empty_rows():
    rows = []
    for set_size in (250, 500, 1000, 2000):
        sets = adversarial_ksi_sets(20, set_size, planted=0, seed=1)
        naive = NaiveKSI(sets)
        direct = KSetIndex(sets, k=2)
        backed = OrpBackedKsi(sets, k=2)
        n = naive.input_size
        c_naive, c_direct, c_backed = CostCounter(), CostCounter(), CostCounter()
        assert naive.report([0, 1], c_naive) == []
        assert direct.report([0, 1], c_direct) == []
        assert backed.report([0, 1], c_backed) == []
        rows.append(
            {
                "N": n,
                "naive_cost": c_naive.total,
                "kset_cost": c_direct.total,
                "orp_backed_cost": c_backed.total,
                "sqrtN": round(math.sqrt(n), 1),
            }
        )
    return rows


def _planted_rows():
    rows = []
    for planted in (0, 8, 32, 128, 512):
        sets = adversarial_ksi_sets(20, 1000, planted=planted, seed=2)
        direct = KSetIndex(sets, k=2)
        n = direct.input_size
        counter = CostCounter()
        out = direct.report([0, 1], counter)
        assert len(out) == planted
        bound = math.sqrt(n) * (1 + math.sqrt(planted))
        rows.append(
            {
                "N": n,
                "OUT": planted,
                "kset_cost": counter.total,
                "bound": round(bound, 1),
                "cost/bound": round(counter.total / bound, 3),
            }
        )
    return rows


def _k_rows():
    rows = []
    for k in (2, 3, 4):
        sets = adversarial_ksi_sets(max(8, k + 2), 800, planted=16, seed=3)
        direct = KSetIndex(sets, k=k)
        n = direct.input_size
        counter = CostCounter()
        out = direct.report(list(range(k)), counter)
        bound = n ** (1 - 1 / k) * (1 + 16 ** (1 / k))
        rows.append(
            {
                "k": k,
                "N": n,
                "OUT": len(out),
                "kset_cost": counter.total,
                "bound": round(bound, 1),
                "cost/bound": round(counter.total / bound, 3),
            }
        )
    return rows


def test_h1_empty_intersections(benchmark):
    rows = _empty_rows()
    summarize_sweep(
        "h1_empty",
        rows,
        ["N", "naive_cost", "kset_cost", "orp_backed_cost", "sqrtN"],
        "H1 k-SI k=2: empty intersections (naive Θ(N) vs both indexes)",
    )
    ns = [r["N"] for r in rows]
    naive_slope = slope(ns, [r["naive_cost"] for r in rows])
    kset_slope = slope(ns, [max(r["kset_cost"], 1) for r in rows])
    assert naive_slope > 0.8, naive_slope
    assert kset_slope < 0.6, kset_slope
    last = rows[-1]
    assert last["kset_cost"] < last["naive_cost"]
    assert last["orp_backed_cost"] < last["naive_cost"]

    sets = adversarial_ksi_sets(20, 2000, planted=0, seed=1)
    direct = KSetIndex(sets, k=2)
    benchmark(lambda: direct.report([0, 1]))


def test_h1_planted_intersections(benchmark):
    rows = _planted_rows()
    summarize_sweep(
        "h1_planted",
        rows,
        ["N", "OUT", "kset_cost", "bound", "cost/bound"],
        "H1 k-SI k=2: OUT sweep (cost tracks sqrt(N)(1+sqrt(OUT)))",
    )
    ratios = [r["cost/bound"] for r in rows]
    assert max(ratios) < 30, ratios

    sets = adversarial_ksi_sets(20, 1000, planted=128, seed=2)
    direct = KSetIndex(sets, k=2)
    benchmark(lambda: direct.report([0, 1]))


def test_h1_k_sweep(benchmark):
    rows = _k_rows()
    summarize_sweep(
        "h1_k_sweep",
        rows,
        ["k", "N", "OUT", "kset_cost", "bound", "cost/bound"],
        "H1 k-SI: k sweep (bound approaches Θ(N) as k grows, §1.2)",
    )
    for row in rows:
        assert row["cost/bound"] < 30, row

    sets = adversarial_ksi_sets(8, 800, planted=16, seed=3)
    direct = KSetIndex(sets, k=3)
    benchmark(lambda: direct.report([0, 1, 2]))

"""Index persistence: save a built index to disk, load it back.

Building the larger indexes is the expensive step (O(N log N) with real
constants), so a production deployment builds once and serves many
processes.  Every index in this library is a plain object graph with no
open resources, so serialization is pickle with an integrity envelope:

* a magic marker and format version (refuse foreign/stale files loudly);
* the library version that wrote the file (warn-level metadata);
* the class name of the stored index (refuse loading a SrpKwIndex where an
  OrpKwIndex is expected).

Security note (standard pickle caveat): only load index files you wrote.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Optional, Tuple, Type, Union

from .errors import ValidationError

#: File format magic + version. Bump the version on layout changes.
MAGIC = "repro-index"
FORMAT_VERSION = 1


def save_index(index, path) -> None:
    """Serialize ``index`` to ``path`` (parent directories must exist)."""
    from . import __version__

    envelope = {
        "magic": MAGIC,
        "format": FORMAT_VERSION,
        "library_version": __version__,
        "index_class": type(index).__name__,
        "index": index,
    }
    payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    Path(path).write_bytes(payload)


def load_index(path, expected_class: Optional[Union[Type, Tuple[Type, ...]]] = None):
    """Load an index written by :func:`save_index`.

    Parameters
    ----------
    path:
        File to read.
    expected_class:
        If given, the stored index must be an instance of this class (or of
        one of them, when a tuple of classes is supplied — e.g. the CLI's
        serving commands accept both engine kinds).
    """
    raw = Path(path).read_bytes()
    try:
        envelope = pickle.loads(raw)
    except Exception as exc:
        raise ValidationError(f"not a repro index file: {path}") from exc
    if not isinstance(envelope, dict) or envelope.get("magic") != MAGIC:
        raise ValidationError(f"not a repro index file: {path}")
    if envelope.get("format") != FORMAT_VERSION:
        raise ValidationError(
            f"index file format {envelope.get('format')} unsupported "
            f"(this library reads format {FORMAT_VERSION})"
        )
    index = envelope["index"]
    if expected_class is not None and not isinstance(index, expected_class):
        if isinstance(expected_class, tuple):
            wanted = " or ".join(cls.__name__ for cls in expected_class)
        else:
            wanted = expected_class.__name__
        raise ValidationError(
            f"expected a {wanted}, file holds a "
            f"{envelope.get('index_class')}"
        )
    return index

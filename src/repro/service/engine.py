"""The budget-bounded query engine.

:class:`QueryEngine` is the single entry point a deployment talks to.  It
owns a :class:`~repro.core.multi_k.MultiKOrpIndex` (one Theorem-1 index per
keyword count), one :class:`~repro.core.planner.HybridPlanner` per ``k``
(sharing the fused indexes, inverted index, and baselines — nothing is built
twice), an LRU result cache, and a lifetime cost counter.

Execution contract
------------------
Every query runs the planner's strategies **cheapest estimate first**, each
under the per-query budget.  A strategy that raises
:class:`~repro.errors.BudgetExceeded` is abandoned — its spent units are
still accounted — and the next strategy takes over, recorded as a fallback.
If every strategy blows the budget, the cheapest one is re-run *unbudgeted*
(the query is served no matter what; the record is marked ``degraded``).
``BudgetExceeded`` therefore never escapes the engine; the per-query
:class:`QueryRecord` is the observable trace of what happened.

All strategies are exact, so fallbacks and degradation never change the
answer — only the cost of producing it.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..costmodel import CATEGORIES, CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_nonempty_keywords
from ..errors import BudgetExceeded, ValidationError
from ..geometry.rectangles import Rect
from ..core.baselines import KeywordsOnlyIndex, StructuredOnlyIndex
from ..core.multi_k import MultiKOrpIndex
from ..core.planner import HybridPlanner
from ..telemetry.events import EventLog
from ..telemetry.quantiles import StatsCollector
from ..trace import MetricsRegistry, Tracer, span_for

#: A query as the batch API accepts it: a (rect, keywords) pair, where the
#: rectangle may be a Rect or a flat [lo..., hi...] coordinate list.
QuerySpec = Tuple[Union[Rect, Sequence[float]], Sequence[int]]


@dataclass
class QueryRecord:
    """Per-query observability record (JSON-safe via :meth:`to_dict`)."""

    query_id: int
    rect_lo: Tuple[float, ...]
    rect_hi: Tuple[float, ...]
    keywords: Tuple[int, ...]
    strategy: str
    cache: str  # "hit" | "miss" | "bypass"
    budget: Optional[int]
    #: Which execution backend served the query ("cost_model" or
    #: "vectorized"; for an ``auto`` engine this is the resolved choice).
    backend: str = "cost_model"
    degraded: bool = False
    fallbacks: List[Dict[str, Any]] = field(default_factory=list)
    cost: Dict[str, int] = field(default_factory=dict)
    estimates: Dict[str, float] = field(default_factory=dict)
    result_count: int = 0
    #: Per-shard slices of a fanned-out query (sharded serving only): each
    #: entry is {shard_id, strategy, budget, cost, degraded}.  Empty for a
    #: single-engine serve.
    shards: List[Dict[str, Any]] = field(default_factory=list)
    #: Finished span tree (:meth:`~repro.trace.TraceSpan.to_dict`) when the
    #: serving engine ran with tracing enabled; ``None`` otherwise.
    trace: Optional[Dict[str, Any]] = None
    #: Why a query was refused without being served (admission-control
    #: shedding in the async front end, e.g. ``"shed:admission"``); ``None``
    #: for every served query.
    reason: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON rendering of the record."""
        return {
            "query_id": self.query_id,
            "rect": {"lo": list(self.rect_lo), "hi": list(self.rect_hi)},
            "keywords": list(self.keywords),
            "strategy": self.strategy,
            "cache": self.cache,
            "budget": self.budget,
            # getattr: records unpickled from pre-vectorized-backend
            # snapshots lack the field entirely.
            "backend": getattr(self, "backend", "cost_model"),
            "degraded": self.degraded,
            "fallbacks": list(self.fallbacks),
            "cost": dict(self.cost),
            "estimates": dict(self.estimates),
            "result_count": self.result_count,
            "shards": [dict(s) for s in self.shards],
            "trace": self.trace,
            # getattr: records unpickled from pre-async-serving snapshots
            # lack the field entirely.
            "reason": getattr(self, "reason", None),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class QueryEngine:
    """Budget-bounded, cached, observable serving layer.

    Parameters
    ----------
    dataset:
        The corpus.  An explicitly empty dataset (:meth:`Dataset.empty`) is
        served too: every query validates and reports nothing.
    max_k:
        Serve queries with ``1..max_k`` distinct keywords.
    default_budget:
        Per-query cost budget (cost-model units) applied when a call does not
        pass its own; ``None`` means unbudgeted.
    cache_size:
        LRU result-cache capacity; ``0`` disables caching.
    keep_records:
        How many most-recent :class:`QueryRecord` traces to retain.
    tracing:
        When true every served query builds a :class:`~repro.trace.Tracer`
        span tree, attached to its :class:`QueryRecord` as ``record.trace``.
        Tracing never changes the charged cost in any category.
    metrics:
        A :class:`~repro.trace.MetricsRegistry` to feed; by default every
        engine owns a private registry (no cross-engine sharing).  Pass
        :data:`repro.trace.GLOBAL_REGISTRY` (or any shared registry) to
        aggregate across engines.
    events:
        A :class:`~repro.telemetry.EventLog` to emit structured serving
        events into (``query_finish``, ``query_degraded``, ``cache_evict``);
        ``None`` (the default) disables event emission.  Share one log
        across the serving stack for a single total event order.
    """

    def __init__(
        self,
        dataset: Optional[Dataset],
        max_k: int = 4,
        default_budget: Optional[int] = None,
        cache_size: int = 128,
        sample_size: int = 256,
        seed: int = 0,
        keep_records: int = 1024,
        tracing: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        backend: str = "cost_model",
        dynamic_index=None,
        events: Optional[EventLog] = None,
    ):
        from ..fast import VectorizedBackend, validate_backend
        from .cache import LRUCache

        if default_budget is not None and default_budget < 1:
            raise ValidationError(f"default_budget must be >= 1, got {default_budget}")
        if keep_records < 1:
            raise ValidationError(f"keep_records must be >= 1, got {keep_records}")
        self.backend = validate_backend(backend, allow_auto=True)
        self._dynamic = dynamic_index
        if dynamic_index is not None:
            # Dynamic serving: the engine fronts a DynamicOrpKw — every
            # query runs the "dynamic" strategy against the currently
            # published epoch, and cache entries are keyed by epoch id so a
            # publish can never serve a stale pre-write result.
            if dataset is not None and dataset.objects:
                raise ValidationError(
                    "pass dataset=None when serving a dynamic_index "
                    "(the engine reads the published epochs, not a static corpus)"
                )
            if backend != "cost_model":
                raise ValidationError(
                    "dynamic_index engines serve the instrumented dynamic "
                    "path; backend must be 'cost_model'"
                )
            dataset = Dataset.empty(dynamic_index.dim)
            max_k = dynamic_index.k
        elif dataset is None:
            raise ValidationError("dataset is required without a dynamic_index")
        self.dataset = dataset
        self.max_k = max_k
        self.default_budget = default_budget
        self.tracing = tracing
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events = events
        #: Per-(strategy, backend) running statistics — the planner feed.
        self.stats_collector = StatsCollector()
        self.counter = CostCounter()  # engine-lifetime aggregate
        self._cache = LRUCache(cache_size)
        self._records: Deque[QueryRecord] = deque(maxlen=keep_records)
        self._queries_served = 0
        self._strategy_counts: Dict[str, int] = {}
        self._fallback_count = 0
        self._degraded_count = 0
        # The numpy mirror used for vectorized keywords-only execution.
        # Built eagerly (it is cheap relative to the fused indexes below) so
        # the first query does not pay a hidden build cost.
        self._fast = (
            VectorizedBackend(dataset)
            if dataset.objects and self.backend != "cost_model"
            else None
        )

        if dataset.objects:
            self._index: Optional[MultiKOrpIndex] = MultiKOrpIndex(dataset, max_k)
            inverted = self._index.inverted
            self._structured: Optional[StructuredOnlyIndex] = StructuredOnlyIndex(
                dataset
            )
            self._keywords = KeywordsOnlyIndex(dataset, inverted=inverted)
            self._planners: Dict[int, HybridPlanner] = {
                k: HybridPlanner(
                    dataset,
                    k,
                    sample_size=sample_size,
                    seed=seed,
                    fused_index=self._index.fused_for(k),
                    inverted=inverted,
                    structured=self._structured,
                    keywords_index=self._keywords,
                )
                for k in range(2, max_k + 1)
            }
            self._inverted = inverted
        else:
            self._index = None
            self._structured = None
            self._keywords = None
            self._planners = {}
            self._inverted = None

    def __getstate__(self) -> Dict[str, Any]:
        # The array mirror is derived state: rebuild after unpickling
        # instead of bloating index files with numpy blocks.  The event log
        # is a live operational attachment (often shared across engines):
        # persisting it would duplicate the shared log per saved engine.
        state = dict(self.__dict__)
        state["_fast"] = None
        state["_events"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        # Engines pickled before the trace layer existed lack these fields;
        # default them so old index files keep serving (and stats()) cleanly.
        self.__dict__.update(state)
        self.__dict__.setdefault("tracing", False)
        if self.__dict__.get("metrics") is None:
            self.metrics = MetricsRegistry()
        # Engines pickled before the vectorized backend / dynamic serving.
        self.__dict__.setdefault("backend", "cost_model")
        self.__dict__.setdefault("_dynamic", None)
        self.__dict__.setdefault("_fast", None)
        # Engines pickled before the telemetry subsystem.
        self.__dict__.setdefault("_events", None)
        if self.__dict__.get("stats_collector") is None:
            self.stats_collector = StatsCollector()
        if self.backend != "cost_model" and self.dataset.objects:
            from ..fast import VectorizedBackend

            self._fast = VectorizedBackend(self.dataset)

    # -- planning ---------------------------------------------------------------

    def _plan(self, rect: Rect, words: Sequence[int]) -> Tuple[List[str], Dict[str, float]]:
        """Strategy chain (cheapest estimate first) plus the raw estimates."""
        if self._dynamic is not None:
            # Dynamic engines have exactly one strategy: the currently
            # published epoch of the LSM-style index.
            return ["dynamic"], {}
        k = len(words)
        if k >= 2:
            planner = self._planners[k]
            order = planner.strategies_by_cost(rect, words)
            return order, dict(planner.last_plan)
        # k == 1: the fused route *is* the inverted scan plus a containment
        # filter, so the real contest is keywords-only vs structured-only.
        shortest = min(self._inverted.frequency(w) for w in words)
        sample_planner = self._planners.get(2)
        sel = sample_planner._selectivity(rect) if sample_planner else 0.0
        estimates = {
            "keywords_only": float(shortest),
            "structured_only": max(sel * len(self.dataset), 1.0),
            "selectivity": sel,
        }
        order = sorted(
            ("keywords_only", "structured_only"), key=lambda s: estimates[s]
        )
        return order, estimates

    #: Below this estimated candidate count the numpy fast path's fixed
    #: per-call overhead (array allocation, searchsorted) beats any batching
    #: win, so ``auto`` stays on the scalar path.
    AUTO_MIN_CANDIDATES = 64

    def _resolve_backend(self, estimates: Dict[str, float]) -> str:
        """Pick the execution backend for one ``auto``-mode query.

        The rule reads the engine's own :class:`~repro.trace.MetricsRegistry`:
        vectorize when this query's keywords-only candidate estimate is at
        least ``AUTO_MIN_CANDIDATES`` *and* at least half the mean estimate
        observed so far (i.e. the query is intersection-heavy relative to
        this engine's workload).  Deterministic given the query history.
        """
        if self.backend != "auto":
            return self.backend
        estimate = float(estimates.get("keywords_only", 0.0))
        history = self.metrics.histogram("auto_candidate_estimate")
        threshold = float(self.AUTO_MIN_CANDIDATES)
        if history.count:
            threshold = max(threshold, 0.5 * history.total / history.count)
        history.observe(estimate)
        if "selectivity" in estimates:
            self.metrics.histogram("auto_selectivity").observe(
                float(estimates["selectivity"])
            )
        choice = "vectorized" if estimate >= threshold else "cost_model"
        self.metrics.counter(f"backend_{choice}_total").inc()
        return choice

    def _run_strategy(
        self,
        strategy: str,
        rect: Rect,
        words: Sequence[int],
        counter: CostCounter,
        backend: str = "cost_model",
    ) -> List[KeywordObject]:
        if strategy == "dynamic":
            return self._dynamic.query(rect, words, counter)
        if strategy == "fused":
            return self._index.query(rect, words, counter)
        if strategy == "keywords_only":
            if backend == "vectorized" and self._fast is not None:
                return self._fast.query_rect(rect, words, counter)
            return self._keywords.query_rect(rect, words, counter)
        return self._structured.query_rect(rect, words, counter)

    # -- serving ----------------------------------------------------------------

    def query(
        self,
        rect: Union[Rect, Sequence[float]],
        keywords: Sequence[int],
        budget: Optional[int] = None,
        counter: Optional[CostCounter] = None,
        tracer: Optional[Tracer] = None,
    ) -> Tuple[KeywordObject, ...]:
        """Serve one query; the trace lands in :attr:`last_record`.

        ``budget`` overrides the engine's ``default_budget`` for this call.
        Results are returned as an immutable tuple (shared with the cache, so
        a caller cannot poison later hits by mutating what it got back).

        ``tracer`` lets an orchestrating caller (the sharded engine) nest
        this query's spans inside its own tree; the engine then does *not*
        finish the tracer or attach ``record.trace`` — the owner does.  With
        ``tracer=None`` and the engine built with ``tracing=True``, the query
        owns a fresh tracer and attaches the finished tree to its record.
        """
        rect = self._coerce_rect(rect)
        words = sorted(set(validate_nonempty_keywords(keywords)))
        if len(words) > self.max_k:
            raise ValidationError(
                f"{len(words)} distinct keywords exceed max_k={self.max_k}"
            )
        if self.dataset.dim is not None and rect.dim != self.dataset.dim:
            raise ValidationError(
                f"query rectangle is {rect.dim}-dimensional, "
                f"data is {self.dataset.dim}-dimensional"
            )
        budget = budget if budget is not None else self.default_budget
        caller = ensure_counter(counter)
        self._queries_served += 1
        query_id = self._queries_served
        self.metrics.counter("queries_total").inc()

        owned = tracer is None and self.tracing
        if owned:
            tracer = Tracer("query", "engine", query_id=query_id)

        # The epoch id pins a cache entry to the index version that produced
        # it: a dynamic engine's publish bumps the id, so post-write queries
        # can never be served a stale pre-write result.  Static engines are
        # version 0 forever (same key shape, zero overhead).
        epoch = self._dynamic.epoch.epoch_id if self._dynamic is not None else 0
        key = (epoch, rect.lo, rect.hi, frozenset(words))
        cached, hit = self._cache.lookup(key)
        if hit:
            record = QueryRecord(
                query_id=query_id,
                rect_lo=rect.lo,
                rect_hi=rect.hi,
                keywords=tuple(words),
                strategy="cache",
                cache="hit",
                budget=budget,
                result_count=len(cached),
            )
            if owned:
                record.trace = tracer.finish().to_dict()
            self._records.append(record)
            self._strategy_counts["cache"] = self._strategy_counts.get("cache", 0) + 1
            self.metrics.counter("cache_hits_total").inc()
            self.metrics.counter("strategy_cache_total").inc()
            if self._events is not None:
                self._events.emit(
                    "query_finish",
                    query_id=query_id,
                    strategy="cache",
                    cache="hit",
                    cost_total=0,
                    result_count=len(cached),
                    degraded=False,
                )
            return cached
        self.metrics.counter("cache_misses_total").inc()

        if self._index is None and not self._planners and self._dynamic is None:
            # Empty corpus: nothing can match; zero cost, honest trace.
            return self._finish(
                query_id, rect, words, (), "empty_dataset", [], {}, budget,
                False, CostCounter(), caller, key, tracer, owned,
            )

        order, estimates = self._plan(rect, words)
        backend = self._resolve_backend(estimates)
        spent = CostCounter()  # per-query accumulator, never budgeted
        fallbacks: List[Dict[str, Any]] = []
        results: Optional[List[KeywordObject]] = None
        chosen = order[0]
        degraded = False
        for strategy in order:
            probe = CostCounter(budget=budget)
            probe.tracer = tracer
            try:
                with span_for(probe, strategy, "engine", budget=budget):
                    results = self._run_strategy(
                        strategy, rect, words, probe, backend=backend
                    )
                spent.merge(probe)
                chosen = strategy
                break
            except BudgetExceeded:
                spent.merge(probe)
                fallbacks.append(
                    {"strategy": strategy, "spent": probe.total, "budget": budget}
                )
        if results is None:
            # Every strategy blew the budget: serve the cheapest unbudgeted.
            # The rerun re-enters the strategy's keyed span, so its charges
            # accumulate there and the leaf-sum invariant still holds.
            probe = CostCounter()
            probe.tracer = tracer
            with span_for(probe, order[0], "engine", degraded=True):
                results = self._run_strategy(
                    order[0], rect, words, probe, backend=backend
                )
            spent.merge(probe)
            chosen = order[0]
            degraded = True
        return self._finish(
            query_id, rect, words, results, chosen, fallbacks,
            estimates, budget, degraded, spent, caller, key, tracer, owned,
            backend=backend,
        )

    def _finish(
        self, query_id, rect, words, results, chosen, fallbacks,
        estimates, budget, degraded, spent, caller, key, tracer=None, owned=False,
        backend="cost_model",
    ) -> Tuple[KeywordObject, ...]:
        # Record and cache before touching the caller's counter, and fold the
        # spent units into it with absorb() (never merge()): a caller-supplied
        # counter may carry its own budget, and the engine's contract is that
        # BudgetExceeded never escapes query() — the trace and the cache entry
        # must land even when the caller's budget is already blown.
        results = tuple(results)
        evicted = self._cache.put(key, results)
        if evicted and self._events is not None:
            self._events.emit(
                "cache_evict", query_id=query_id, evicted=evicted,
                size=len(self._cache), capacity=self._cache.capacity,
            )
        clean_estimates = {
            name: float(value)
            for name, value in estimates.items()
            if isinstance(value, (int, float))
        }
        record = QueryRecord(
            query_id=query_id,
            rect_lo=rect.lo,
            rect_hi=rect.hi,
            keywords=tuple(words),
            strategy=chosen,
            cache="miss",
            budget=budget,
            backend=backend,
            degraded=degraded,
            fallbacks=fallbacks,
            cost=spent.snapshot(),
            estimates=clean_estimates,
            result_count=len(results),
        )
        if owned and tracer is not None:
            record.trace = tracer.finish().to_dict()
        self._records.append(record)
        self._strategy_counts[chosen] = self._strategy_counts.get(chosen, 0) + 1
        self._fallback_count += len(fallbacks)
        if degraded:
            self._degraded_count += 1
        self._observe_metrics(chosen, len(fallbacks), degraded, record.cost, len(results))
        self.stats_collector.observe(
            chosen,
            backend,
            record.cost.get("total", 0),
            len(results),
            corpus_size=len(self.dataset),
        )
        if self._events is not None:
            if degraded:
                self._events.emit(
                    "query_degraded",
                    query_id=query_id,
                    strategy=chosen,
                    fallbacks=len(fallbacks),
                    budget=budget,
                    cost_total=record.cost.get("total", 0),
                )
            self._events.emit(
                "query_finish",
                query_id=query_id,
                strategy=chosen,
                cache="miss",
                cost_total=record.cost.get("total", 0),
                result_count=len(results),
                degraded=degraded,
            )
        self.counter.absorb(spent)
        caller.absorb(spent)
        return results

    def _observe_metrics(
        self,
        strategy: str,
        fallback_count: int,
        degraded: bool,
        cost: Dict[str, int],
        result_count: int,
    ) -> None:
        """Feed the registry one executed (non-cache-hit) query's outcome."""
        metrics = self.metrics
        metrics.counter(f"strategy_{strategy}_total").inc()
        if fallback_count:
            metrics.counter("fallbacks_total").inc(fallback_count)
            metrics.counter("budget_exhausted_total").inc()
        if degraded:
            metrics.counter("degraded_total").inc()
        for category in CATEGORIES:
            metrics.histogram(f"cost_{category}").observe(cost.get(category, 0))
        metrics.histogram("cost_total").observe(cost.get("total", 0))
        metrics.histogram("result_count").observe(result_count)

    def batch(
        self,
        queries: Iterable[QuerySpec],
        budget: Optional[int] = None,
        counter: Optional[CostCounter] = None,
    ) -> List[Tuple[KeywordObject, ...]]:
        """Serve a sequence of ``(rect, keywords)`` queries in order.

        The matching traces are the tail of :attr:`records`; pair them with
        the returned result lists for per-query reporting.
        """
        return [
            self.query(rect, keywords, budget=budget, counter=counter)
            for rect, keywords in queries
        ]

    @staticmethod
    def _coerce_rect(rect: Union[Rect, Sequence[float]]) -> Rect:
        if isinstance(rect, Rect):
            return rect
        coords = [float(c) for c in rect]
        for coord in coords:
            # Rect itself allows infinite bounds (Rect.full), but a flat
            # coordinate list comes from an external caller (CLI, JSONL
            # workload) where a non-finite value is a data error: NaN makes
            # containment tests silently inconsistent, inf silently turns a
            # typo into an unbounded scan.
            if not math.isfinite(coord):
                raise ValidationError(
                    f"flat rectangle has a non-finite coordinate ({coord})"
                )
        if len(coords) % 2 != 0:
            raise ValidationError(
                f"flat rectangle needs an even coordinate count, got {len(coords)}"
            )
        dim = len(coords) // 2
        return Rect(coords[:dim], coords[dim:])

    # -- observability -----------------------------------------------------------

    @property
    def records(self) -> List[QueryRecord]:
        """The retained per-query traces, oldest first."""
        return list(self._records)

    @property
    def last_record(self) -> Optional[QueryRecord]:
        return self._records[-1] if self._records else None

    @property
    def cache(self):
        return self._cache

    @property
    def events(self) -> Optional[EventLog]:
        """The attached structured event log (``None`` when not wired)."""
        return self._events

    def attach_events(self, events: Optional[EventLog]) -> None:
        """Attach (or detach with ``None``) a structured event log.

        Lets a deployment wire one shared log through an engine that was
        built — or unpickled — without one.
        """
        self._events = events

    def planner_stats(self) -> Dict[str, Any]:
        """The stable per-(strategy, backend) statistics feed.

        Schema-versioned rendering of the engine's
        :class:`~repro.telemetry.StatsCollector` — the collected-statistics
        input a future adaptive planner (and any dashboard) reads.
        """
        return self.stats_collector.planner_stats()

    def stats(self) -> Dict[str, Any]:
        """Lifetime engine statistics (JSON-safe)."""
        return {
            "queries": self._queries_served,
            "strategies": dict(self._strategy_counts),
            "fallbacks": self._fallback_count,
            "degraded": self._degraded_count,
            "cache": self._cache.stats(),
            "cost": self.counter.snapshot(),
            "dataset": {
                "objects": len(self.dataset),
                "input_size": self.dataset.total_doc_size,
                "dim": self.dataset.dim,
            },
            "max_k": self.max_k,
            "default_budget": self.default_budget,
            "backend": getattr(self, "backend", "cost_model"),
            "dynamic_epoch": (
                self._dynamic.epoch.epoch_id if self._dynamic is not None else None
            ),
            "metrics": self.metrics.snapshot(),
        }

    def probe_structure(self, seed: int = 17) -> List[Dict[str, Any]]:
        """Run the structural health probes and mirror them into metrics.

        Snapshots the audit-layer probes (kd-tree crossing vs Lemma 10,
        space vs the near-linear budget) for this engine's live indexes and
        registers every value as a ``probe_*`` gauge, so the next
        :meth:`stats` call exposes them under ``["metrics"]["gauges"]``.
        Returns the probe reports as JSON-safe dicts.
        """
        # Imported here: the audit package is an optional observability layer
        # on top of the engine, not a serving dependency.
        from ..audit.probes import engine_reports, register_all

        reports = engine_reports(self, seed=seed)
        register_all(reports, self.metrics)
        return [report.to_dict() for report in reports]

    def export_stats_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.stats(), indent=indent, sort_keys=True)

    def export_records_json(self) -> str:
        """All retained traces as a JSON array (oldest first)."""
        return json.dumps(
            [record.to_dict() for record in self._records], sort_keys=True
        )

    @property
    def dim(self) -> Optional[int]:
        """Dimensionality of the served points (mirrors the index classes)."""
        return self.dataset.dim

    @property
    def input_size(self) -> int:
        """``N`` (mirrors the index classes, for ``cli info``)."""
        return self.dataset.total_doc_size

    @property
    def space_units(self) -> int:
        """Stored entries across the fused indexes, baselines, and samples."""
        units = 0
        if self._index is not None:
            units += self._index.space_units
        if self._dynamic is not None:
            units += self._dynamic.space_units
        for planner in self._planners.values():
            units += len(planner._sample)
        return units

"""Concurrent async serving: admission control, shard fan-out, snapshots.

The synchronous engines serve one query at a time and assume a quiescent
index.  This module puts an :mod:`asyncio` front end above them that makes
three things safe and observable under concurrent mixed read/write traffic:

**Admission control** (:class:`AdmissionController`).  The same
:class:`~repro.costmodel.CostCounter` budget machinery that bounds a single
query's work bounds the *total in-flight* work: each query reserves its
budget's worth of cost units on admission and releases them on completion.
When the reservation would push the in-flight total past
``max_inflight_cost``, the counter's own :class:`~repro.errors.BudgetExceeded`
fires and the query is *shed* — refused up front with a
:class:`~repro.service.engine.QueryRecord` carrying ``reason="shed:admission"``
instead of being allowed to pile latency onto everything already running.

**Concurrent shard fan-out** (:class:`AsyncQueryEngine` over a
:class:`~repro.service.sharding.ShardedQueryEngine`).  The sequential
per-shard loop becomes a worker-pool fan-out: every shard whose bounding box
intersects the query rectangle runs concurrently (one worker thread each,
per-shard locks serializing same-shard access), shards whose bounds miss the
rectangle are pruned outright, and the budget is fixed upfront with the
exact split :func:`~repro.service.sharding.split_budget_exact` (concurrent
shards cannot redistribute a straggler pool).  Results, costs, and traces
merge back on the event-loop thread through the same finish path as the
sequential engine, so records and metrics stay comparable.

**Snapshot isolation** (:class:`AsyncDynamicIndex` over a
:class:`~repro.core.dynamic.DynamicOrpKw`).  Writers serialize behind an
:class:`asyncio.Lock` and each mutation publishes one immutable epoch;
readers pin a :class:`~repro.service.snapshots.Snapshot` and run lock-free
against it, so a rebuild mid-query can never surface a half-applied batch,
a duplicated oid, or an empty bucket window.

Everything CPU-bound runs in a shared :class:`~concurrent.futures.
ThreadPoolExecutor`; the event loop only validates, admits, merges, and
records.  Correctness is pinned differentially: under a quiesced writer the
async engine returns byte-identical results to the synchronous engines.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..costmodel import CostCounter, ensure_counter
from ..dataset import KeywordObject
from ..errors import BudgetExceeded, ValidationError
from ..geometry.rectangles import Rect
from ..telemetry.events import EventLog
from ..telemetry.sampler import TailSampler
from ..telemetry.slo import SLOMonitor, SloShed
from ..trace import MetricsRegistry, Tracer
from .engine import QueryEngine, QueryRecord
from .sharding import ShardedQueryEngine, split_budget_exact
from .snapshots import Snapshot, SnapshotManager

#: Reservation charged for an unbudgeted query (cost units).  Unbudgeted
#: queries have no a-priori work bound, so admission control needs *some*
#: stand-in to keep them from slipping past the throttle for free.
DEFAULT_RESERVATION = 256


class AdmissionController:
    """Bounded in-flight cost, enforced by the budget machinery itself.

    A :class:`~repro.costmodel.CostCounter` with ``budget=max_inflight_cost``
    holds the running reservation total: :meth:`admit` charges the query's
    reservation (its budget, or :data:`DEFAULT_RESERVATION` when
    unbudgeted) and lets the counter's own overflow check decide — the
    exact machinery, including the exception type, that per-query budgets
    use.  :meth:`release` returns the units when the query finishes.

    Thread-safe: admission happens on the event-loop thread, but releases
    may race in from executor callbacks, so a lock guards the counter.

    With an :class:`~repro.telemetry.SLOMonitor` attached (``slo=``), its
    graduated pressure signal shrinks the effective in-flight capacity
    *before* the reservation is charged: pressure 1 halves the capacity,
    pressure 2 quarters it.  A query refused that way raises
    :class:`~repro.telemetry.SloShed` (a ``BudgetExceeded`` subclass, so
    existing shed handling applies) whose ``reason`` names the objective
    that tripped — the attribution lands in the refused query's record.
    """

    def __init__(
        self,
        max_inflight_cost: Optional[int],
        slo: Optional[SLOMonitor] = None,
    ):
        if max_inflight_cost is not None and max_inflight_cost < 1:
            raise ValidationError(
                f"max_inflight_cost must be >= 1, got {max_inflight_cost}"
            )
        self.max_inflight_cost = max_inflight_cost
        self.slo = slo
        self._counter = CostCounter(budget=max_inflight_cost)
        self._lock = threading.Lock()
        self._inflight_queries = 0

    def admit(self, reservation: int) -> None:
        """Reserve ``reservation`` units or shed (:class:`BudgetExceeded`).

        The failing path rolls the charge back — a shed query must leave
        the in-flight total exactly as it found it.
        """
        with self._lock:
            if self.slo is not None and self.max_inflight_cost is not None:
                pressure = self.slo.pressure()
                if pressure:
                    # Graduated shed: half capacity at pressure 1, a
                    # quarter at pressure 2 (never below one unit).
                    effective = max(self.max_inflight_cost >> pressure, 1)
                    if self._counter.total + reservation > effective:
                        raise SloShed(
                            self.slo.shed_reason(),
                            self._counter.total + reservation,
                            effective,
                        )
            try:
                self._counter.charge("inflight_cost", reservation)
            except BudgetExceeded:
                self._counter.charge("inflight_cost", -reservation)
                raise
            self._inflight_queries += 1

    def release(self, reservation: int) -> None:
        """Return a completed (or failed) query's reserved units."""
        with self._lock:
            self._counter.charge("inflight_cost", -reservation)
            self._inflight_queries -= 1

    @property
    def inflight_cost(self) -> int:
        """Currently reserved cost units."""
        return self._counter.total

    @property
    def inflight_queries(self) -> int:
        """Currently admitted, not-yet-finished queries."""
        return self._inflight_queries


class AsyncQueryEngine:
    """Asyncio front end over a (sharded or plain) synchronous engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.service.engine.QueryEngine` or
        :class:`~repro.service.sharding.ShardedQueryEngine`.  Sharded
        engines get the concurrent fan-out; plain engines are served from
        the pool one query at a time (their caches and record deques are
        not thread-safe).
    max_inflight_cost:
        Admission-control bound on the summed budget reservations of all
        in-flight queries; ``None`` admits everything.
    max_workers:
        Worker-pool size; defaults to the shard count (or 1 unsharded).
    metrics:
        Registry for the serving gauges/counters (in-flight, admitted,
        shed); private by default.  The wrapped engine keeps feeding its
        own registry exactly as in synchronous serving.
    events:
        Shared :class:`~repro.telemetry.EventLog`; the front end emits
        ``query_shed`` here and attaches the log to the wrapped engine
        (when it has none) so the whole stack shares one event order.
    sampler:
        A :class:`~repro.telemetry.TailSampler`; every finished or shed
        query's record is offered, and records whose traces are not
        retained have ``record.trace`` dropped to keep unretained span
        trees from piling up in the record deque.
    slo:
        An :class:`~repro.telemetry.SLOMonitor`; fed every query outcome
        and handed to the :class:`AdmissionController` as the graduated
        shed signal.

    All public methods are coroutines and must run on one event loop; the
    wrapped engine's bookkeeping (cache, records, metrics) is only ever
    touched from that loop's thread or under per-shard locks.
    """

    def __init__(
        self,
        engine: Union[QueryEngine, ShardedQueryEngine],
        max_inflight_cost: Optional[int] = None,
        max_workers: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        sampler: Optional[TailSampler] = None,
        slo: Optional[SLOMonitor] = None,
    ):
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        self.sampler = sampler
        self.slo = slo
        if events is not None and getattr(engine, "_events", None) is None:
            engine.attach_events(events)
        self.admission = AdmissionController(max_inflight_cost, slo=slo)
        self._sharded = isinstance(engine, ShardedQueryEngine)
        if max_workers is None:
            max_workers = engine.num_shards if self._sharded else 1
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        if self._sharded:
            self._shard_locks = [
                threading.Lock() for _ in engine.shard_engines
            ]
        else:
            self._engine_lock = threading.Lock()
        self._shed_count = 0

    # -- lifecycle ---------------------------------------------------------------

    async def __aenter__(self) -> "AsyncQueryEngine":
        return self

    async def __aexit__(self, *exc) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    # -- serving ----------------------------------------------------------------

    async def query(
        self,
        rect: Union[Rect, Sequence[float]],
        keywords: Sequence[int],
        budget: Optional[int] = None,
        counter: Optional[CostCounter] = None,
    ) -> Tuple[KeywordObject, ...]:
        """Serve one query concurrently; same answers as the sync engines.

        Raises :class:`~repro.errors.BudgetExceeded` when admission control
        sheds the query (recorded with ``reason="shed:admission"`` in the
        wrapped engine's records); every *admitted* query returns exactly
        what the synchronous engine would return.
        """
        budget = (
            budget if budget is not None else self.engine.default_budget
        )
        reservation = budget if budget is not None else DEFAULT_RESERVATION
        try:
            self.admission.admit(reservation)
        except BudgetExceeded as exc:
            # SLO-driven sheds carry their objective as exc.reason; plain
            # admission sheds fall back to the generic reason.
            record = self._record_shed(
                rect, keywords, budget,
                reason=getattr(exc, "reason", "shed:admission"),
            )
            self._after_query(record, shed=True)
            raise
        self.metrics.counter("admitted_total").inc()
        self._meter_inflight()
        try:
            if self._sharded:
                results, record = await self._query_sharded(
                    rect, keywords, budget, counter
                )
            else:
                results, record = await self._query_plain(
                    rect, keywords, budget, counter
                )
        finally:
            self.admission.release(reservation)
            self._meter_inflight()
        self._after_query(record)
        return results

    async def batch(
        self,
        queries: Sequence[Tuple[Union[Rect, Sequence[float]], Sequence[int]]],
        budget: Optional[int] = None,
        counter: Optional[CostCounter] = None,
    ) -> List[Optional[Tuple[KeywordObject, ...]]]:
        """Serve a workload concurrently, preserving order.

        Shed queries come back as ``None`` (their refusal is already in the
        engine's records); other exceptions propagate.
        """

        async def one(spec):
            rect, keywords = spec
            try:
                return await self.query(rect, keywords, budget, counter)
            except BudgetExceeded:
                return None

        return list(await asyncio.gather(*(one(spec) for spec in queries)))

    # -- internals ---------------------------------------------------------------

    def _meter_inflight(self) -> None:
        self.metrics.gauge("inflight_cost").set(self.admission.inflight_cost)
        self.metrics.gauge("inflight_queries").set(
            self.admission.inflight_queries
        )

    def _record_shed(
        self,
        rect: Union[Rect, Sequence[float]],
        keywords: Sequence[int],
        budget: Optional[int],
        reason: str = "shed:admission",
    ) -> QueryRecord:
        """Append a refused query's record (strategy ``shed``) and meter it."""
        self._shed_count += 1
        self.metrics.counter("shed_total").inc()
        if reason != "shed:admission":
            self.metrics.counter("shed_slo_total").inc()
        try:
            rect = QueryEngine._coerce_rect(rect)
            lo, hi = rect.lo, rect.hi
        except ValidationError:
            lo = hi = ()
        record = QueryRecord(
            query_id=0,  # never served; ids belong to admitted queries
            rect_lo=lo,
            rect_hi=hi,
            keywords=tuple(keywords),
            strategy="shed",
            cache="bypass",
            budget=budget,
            reason=reason,
        )
        self.engine._records.append(record)
        if self.events is not None:
            self.events.emit(
                "query_shed",
                reason=reason,
                budget=budget,
                keywords=len(record.keywords),
            )
        return record

    def _after_query(self, record: Optional[QueryRecord], shed: bool = False) -> None:
        """Feed one finished (or shed) query into the SLO monitor and sampler.

        Runs on the event-loop thread only, after the admission release —
        the monitor's verdict therefore applies from the *next* admission
        decision onward.
        """
        if record is None:
            return
        if self.slo is not None:
            if shed:
                self.slo.observe_query(shed=True)
            else:
                self.slo.observe_query(
                    cost=record.cost.get("total", 0),
                    budget_exhausted=bool(record.fallbacks),
                )
        if self.sampler is not None and not self.sampler.offer(record):
            # Not retained: drop the span tree so unretained traces do not
            # accumulate in the record deque.
            record.trace = None

    async def _query_plain(
        self,
        rect: Union[Rect, Sequence[float]],
        keywords: Sequence[int],
        budget: Optional[int],
        counter: Optional[CostCounter],
    ) -> Tuple[Tuple[KeywordObject, ...], QueryRecord]:
        """One-at-a-time serve of an unsharded engine from the pool.

        Returns the results *and* their record, read back while the engine
        lock is still held — reading ``last_record`` after the await could
        see a concurrent query's record instead.
        """
        loop = asyncio.get_running_loop()

        def run() -> Tuple[Tuple[KeywordObject, ...], QueryRecord]:
            with self._engine_lock:
                results = self.engine.query(
                    rect, keywords, budget=budget, counter=counter
                )
                return results, self.engine.last_record

        return await loop.run_in_executor(self._pool, run)

    async def _query_sharded(
        self,
        rect: Union[Rect, Sequence[float]],
        keywords: Sequence[int],
        budget: Optional[int],
        counter: Optional[CostCounter],
    ) -> Tuple[Tuple[KeywordObject, ...], QueryRecord]:
        """Concurrent fan-out with pruning and an exact upfront budget split.

        Validation, cache, merging, and recording all happen on the loop
        thread (the engine's bookkeeping is not thread-safe); only the
        per-shard queries run on the pool, each under its shard's lock.
        """
        engine: ShardedQueryEngine = self.engine
        loop = asyncio.get_running_loop()
        rect, words = engine._validate(rect, keywords)
        caller = ensure_counter(counter)
        # Pin the published shard map once (on the loop thread): pruning,
        # budget split, shard queries, and the cache key all run against one
        # consistent layout even if a writer publishes an insert or a
        # rebalance cutover mid-flight.
        state = engine._state
        num_shards = len(state.engines)
        engine._queries_served += 1
        query_id = engine._queries_served
        engine.metrics.counter("queries_total").inc()

        tracer: Optional[Tracer] = None
        if engine.tracing:
            tracer = Tracer(
                "sharded_query", "sharding",
                query_id=query_id, shards=num_shards, fanout="async",
            )

        key = (state.epoch_id, rect.lo, rect.hi, frozenset(words))
        cached, hit = engine._cache.lookup(key)
        if hit:
            # No await between the finish call and the last_record read, so
            # the record is this query's own.
            results = engine._finish_cache_hit(
                query_id, rect, words, budget, cached, tracer
            )
            return results, engine.last_record
        engine.metrics.counter("cache_misses_total").inc()

        # Prune shards whose bounding box misses the rectangle (empty shards
        # have no box and are always pruned).  The pinned map's bounds are
        # refreshed on every publish, so a shard holding freshly inserted
        # objects outside its build-time box is never pruned away.  The
        # budget is split exactly over the shards that actually run.
        active = [
            shard_id
            for shard_id, bounds in enumerate(state.bounds)
            if bounds is not None and rect.intersects(bounds)
        ]
        shares: Dict[int, Optional[int]]
        if budget is None:
            shares = {shard_id: None for shard_id in active}
        else:
            shares = dict(
                zip(active, split_budget_exact(budget, max(len(active), 1)))
            )
        self.metrics.counter("shards_pruned_total").inc(
            num_shards - len(active)
        )
        # A rebalance may have grown the shard count since construction;
        # extend the lock list on the loop thread before dispatching.
        while len(self._shard_locks) < num_shards:
            self._shard_locks.append(threading.Lock())

        def run_shard(shard_id: int):
            share = shares[shard_id]
            # One tracer per worker (tracers are single-stack); its finished
            # spans are grafted into the fan-out tree on the loop thread.
            shard_tracer = (
                Tracer("fanout", "sharding") if tracer is not None else None
            )
            with self._shard_locks[shard_id]:
                objs, probe, record = engine._query_shard(
                    state,
                    shard_id,
                    rect,
                    words,
                    share,
                    shard_tracer,
                )
            return shard_id, objs, probe, record, shard_tracer

        outcomes = await asyncio.gather(
            *(
                loop.run_in_executor(self._pool, run_shard, shard_id)
                for shard_id in active
            )
        )

        spent = CostCounter()
        fallbacks: List[Dict[str, Any]] = []
        slices: List[Dict[str, Any]] = []
        merged: List[KeywordObject] = []
        by_shard = {outcome[0]: outcome for outcome in outcomes}
        for shard_id in range(num_shards):
            if shard_id not in by_shard:
                slices.append(
                    {
                        "shard_id": shard_id,
                        "strategy": "pruned",
                        "budget": 0,
                        "cost": 0,
                        "degraded": False,
                    }
                )
                continue
            _, objs, probe, record, shard_tracer = by_shard[shard_id]
            merged.extend(objs)
            for fallback in record.fallbacks:
                fallbacks.append(dict(fallback, shard=shard_id))
            slices.append(
                {
                    "shard_id": shard_id,
                    "strategy": record.strategy,
                    "budget": shares[shard_id],
                    "cost": probe.total,
                    "degraded": record.degraded,
                }
            )
            spent.merge(probe)
            if tracer is not None and shard_tracer is not None:
                for child in shard_tracer.finish().children:
                    tracer.root.graft(child)

        results = engine._merge_results(merged)
        results = engine._finish_fanout(
            query_id=query_id,
            rect=rect,
            words=words,
            budget=budget,
            spent=spent,
            fallbacks=fallbacks,
            slices=slices,
            results=results,
            caller=caller,
            tracer=tracer,
            cache_key=key,
        )
        # Synchronous finish on the loop thread: last_record is this query's.
        return results, engine.last_record

    # -- observability -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Serving-layer stats above the wrapped engine's own ``stats()``."""
        stats = {
            "engine": self.engine.stats(),
            "shed": self._shed_count,
            "max_inflight_cost": self.admission.max_inflight_cost,
            "inflight_cost": self.admission.inflight_cost,
            "inflight_queries": self.admission.inflight_queries,
            "metrics": self.metrics.snapshot(),
        }
        if self.slo is not None:
            stats["slo"] = self.slo.report()
        if self.sampler is not None:
            stats["sampler"] = self.sampler.stats()
        if self.events is not None:
            stats["events"] = self.events.stats()
        return stats


class AsyncDynamicIndex:
    """Single-writer/many-reader async front over a dynamic index.

    Writes (:meth:`insert`, :meth:`insert_many`, :meth:`delete`) serialize
    behind an :class:`asyncio.Lock` and run on the worker pool; each
    publishes one immutable epoch.  Reads (:meth:`query`) pin a
    :class:`~repro.service.snapshots.Snapshot` and run lock-free — a reader
    admitted before a write completes serves the pre-write epoch, one
    admitted after serves the post-write epoch, and nothing in between is
    observable.
    """

    def __init__(
        self,
        index,
        metrics: Optional[MetricsRegistry] = None,
        max_workers: int = 4,
        events: Optional[EventLog] = None,
    ):
        self.index = index
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.snapshots = SnapshotManager(index, metrics=self.metrics, events=events)
        if events is not None and getattr(index, "_events", None) is None:
            attach = getattr(index, "attach_events", None)
            if attach is not None:
                attach(events)
        self._writer_lock = asyncio.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-dyn"
        )

    async def __aenter__(self) -> "AsyncDynamicIndex":
        return self

    async def __aexit__(self, *exc) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def _meter(self) -> None:
        self.metrics.gauge("published_epoch").set(self.index.epoch.epoch_id)
        self.metrics.gauge("live_objects").set(len(self.index))

    async def insert(self, point: Sequence[float], doc) -> int:
        """Insert one object (serialized with other writers)."""
        loop = asyncio.get_running_loop()
        async with self._writer_lock:
            oid = await loop.run_in_executor(
                self._pool, self.index.insert, point, doc
            )
        self.metrics.counter("writes_total").inc()
        self._meter()
        return oid

    async def insert_many(self, points, docs) -> List[int]:
        """Bulk insert; readers see none of the batch or all of it."""
        loop = asyncio.get_running_loop()
        async with self._writer_lock:
            oids = await loop.run_in_executor(
                self._pool, self.index.insert_many, points, docs
            )
        self.metrics.counter("writes_total").inc()
        self._meter()
        return oids

    async def delete(self, oid: int) -> None:
        """Tombstone one object (may publish a rebuilt epoch)."""
        loop = asyncio.get_running_loop()
        async with self._writer_lock:
            await loop.run_in_executor(self._pool, self.index.delete, oid)
        self.metrics.counter("writes_total").inc()
        self._meter()

    async def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Snapshot-isolated read; never blocks on (or observes) a writer."""
        loop = asyncio.get_running_loop()
        snapshot = self.snapshots.pin()
        self.metrics.counter("reads_total").inc()
        result = await loop.run_in_executor(
            self._pool, snapshot.query, rect, keywords, counter
        )
        self.snapshots.release(snapshot)
        return result

    def pin(self) -> Snapshot:
        """Pin the current epoch synchronously (diagnostics, tests)."""
        return self.snapshots.pin()

    def stats(self) -> Dict[str, Any]:
        """JSON-safe snapshot/staleness summary."""
        return self.snapshots.stats()

"""Bounded LRU result cache with hit/miss accounting.

Keyword+range workloads are heavily skewed in practice (Zipf over keywords,
hot regions over space), so a small exact-match cache absorbs a large share
of a repeated workload.  The cache is deliberately simple: exact key match on
``(rect corners, frozenset(keywords))``, least-recently-used eviction, and
counters the engine surfaces in its stats.  Entries are whatever the engine
stores; the cache never copies, so the engine stores immutable tuples of
result objects — a caller mutating what it got back cannot poison later
hits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from ..errors import ValidationError

#: Sentinel distinguishing "not cached" from a cached empty result.
_MISSING = object()


class LRUCache:
    """An ordered-dict LRU with hit/miss/eviction counters.

    Parameters
    ----------
    capacity:
        Maximum number of entries; ``0`` disables caching (every lookup is a
        miss, nothing is stored).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValidationError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Insert-pressure evictions only: entries pushed out by :meth:`put`
        #: on a full cache.  Evictions caused by shrinking the capacity at
        #: runtime are counted separately in :attr:`capacity_evictions` —
        #: lumping them together made a post-reconfiguration ``stats()``
        #: read as sudden workload pressure.
        self.evictions = 0
        #: Entries dropped by :meth:`resize` shrinking the capacity.
        self.capacity_evictions = 0

    def get(self, key: Hashable) -> Any:
        """Return the cached value (refreshing recency) or ``None`` on miss.

        Use :meth:`lookup` when cached values may legitimately be ``None``.
        """
        value, hit = self.lookup(key)
        return value if hit else None

    def lookup(self, key: Hashable) -> Tuple[Any, bool]:
        """Return ``(value, True)`` on a hit, ``(None, False)`` on a miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None, False
        self._entries.move_to_end(key)
        self.hits += 1
        return value, True

    def put(self, key: Hashable, value: Any) -> int:
        """Insert (or refresh) ``key``; evict the LRU entry when full.

        Returns how many entries were evicted by this insert (0 or 1 in
        practice) so the engine can emit a ``cache_evict`` telemetry event
        without the cache holding a callback — engines pickle their cache,
        and a stored callable would break index snapshots.
        """
        if self.capacity == 0:
            return 0
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            evicted += 1
        return evicted

    def resize(self, capacity: int) -> None:
        """Change the capacity at runtime (engine reconfiguration).

        Shrinking below the current size drops the least-recently-used
        entries immediately, counted in :attr:`capacity_evictions` — not in
        :attr:`evictions`, which stays a pure insert-pressure signal.
        Resizing to ``0`` disables caching (and empties the cache).
        """
        if capacity < 0:
            raise ValidationError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)
            self.capacity_evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> Optional[float]:
        """Hits / lookups, or ``None`` before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else None

    def stats(self) -> Dict[str, Any]:
        """Counters for the engine's stats export (JSON-safe)."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            # getattr: caches unpickled from pre-resize snapshots lack the
            # counter entirely.
            "capacity_evictions": getattr(self, "capacity_evictions", 0),
            "hit_rate": self.hit_rate,
        }

"""Serving layer: a hardened query service above the index structures.

Robust CAS-style systems put a single query-service layer above their index
structures rather than letting every caller wire planner, indexes, and cost
accounting together by hand.  This package is that layer for :mod:`repro`:

* :class:`QueryEngine` — fronts :class:`~repro.core.multi_k.MultiKOrpIndex`
  and :class:`~repro.core.planner.HybridPlanner`, executes single and batched
  queries under an explicit cost budget, and degrades gracefully (budget
  blow-ups become recorded fallbacks, never exceptions);
* :class:`LRUCache` — bounded result cache with hit/miss accounting;
* :class:`QueryRecord` — per-query observability record (strategy chosen,
  fallbacks taken, cost snapshot, cache status, per-shard slices),
  exportable as JSON;
* :class:`ShardedQueryEngine` / :func:`partition_dataset` — spatial
  sharding: median kd-split partitioning, one engine per shard, budget
  split with redistribution, merged cost traces;
* :class:`AsyncQueryEngine` / :class:`AdmissionController` — asyncio front
  end: bounded in-flight cost with budget-machinery shedding, concurrent
  per-shard fan-out with bounding-box pruning;
* :class:`AsyncDynamicIndex` / :class:`Snapshot` / :class:`SnapshotManager`
  — snapshot-isolated serving over the dynamized index (writers publish
  immutable epochs, readers pin them lock-free).
"""

from .async_engine import AdmissionController, AsyncDynamicIndex, AsyncQueryEngine
from .cache import LRUCache
from .engine import QueryEngine, QueryRecord
from .sharding import ShardedQueryEngine, partition_dataset, shard_share, split_budget_exact
from .snapshots import Snapshot, SnapshotManager

__all__ = [
    "AdmissionController",
    "AsyncDynamicIndex",
    "AsyncQueryEngine",
    "LRUCache",
    "QueryEngine",
    "QueryRecord",
    "ShardedQueryEngine",
    "Snapshot",
    "SnapshotManager",
    "partition_dataset",
    "shard_share",
    "split_budget_exact",
]

"""Serving layer: a hardened query service above the index structures.

Robust CAS-style systems put a single query-service layer above their index
structures rather than letting every caller wire planner, indexes, and cost
accounting together by hand.  This package is that layer for :mod:`repro`:

* :class:`QueryEngine` — fronts :class:`~repro.core.multi_k.MultiKOrpIndex`
  and :class:`~repro.core.planner.HybridPlanner`, executes single and batched
  queries under an explicit cost budget, and degrades gracefully (budget
  blow-ups become recorded fallbacks, never exceptions);
* :class:`LRUCache` — bounded result cache with hit/miss accounting;
* :class:`QueryRecord` — per-query observability record (strategy chosen,
  fallbacks taken, cost snapshot, cache status, per-shard slices),
  exportable as JSON;
* :class:`ShardedQueryEngine` / :func:`partition_dataset` — spatial
  sharding: median kd-split partitioning, one engine per shard, budget
  split with redistribution, merged cost traces.
"""

from .cache import LRUCache
from .engine import QueryEngine, QueryRecord
from .sharding import ShardedQueryEngine, partition_dataset

__all__ = [
    "LRUCache",
    "QueryEngine",
    "QueryRecord",
    "ShardedQueryEngine",
    "partition_dataset",
]

"""Copy-on-write snapshots: pinned, immutable read views for serving.

:class:`~repro.core.dynamic.DynamicOrpKw` publishes every mutation as a new
immutable :class:`~repro.core.dynamic.Epoch` (buckets + tombstones swapped
in one reference assignment).  This module is the *serving-side* face of
that mechanism:

* :class:`Snapshot` — a reader's pinned view.  Everything it answers comes
  from one epoch, so a query that runs while a writer publishes (or while a
  half-dead rebuild repacks every bucket) still sees a single consistent
  state: no partially applied batch, no duplicated object across a carry
  merge, no mid-rebuild empty window.
* :class:`SnapshotManager` — hands out snapshots, tracks how far behind the
  published head each pin is (*snapshot age*, in epochs), and feeds the
  ``MetricsRegistry`` gauges the async front end exposes.

The concurrency contract mirrors the core index: one writer at a time (the
async layer serializes mutations behind a lock), any number of concurrent
readers, each pinning lock-free.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..costmodel import CostCounter
from ..dataset import KeywordObject
from ..geometry.rectangles import Rect
from ..trace import MetricsRegistry


class Snapshot:
    """An immutable read view pinned to one published epoch.

    Queries against a snapshot keep answering from the pinned state no
    matter how many inserts, deletes, or rebuilds are published afterwards;
    :meth:`age` reports how many epochs the pin has fallen behind.
    """

    __slots__ = ("_source", "_epoch")

    def __init__(self, source, epoch):
        self._source = source
        self._epoch = epoch

    @property
    def epoch_id(self) -> int:
        """The pinned epoch's id (monotone across publications)."""
        return self._epoch.epoch_id

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches from the pinned epoch (isolation guaranteed)."""
        return self._epoch.query(rect, keywords, counter)

    def live_oids(self) -> FrozenSet[int]:
        """Ids of every object live in the pinned epoch."""
        return self._epoch.live_oids()

    def __len__(self) -> int:
        return self._epoch.live_count

    def age(self) -> int:
        """Epochs published since this snapshot was pinned (0 = current)."""
        return self._source.epoch.epoch_id - self._epoch.epoch_id


class SnapshotManager:
    """Pins snapshots over a dynamic index and meters their staleness.

    Parameters
    ----------
    index:
        Any index exposing the epoch protocol: an ``epoch`` property plus a
        ``snapshot()`` method returning the current immutable epoch
        (:class:`~repro.core.dynamic.DynamicOrpKw` is the concrete one).
    metrics:
        Registry receiving the gauges (``snapshot_epoch``, ``snapshot_age``)
        and the ``snapshots_pinned_total`` counter; private by default.
    events:
        A :class:`~repro.telemetry.EventLog` receiving ``snapshot_pin`` /
        ``snapshot_release`` events; ``None`` disables emission.
    """

    def __init__(self, index, metrics: Optional[MetricsRegistry] = None, events=None):
        self.index = index
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events = events

    def pin(self) -> Snapshot:
        """Pin the currently published epoch for isolated reads.

        Pinning is one attribute read — it never blocks a writer and a
        writer never blocks it.
        """
        snapshot = Snapshot(self.index, self.index.snapshot())
        self.metrics.counter("snapshots_pinned_total").inc()
        self.metrics.gauge("snapshot_epoch").set(snapshot.epoch_id)
        self.metrics.gauge("snapshot_age").set(snapshot.age())
        if self._events is not None:
            self._events.emit(
                "snapshot_pin", epoch=snapshot.epoch_id, live=len(snapshot)
            )
        return snapshot

    def observe(self, snapshot: Snapshot) -> None:
        """Re-meter a held snapshot's age (serving layers call this after
        each read so the gauge tracks the *oldest still-working* pin)."""
        self.metrics.gauge("snapshot_age").set(snapshot.age())

    def release(self, snapshot: Snapshot) -> None:
        """Mark a pinned snapshot as done (final age metering + event).

        Pins are plain references — nothing needs freeing — but release
        gives the telemetry stream a paired ``snapshot_release`` with the
        pin's final staleness, so a leaked long-lived pin is visible as a
        pin with no matching release.
        """
        self.metrics.counter("snapshots_released_total").inc()
        self.metrics.gauge("snapshot_age").set(snapshot.age())
        if self._events is not None:
            self._events.emit(
                "snapshot_release", epoch=snapshot.epoch_id, age=snapshot.age()
            )

    def stats(self) -> Dict[str, Any]:
        """JSON-safe staleness summary."""
        return {
            "published_epoch": self.index.epoch.epoch_id,
            "live_objects": len(self.index),
            "metrics": self.metrics.snapshot(),
        }

"""Sharded serving: spatial partitioning plus budget-bounded fan-out.

The ROADMAP's north star — serve heavy traffic — needs more than one
monolithic index: partitioned content-and-structure systems get their
robustness at scale from per-partition indexes with bounded per-partition
work.  This module is that step for :mod:`repro`:

* :func:`partition_dataset` splits a :class:`~repro.dataset.Dataset` into
  ``S`` spatially coherent shards by recursive **median kd-splits** — the
  same median-selection rule (and the same ``numpy.argpartition`` selection
  primitive) the kd-tree build uses, generalized to an arbitrary shard
  count by cutting each recursion level proportionally.  For ``S`` a power
  of two the cuts are exactly the kd-tree's median splits.

* :class:`ShardedQueryEngine` owns one per-shard
  :class:`~repro.service.engine.QueryEngine` (per-shard fused indexes and
  planners; the full dataset's vocabulary is kept for stats) and fans each
  query out across every shard.

Budget split and redistribution
-------------------------------
A query budget ``B`` is divided across the fan-out: shard ``i`` (of the
``S - i`` not yet served) receives ``ceil(remaining / (S - i))`` units
(:func:`shard_share`), so the first shard starts at ``ceil(B / S)``.  A
shard that finishes under its share returns the unused units to the pool —
later shards (the stragglers, which in a spatial partition are often the
ones actually intersecting the query rectangle) see a larger share.  A
shard that *overruns* its share (fallbacks, degradation) is charged at most
its share against the pool, so one hot shard cannot starve the rest into
cascading degradation.

The ceiling split is *exact*: every granted share is at most the pool, so
the pool never goes negative, and if every shard spends its full share the
grants telescope to exactly ``B`` — no unit is silently lost or granted
twice.  (The previous ``max(remaining // left, 1)`` rule minted budget out
of thin air once the pool ran dry: with ``B = 2`` over four shards it
granted four units.)  A shard whose share works out to zero is served with
a zero budget — its first charge degrades it to the unbudgeted exact path,
so answers stay correct and the degradation is visible in its slice.

Degradation stays per-slice: a shard that exhausts every strategy degrades
only its slice of the answer (recorded in the merged trace's ``shards``
list); the other shards still serve within budget.  As with the unsharded
engine, every strategy is exact, so sharding never changes the answer —
the differential suite asserts result equality against the unsharded
engine for every shard count.

Trace merging
-------------
Each per-shard engine produces its own :class:`QueryRecord`; the sharded
engine rolls them up into a single merged trace: per-category costs are
summed, per-shard fallbacks are tagged with their ``shard`` id, and the
record's ``shards`` field keeps one ``{shard_id, strategy, budget, cost,
degraded}`` slice per shard.  ``BudgetExceeded`` never escapes, and the
caller's counter receives the merged spend exactly once.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..costmodel import CATEGORIES, CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_nonempty_keywords
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from ..trace import MetricsRegistry, Tracer
from .cache import LRUCache
from .engine import QueryEngine, QueryRecord, QuerySpec


def shard_share(pool: int, shards_left: int) -> int:
    """The next shard's budget grant: ``ceil(pool / shards_left)``.

    Never exceeds ``pool`` (so the running pool cannot go negative), and
    telescopes exactly: granting ``shard_share`` to each of ``shards_left``
    shards in turn, with every shard spending its full grant, hands out
    ``pool`` units in total — the no-loss/no-double-grant invariant the
    budget-split property test enforces.  Returns 0 once the pool is empty
    (a zero-budget shard degrades rather than borrowing units that were
    never in the budget).
    """
    return (pool + shards_left - 1) // shards_left


def split_budget_exact(budget: int, parts: int) -> List[int]:
    """Split ``budget`` into ``parts`` near-equal shares summing exactly.

    The concurrent fan-out cannot redistribute a straggler pool (all shards
    run at once), so it fixes every share upfront: ``budget // parts`` each,
    with the first ``budget % parts`` shares one unit larger.
    """
    if parts < 1:
        raise ValidationError(f"parts must be >= 1, got {parts}")
    base, extra = divmod(budget, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def partition_dataset(dataset: Dataset, shards: int) -> List[Dataset]:
    """Split ``dataset`` into ``shards`` spatial shards via median kd-splits.

    Recursive rule: to cut a set of objects into ``s`` shards, split the
    target count as ``s = s_left + s_right`` with ``s_left = s // 2``, pick
    the splitting axis round-robin by recursion level (the kd-tree's
    ``level % dim`` rule), and partition the objects at the coordinate of
    rank ``len * s_left / s`` along that axis (``numpy.argpartition``, the
    kd-tree build's selection primitive).  Shard sizes therefore differ by
    at most one object, and every shard is spatially coherent (an
    axis-aligned cell of the recursion).

    Shards keep the original objects (ids stay globally unique).  When the
    dataset has fewer objects than shards, the surplus shards come back
    explicitly empty (:meth:`Dataset.empty`) — a served shard, not an error.
    """
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    dim = dataset.dim
    pieces: List[List[KeywordObject]] = []

    def split(objs: List[KeywordObject], count: int, level: int) -> None:
        if count == 1:
            pieces.append(objs)
            return
        left_count = count // 2
        cut = (len(objs) * left_count) // count
        if 0 < cut < len(objs):
            axis = level % dim
            coords = np.array([obj.point[axis] for obj in objs])
            order = np.argpartition(coords, cut)
            objs = [objs[i] for i in order]
        split(objs[:cut], left_count, level + 1)
        split(objs[cut:], count - left_count, level + 1)

    split(list(dataset.objects), shards, 0)
    return [
        Dataset(piece) if piece else Dataset.empty(dim) for piece in pieces
    ]


def _bounding_rect(dataset: Dataset) -> Optional[Rect]:
    """Tightest axis-aligned box around ``dataset`` (``None`` when empty)."""
    if not len(dataset):
        return None
    points = [obj.point for obj in dataset.objects]
    lo = tuple(min(p[axis] for p in points) for axis in range(dataset.dim))
    hi = tuple(max(p[axis] for p in points) for axis in range(dataset.dim))
    return Rect(lo, hi)


class ShardedQueryEngine:
    """Fan-out serving over ``S`` spatial shards with merged cost traces.

    The external contract matches :class:`QueryEngine` — ``query``/``batch``
    with per-call budget overrides, an LRU result cache, per-query
    :class:`QueryRecord` traces, JSON-safe ``stats()`` — so the CLI and any
    caller can swap one for the other.  Internally each shard runs its own
    budget-bounded engine (cache disabled; the sharded engine caches merged
    results once), and a query's budget is split across the fan-out as
    described in the module docstring.

    Parameters mirror :class:`QueryEngine`, plus ``shards``.  With
    ``tracing=True`` each query's record carries a finished span tree whose
    fan-out span holds one child span per shard; the per-shard engines'
    strategy and index spans nest under their shard span.  The ``metrics``
    registry (private by default) aggregates at the fan-out level; the
    per-shard engines keep their own private registries so shard sub-queries
    never inflate the fan-out's ``queries_total``.
    """

    def __init__(
        self,
        dataset: Dataset,
        shards: int = 4,
        max_k: int = 4,
        default_budget: Optional[int] = None,
        cache_size: int = 128,
        sample_size: int = 256,
        seed: int = 0,
        keep_records: int = 1024,
        tracing: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        backend: str = "cost_model",
    ):
        from ..fast import validate_backend

        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if default_budget is not None and default_budget < 1:
            raise ValidationError(f"default_budget must be >= 1, got {default_budget}")
        if keep_records < 1:
            raise ValidationError(f"keep_records must be >= 1, got {keep_records}")
        self.dataset = dataset
        self.num_shards = shards
        self.max_k = max_k
        #: Execution backend handed to every shard engine ("auto" resolves
        #: per shard, per query, against that shard's own metrics history).
        self.backend = validate_backend(backend, allow_auto=True)
        self.default_budget = default_budget
        self.tracing = tracing
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Global vocabulary, shared across shards (each shard's inverted
        #: index only covers its slice; stats report the full W).
        self.vocabulary = dataset.vocabulary
        self.counter = CostCounter()  # engine-lifetime aggregate
        self._cache = LRUCache(cache_size)
        self._records: Deque[QueryRecord] = deque(maxlen=keep_records)
        self._queries_served = 0
        self._strategy_counts: Dict[str, int] = {}
        self._fallback_count = 0
        self._degraded_count = 0  # queries with >= 1 degraded slice
        self._degraded_slices = 0
        self.shard_datasets = partition_dataset(dataset, shards)
        #: Per-shard bounding boxes (``None`` for empty shards).  The
        #: sequential path fans out to every shard regardless (preserving
        #: the pinned trace shape); the concurrent front end uses these to
        #: skip shards whose bounds miss the query rectangle.
        self.shard_bounds: List[Optional[Rect]] = [
            _bounding_rect(shard) for shard in self.shard_datasets
        ]
        self.shard_engines: List[QueryEngine] = [
            QueryEngine(
                shard,
                max_k=max_k,
                default_budget=None,  # the fan-out hands each call its share
                cache_size=0,  # merged results are cached once, at this level
                sample_size=sample_size,
                seed=seed,
                keep_records=keep_records,
                backend=backend,
            )
            for shard in self.shard_datasets
        ]

    def __setstate__(self, state: Dict[str, Any]) -> None:
        # Mirror QueryEngine.__setstate__: engines pickled before the trace
        # layer existed default to tracing-off with a fresh private registry.
        self.__dict__.update(state)
        self.__dict__.setdefault("tracing", False)
        if self.__dict__.get("metrics") is None:
            self.metrics = MetricsRegistry()
        if "shard_bounds" not in self.__dict__:
            # Engines pickled before the concurrent fan-out existed.
            self.shard_bounds = [
                _bounding_rect(shard) for shard in self.shard_datasets
            ]
        # Engines pickled before the vectorized backend existed.
        self.__dict__.setdefault("backend", "cost_model")

    # -- serving ----------------------------------------------------------------

    def query(
        self,
        rect: Union[Rect, Sequence[float]],
        keywords: Sequence[int],
        budget: Optional[int] = None,
        counter: Optional[CostCounter] = None,
    ) -> Tuple[KeywordObject, ...]:
        """Fan one query out across every shard; merge results and traces.

        Same contract as :meth:`QueryEngine.query`: exact answers as an
        immutable tuple (sorted by object id — the shard merge defines a
        deterministic order), a per-query trace in :attr:`last_record`, and
        ``BudgetExceeded`` never escaping.
        """
        rect, words = self._validate(rect, keywords)
        budget = budget if budget is not None else self.default_budget
        caller = ensure_counter(counter)
        self._queries_served += 1
        query_id = self._queries_served
        self.metrics.counter("queries_total").inc()

        tracer: Optional[Tracer] = None
        if self.tracing:
            tracer = Tracer(
                "sharded_query", "sharding",
                query_id=query_id, shards=self.num_shards,
            )

        key = (rect.lo, rect.hi, frozenset(words))
        cached, hit = self._cache.lookup(key)
        if hit:
            return self._finish_cache_hit(
                query_id, rect, words, budget, cached, tracer
            )
        self.metrics.counter("cache_misses_total").inc()

        spent = CostCounter()  # merged per-query accumulator, never budgeted
        fallbacks: List[Dict[str, Any]] = []
        slices: List[Dict[str, Any]] = []
        merged: List[KeywordObject] = []
        remaining = budget
        for shard_id, engine in enumerate(self.shard_engines):
            if budget is None:
                share: Optional[int] = None
            else:
                share = shard_share(remaining, self.num_shards - shard_id)
            objs, probe, trace = self._query_shard(
                shard_id, engine, rect, words, share, tracer
            )
            merged.extend(objs)
            if budget is not None:
                # Unused share returns to the pool for the stragglers; an
                # overrun (fallbacks / degradation) is charged at most the
                # share, so one hot shard cannot starve the rest.  The share
                # never exceeds the pool, so the pool stays non-negative.
                remaining -= min(probe.total, share)
            for fallback in trace.fallbacks:
                fallbacks.append(dict(fallback, shard=shard_id))
            slices.append(
                {
                    "shard_id": shard_id,
                    "strategy": trace.strategy,
                    "budget": share,
                    "cost": probe.total,
                    "degraded": trace.degraded,
                }
            )
            spent.merge(probe)

        results = self._merge_results(merged)
        return self._finish_fanout(
            query_id=query_id,
            rect=rect,
            words=words,
            budget=budget,
            spent=spent,
            fallbacks=fallbacks,
            slices=slices,
            results=results,
            caller=caller,
            tracer=tracer,
            cache_key=key,
        )

    def _validate(
        self, rect: Union[Rect, Sequence[float]], keywords: Sequence[int]
    ) -> Tuple[Rect, List[int]]:
        """Coerce and validate a query's rectangle and keyword set."""
        rect = QueryEngine._coerce_rect(rect)
        words = sorted(set(validate_nonempty_keywords(keywords)))
        if len(words) > self.max_k:
            raise ValidationError(
                f"{len(words)} distinct keywords exceed max_k={self.max_k}"
            )
        if self.dataset.dim is not None and rect.dim != self.dataset.dim:
            raise ValidationError(
                f"query rectangle is {rect.dim}-dimensional, "
                f"data is {self.dataset.dim}-dimensional"
            )
        return rect, words

    def _finish_cache_hit(
        self,
        query_id: int,
        rect: Rect,
        words: Sequence[int],
        budget: Optional[int],
        cached: Tuple[KeywordObject, ...],
        tracer: Optional[Tracer],
    ) -> Tuple[KeywordObject, ...]:
        """Record and meter a cache hit (shared with the async front end)."""
        record = QueryRecord(
            query_id=query_id,
            rect_lo=rect.lo,
            rect_hi=rect.hi,
            keywords=tuple(words),
            strategy="cache",
            cache="hit",
            budget=budget,
            result_count=len(cached),
        )
        if tracer is not None:
            record.trace = tracer.finish().to_dict()
        self._records.append(record)
        self._strategy_counts["cache"] = self._strategy_counts.get("cache", 0) + 1
        self.metrics.counter("cache_hits_total").inc()
        self.metrics.counter("strategy_cache_total").inc()
        return cached

    def _query_shard(
        self,
        shard_id: int,
        engine: QueryEngine,
        rect: Rect,
        words: Sequence[int],
        share: Optional[int],
        tracer: Optional[Tracer],
    ) -> Tuple[List[KeywordObject], CostCounter, QueryRecord]:
        """Serve one shard's slice under its budget share.

        Returns the shard's objects, the probe counter holding its spend,
        and its :class:`QueryRecord` (read back immediately after the query,
        so callers that serialize per-engine access can run shards from a
        worker pool without racing on ``last_record``).
        """
        probe = CostCounter()
        if tracer is None:
            objs = list(engine.query(rect, words, budget=share, counter=probe))
        else:
            with tracer.span(f"shard-{shard_id}", "sharding", budget=share):
                objs = list(
                    engine.query(
                        rect, words, budget=share, counter=probe, tracer=tracer
                    )
                )
        return objs, probe, engine.last_record

    @staticmethod
    def _merge_results(merged: List[KeywordObject]) -> Tuple[KeywordObject, ...]:
        """Dedup by object id and fix a deterministic (id-sorted) order.

        The shards partition the objects, so duplicates cannot arise; the
        dedup guards the invariant anyway (a future overlap bug must not
        silently double-report).
        """
        seen: set = set()
        unique = []
        for obj in merged:
            if obj.oid not in seen:
                seen.add(obj.oid)
                unique.append(obj)
        unique.sort(key=lambda obj: obj.oid)
        return tuple(unique)

    def _finish_fanout(
        self,
        *,
        query_id: int,
        rect: Rect,
        words: Sequence[int],
        budget: Optional[int],
        spent: CostCounter,
        fallbacks: List[Dict[str, Any]],
        slices: List[Dict[str, Any]],
        results: Tuple[KeywordObject, ...],
        caller: CostCounter,
        tracer: Optional[Tracer],
        cache_key: Optional[Tuple] = None,
    ) -> Tuple[KeywordObject, ...]:
        """Record, cache, meter, and account one completed fan-out.

        Shared between the sequential path and the async front end (which
        assembles ``slices``/``spent`` from a concurrent fan-out and then
        finishes on its event-loop thread — the cache and the record deque
        are not thread-safe, so this must not run concurrently with itself).
        """
        degraded_slices = sum(1 for s in slices if s["degraded"])
        degraded = degraded_slices > 0
        if cache_key is not None:
            self._cache.put(cache_key, results)
        record = QueryRecord(
            query_id=query_id,
            rect_lo=rect.lo,
            rect_hi=rect.hi,
            keywords=tuple(words),
            strategy="sharded",
            cache="miss",
            budget=budget,
            degraded=degraded,
            fallbacks=fallbacks,
            cost=spent.snapshot(),
            estimates={},
            result_count=len(results),
            shards=slices,
        )
        if tracer is not None:
            record.trace = tracer.finish().to_dict()
        self._records.append(record)
        self._strategy_counts["sharded"] = self._strategy_counts.get("sharded", 0) + 1
        self._fallback_count += len(fallbacks)
        self._degraded_slices += degraded_slices
        if degraded:
            self._degraded_count += 1
        self._observe_metrics(
            len(fallbacks), degraded, degraded_slices, spent.snapshot(), len(results)
        )
        # Caller accounting last and non-raising (absorb, not merge): same
        # invariant as QueryEngine._finish — a budgeted caller counter must
        # never lose the trace or the cache entry to BudgetExceeded.
        self.counter.absorb(spent)
        caller.absorb(spent)
        return results

    def _observe_metrics(
        self,
        fallback_count: int,
        degraded: bool,
        degraded_slices: int,
        cost: Dict[str, int],
        result_count: int,
    ) -> None:
        """Feed the registry one executed (non-cache-hit) fan-out outcome."""
        metrics = self.metrics
        metrics.counter("strategy_sharded_total").inc()
        if fallback_count:
            metrics.counter("fallbacks_total").inc(fallback_count)
            metrics.counter("budget_exhausted_total").inc()
        if degraded:
            metrics.counter("degraded_total").inc()
        if degraded_slices:
            metrics.counter("degraded_slices_total").inc(degraded_slices)
        for category in CATEGORIES:
            metrics.histogram(f"cost_{category}").observe(cost.get(category, 0))
        metrics.histogram("cost_total").observe(cost.get("total", 0))
        metrics.histogram("result_count").observe(result_count)

    def batch(
        self,
        queries: Iterable[QuerySpec],
        budget: Optional[int] = None,
        counter: Optional[CostCounter] = None,
    ) -> List[Tuple[KeywordObject, ...]]:
        """Serve a sequence of ``(rect, keywords)`` queries in order."""
        return [
            self.query(rect, keywords, budget=budget, counter=counter)
            for rect, keywords in queries
        ]

    # -- observability -----------------------------------------------------------

    @property
    def records(self) -> List[QueryRecord]:
        """The retained merged per-query traces, oldest first."""
        return list(self._records)

    @property
    def last_record(self) -> Optional[QueryRecord]:
        return self._records[-1] if self._records else None

    @property
    def cache(self) -> LRUCache:
        return self._cache

    def stats(self) -> Dict[str, Any]:
        """Lifetime statistics with a per-shard breakdown (JSON-safe)."""
        return {
            "queries": self._queries_served,
            "strategies": dict(self._strategy_counts),
            "fallbacks": self._fallback_count,
            "degraded": self._degraded_count,
            "degraded_slices": self._degraded_slices,
            "cache": self._cache.stats(),
            "cost": self.counter.snapshot(),
            "dataset": {
                "objects": len(self.dataset),
                "input_size": self.dataset.total_doc_size,
                "dim": self.dataset.dim,
                "vocabulary": len(self.vocabulary),
            },
            "shards": {
                "count": self.num_shards,
                "sizes": [len(shard) for shard in self.shard_datasets],
                "per_shard": [
                    {
                        "shard_id": shard_id,
                        "objects": len(engine.dataset),
                        "input_size": engine.dataset.total_doc_size,
                        "cost": engine.counter.snapshot(),
                        "degraded": engine.stats()["degraded"],
                    }
                    for shard_id, engine in enumerate(self.shard_engines)
                ],
            },
            "max_k": self.max_k,
            "default_budget": self.default_budget,
            "backend": getattr(self, "backend", "cost_model"),
            "metrics": self.metrics.snapshot(),
        }

    def export_stats_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.stats(), indent=indent, sort_keys=True)

    def export_records_json(self) -> str:
        """All retained merged traces as a JSON array (oldest first)."""
        return json.dumps(
            [record.to_dict() for record in self._records], sort_keys=True
        )

    @property
    def dim(self) -> Optional[int]:
        """Dimensionality of the served points (mirrors the index classes)."""
        return self.dataset.dim

    @property
    def input_size(self) -> int:
        """``N`` (mirrors the index classes, for ``cli info``)."""
        return self.dataset.total_doc_size

    @property
    def space_units(self) -> int:
        """Sum of the per-shard engines' stored entries."""
        return sum(engine.space_units for engine in self.shard_engines)

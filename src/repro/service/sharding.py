"""Sharded serving: spatial partitioning plus budget-bounded fan-out.

The ROADMAP's north star — serve heavy traffic — needs more than one
monolithic index: partitioned content-and-structure systems get their
robustness at scale from per-partition indexes with bounded per-partition
work.  This module is that step for :mod:`repro`:

* :func:`partition_dataset` splits a :class:`~repro.dataset.Dataset` into
  ``S`` spatially coherent shards by recursive **median kd-splits** — the
  same median-selection rule (and the same ``numpy.argpartition`` selection
  primitive) the kd-tree build uses, generalized to an arbitrary shard
  count by cutting each recursion level proportionally.  For ``S`` a power
  of two the cuts are exactly the kd-tree's median splits.

* :class:`ShardedQueryEngine` owns one per-shard
  :class:`~repro.service.engine.QueryEngine` (per-shard fused indexes and
  planners; the full dataset's vocabulary is kept for stats) and fans each
  query out across every shard.

Budget split and redistribution
-------------------------------
A query budget ``B`` is divided across the fan-out: shard ``i`` (of the
``S - i`` not yet served) receives ``ceil(remaining / (S - i))`` units
(:func:`shard_share`), so the first shard starts at ``ceil(B / S)``.  A
shard that finishes under its share returns the unused units to the pool —
later shards (the stragglers, which in a spatial partition are often the
ones actually intersecting the query rectangle) see a larger share.  A
shard that *overruns* its share (fallbacks, degradation) is charged at most
its share against the pool, so one hot shard cannot starve the rest into
cascading degradation.

The ceiling split is *exact*: every granted share is at most the pool, so
the pool never goes negative, and if every shard spends its full share the
grants telescope to exactly ``B`` — no unit is silently lost or granted
twice.  (The previous ``max(remaining // left, 1)`` rule minted budget out
of thin air once the pool ran dry: with ``B = 2`` over four shards it
granted four units.)  A shard whose share works out to zero is served with
a zero budget — its first charge degrades it to the unbudgeted exact path,
so answers stay correct and the degradation is visible in its slice.

Degradation stays per-slice: a shard that exhausts every strategy degrades
only its slice of the answer (recorded in the merged trace's ``shards``
list); the other shards still serve within budget.  As with the unsharded
engine, every strategy is exact, so sharding never changes the answer —
the differential suite asserts result equality against the unsharded
engine for every shard count.

Trace merging
-------------
Each per-shard engine produces its own :class:`QueryRecord`; the sharded
engine rolls them up into a single merged trace: per-category costs are
summed, per-shard fallbacks are tagged with their ``shard`` id, and the
record's ``shards`` field keeps one ``{shard_id, strategy, budget, cost,
degraded}`` slice per shard.  ``BudgetExceeded`` never escapes, and the
caller's counter receives the merged spend exactly once.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..costmodel import CATEGORIES, CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_nonempty_keywords
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from ..telemetry.events import EventLog
from ..telemetry.quantiles import StatsCollector
from ..trace import MetricsRegistry, Tracer, span_for
from .cache import LRUCache
from .engine import QueryEngine, QueryRecord, QuerySpec


def shard_share(pool: int, shards_left: int) -> int:
    """The next shard's budget grant: ``ceil(pool / shards_left)``.

    Never exceeds ``pool`` (so the running pool cannot go negative), and
    telescopes exactly: granting ``shard_share`` to each of ``shards_left``
    shards in turn, with every shard spending its full grant, hands out
    ``pool`` units in total — the no-loss/no-double-grant invariant the
    budget-split property test enforces.  Returns 0 once the pool is empty
    (a zero-budget shard degrades rather than borrowing units that were
    never in the budget).
    """
    return (pool + shards_left - 1) // shards_left


def split_budget_exact(budget: int, parts: int) -> List[int]:
    """Split ``budget`` into ``parts`` near-equal shares summing exactly.

    The concurrent fan-out cannot redistribute a straggler pool (all shards
    run at once), so it fixes every share upfront: ``budget // parts`` each,
    with the first ``budget % parts`` shares one unit larger.
    """
    if parts < 1:
        raise ValidationError(f"parts must be >= 1, got {parts}")
    base, extra = divmod(budget, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def partition_dataset(dataset: Dataset, shards: int) -> List[Dataset]:
    """Split ``dataset`` into ``shards`` spatial shards via median kd-splits.

    Recursive rule: to cut a set of objects into ``s`` shards, split the
    target count as ``s = s_left + s_right`` with ``s_left = s // 2``, pick
    the splitting axis round-robin by recursion level (the kd-tree's
    ``level % dim`` rule), and partition the objects at the coordinate of
    rank ``len * s_left / s`` along that axis (``numpy.argpartition``, the
    kd-tree build's selection primitive).  Shard sizes therefore differ by
    at most one object, and every shard is spatially coherent (an
    axis-aligned cell of the recursion).

    Shards keep the original objects (ids stay globally unique).  When the
    dataset has fewer objects than shards, the surplus shards come back
    explicitly empty (:meth:`Dataset.empty`) — a served shard, not an error.
    """
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    dim = dataset.dim
    pieces: List[List[KeywordObject]] = []

    def split(objs: List[KeywordObject], count: int, level: int) -> None:
        if count == 1:
            pieces.append(objs)
            return
        left_count = count // 2
        cut = (len(objs) * left_count) // count
        if 0 < cut < len(objs):
            axis = level % dim
            coords = np.array([obj.point[axis] for obj in objs])
            order = np.argpartition(coords, cut)
            objs = [objs[i] for i in order]
        split(objs[:cut], left_count, level + 1)
        split(objs[cut:], count - left_count, level + 1)

    split(list(dataset.objects), shards, 0)
    return [
        Dataset(piece) if piece else Dataset.empty(dim) for piece in pieces
    ]


def _bounding_rect(dataset: Dataset) -> Optional[Rect]:
    """Tightest axis-aligned box around ``dataset`` (``None`` when empty)."""
    if not len(dataset):
        return None
    points = [obj.point for obj in dataset.objects]
    lo = tuple(min(p[axis] for p in points) for axis in range(dataset.dim))
    hi = tuple(max(p[axis] for p in points) for axis in range(dataset.dim))
    return Rect(lo, hi)


def _expand_rect(bounds: Optional[Rect], point: Tuple[float, ...]) -> Rect:
    """The tightest box covering ``bounds`` and ``point``."""
    if bounds is None:
        return Rect(point, point)
    lo = tuple(min(b, p) for b, p in zip(bounds.lo, point))
    hi = tuple(max(b, p) for b, p in zip(bounds.hi, point))
    return Rect(lo, hi)


class ShardMap:
    """One immutable published shard layout of a :class:`ShardedQueryEngine`.

    The shard map is the sharded engine's epoch: datasets, per-shard engines,
    pruning bounds, per-shard delta buffers (objects inserted since the last
    rebalance), and the tombstone set are frozen together, so a reader that
    pins the map (:meth:`ShardedQueryEngine.snapshot`) keeps a consistent
    view across concurrent inserts, deletes, and rebalance cutovers.
    Mutations publish a *successor* map with one reference assignment and
    never touch a published one — the same copy-on-write discipline as
    :class:`repro.core.dynamize.Epoch`.

    ``query`` answers directly from the frozen datasets and deltas (an exact
    scan, fully charged), so a pinned :class:`~repro.service.Snapshot` can
    keep serving reads without touching the mutable per-shard engines.
    """

    __slots__ = (
        "epoch_id",
        "datasets",
        "engines",
        "bounds",
        "deltas",
        "tombstones",
        "live_sizes",
    )

    def __init__(
        self,
        epoch_id: int,
        datasets: Tuple[Dataset, ...],
        engines: Tuple[QueryEngine, ...],
        bounds: Tuple[Optional[Rect], ...],
        deltas: Tuple[Tuple[KeywordObject, ...], ...],
        tombstones: FrozenSet[int],
        live_sizes: Tuple[int, ...],
    ):
        self.epoch_id = epoch_id
        self.datasets = datasets
        self.engines = engines
        self.bounds = bounds
        self.deltas = deltas
        self.tombstones = tombstones
        self.live_sizes = live_sizes

    @property
    def live_count(self) -> int:
        return sum(self.live_sizes)

    def __len__(self) -> int:
        return self.live_count

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Answer one rect/keywords query from this frozen map alone.

        Exact scan over the frozen datasets and delta buffers (tombstones
        filtered), charged like the naive baseline: one ``objects_examined``
        per candidate, one ``comparisons`` per geometric test.  This is the
        snapshot read path — it never touches the mutable per-shard engines,
        so pinned snapshots are safe under any concurrent writer activity.
        """
        counter = ensure_counter(counter)
        words = set(keywords)
        result: List[KeywordObject] = []
        with span_for(counter, "shardmap-scan", "sharding", epoch=self.epoch_id):
            for shard_id, dataset in enumerate(self.datasets):
                for objects in (dataset.objects, self.deltas[shard_id]):
                    for obj in objects:
                        counter.charge("objects_examined")
                        if obj.oid in self.tombstones:
                            continue
                        counter.charge("comparisons")
                        if rect.contains_point(obj.point) and words <= obj.doc:
                            result.append(obj)
        result.sort(key=lambda obj: obj.oid)
        return result

    def live_oids(self) -> FrozenSet[int]:
        """The ids of every live object in this map (diagnostic)."""
        return frozenset(
            obj.oid
            for shard_id, dataset in enumerate(self.datasets)
            for objects in (dataset.objects, self.deltas[shard_id])
            for obj in objects
            if obj.oid not in self.tombstones
        )


class ShardedQueryEngine:
    """Fan-out serving over ``S`` spatial shards with merged cost traces.

    The external contract matches :class:`QueryEngine` — ``query``/``batch``
    with per-call budget overrides, an LRU result cache, per-query
    :class:`QueryRecord` traces, JSON-safe ``stats()`` — so the CLI and any
    caller can swap one for the other.  Internally each shard runs its own
    budget-bounded engine (cache disabled; the sharded engine caches merged
    results once), and a query's budget is split across the fan-out as
    described in the module docstring.

    Parameters mirror :class:`QueryEngine`, plus ``shards``.  With
    ``tracing=True`` each query's record carries a finished span tree whose
    fan-out span holds one child span per shard; the per-shard engines'
    strategy and index spans nest under their shard span.  The ``metrics``
    registry (private by default) aggregates at the fan-out level; the
    per-shard engines keep their own private registries so shard sub-queries
    never inflate the fan-out's ``queries_total``.
    """

    def __init__(
        self,
        dataset: Dataset,
        shards: int = 4,
        max_k: int = 4,
        default_budget: Optional[int] = None,
        cache_size: int = 128,
        sample_size: int = 256,
        seed: int = 0,
        keep_records: int = 1024,
        tracing: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        backend: str = "cost_model",
        events: Optional[EventLog] = None,
    ):
        from ..fast import validate_backend

        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if default_budget is not None and default_budget < 1:
            raise ValidationError(f"default_budget must be >= 1, got {default_budget}")
        if keep_records < 1:
            raise ValidationError(f"keep_records must be >= 1, got {keep_records}")
        self.dataset = dataset
        self.num_shards = shards
        self.max_k = max_k
        #: Execution backend handed to every shard engine ("auto" resolves
        #: per shard, per query, against that shard's own metrics history).
        self.backend = validate_backend(backend, allow_auto=True)
        self.default_budget = default_budget
        self.tracing = tracing
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Set before the first _publish_state call below so the initial
        # shard map's epoch_publish event is emitted too.
        self._events = events
        #: Per-(strategy, backend) running statistics for the fan-out level.
        self.stats_collector = StatsCollector()
        #: Global vocabulary, shared across shards (each shard's inverted
        #: index only covers its slice; stats report the full W).
        self.vocabulary = dataset.vocabulary
        self.counter = CostCounter()  # engine-lifetime aggregate
        self._cache = LRUCache(cache_size)
        self._records: Deque[QueryRecord] = deque(maxlen=keep_records)
        self._queries_served = 0
        self._strategy_counts: Dict[str, int] = {}
        self._fallback_count = 0
        self._degraded_count = 0  # queries with >= 1 degraded slice
        self._degraded_slices = 0
        # Shard-engine build parameters, kept so a rebalance can construct
        # replacement engines with the original configuration.
        self._sample_size = sample_size
        self._seed = seed
        self._keep_records = keep_records
        #: New objects are routed to the shard whose bounds need the least
        #: expansion; once the largest shard exceeds ``rebalance_threshold``
        #: times its fair share (``live_total / shards``), the next mutation
        #: publishes a rebalanced map (fresh ``partition_dataset`` over the
        #: live set).  The largest possible ratio is the shard count, so the
        #: default 1.5 fires for any shard count >= 2.
        self.rebalance_threshold = 1.5
        self._rebalances = 0
        #: Writer-side master copy of every object (tombstoned objects stay
        #: until a rebalance purges them) and each object's owning shard.
        #: Readers never touch these — all read state comes from the map.
        self._objects: Dict[int, KeywordObject] = {
            obj.oid: obj for obj in dataset.objects
        }
        self._owner: Dict[int, int] = {}
        self._next_oid = max(self._objects, default=-1) + 1
        datasets = tuple(partition_dataset(dataset, shards))
        for shard_id, shard in enumerate(datasets):
            for obj in shard.objects:
                self._owner[obj.oid] = shard_id
        self._publish_state(
            ShardMap(
                0,
                datasets,
                tuple(self._build_engines(datasets)),
                tuple(_bounding_rect(shard) for shard in datasets),
                tuple(() for _ in datasets),
                frozenset(),
                tuple(len(shard) for shard in datasets),
            )
        )

    def _build_engines(self, datasets: Sequence[Dataset]) -> List[QueryEngine]:
        """Fresh per-shard engines with this engine's build configuration."""
        return [
            QueryEngine(
                shard,
                max_k=self.max_k,
                default_budget=None,  # the fan-out hands each call its share
                cache_size=0,  # merged results are cached once, at this level
                sample_size=self._sample_size,
                seed=self._seed,
                keep_records=self._keep_records,
                backend=self.backend,
            )
            for shard in datasets
        ]

    def _publish_state(self, shard_map: ShardMap) -> None:
        """Atomically install the successor shard map (one assignment)."""
        self._state = shard_map
        # getattr: the legacy __setstate__ migration publishes before the
        # telemetry defaults are applied.
        events = getattr(self, "_events", None)
        if events is not None:
            events.emit(
                "epoch_publish",
                epoch=shard_map.epoch_id,
                shards=len(shard_map.datasets),
                live=shard_map.live_count,
                tombstones=len(shard_map.tombstones),
            )

    def __getstate__(self) -> Dict[str, Any]:
        # The event log is a live operational attachment (often shared
        # across the serving stack); never persisted with the engine.
        state = dict(self.__dict__)
        state["_events"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        # Mirror QueryEngine.__setstate__: engines pickled before the trace
        # layer existed default to tracing-off with a fresh private registry.
        # Engines pickled before the copy-on-write shard map existed carry
        # plain shard_datasets / shard_engines / shard_bounds attributes
        # (now read-only properties over the map): migrate them into an
        # epoch-0 ShardMap with empty deltas and tombstones.
        legacy_datasets = state.pop("shard_datasets", None)
        legacy_engines = state.pop("shard_engines", None)
        legacy_bounds = state.pop("shard_bounds", None)
        self.__dict__.update(state)
        self.__dict__.setdefault("tracing", False)
        if self.__dict__.get("metrics") is None:
            self.metrics = MetricsRegistry()
        # Engines pickled before the vectorized backend existed.
        self.__dict__.setdefault("backend", "cost_model")
        # Engines pickled before online rebalancing existed.
        self.__dict__.setdefault("_sample_size", 256)
        self.__dict__.setdefault("_seed", 0)
        self.__dict__.setdefault("_keep_records", 1024)
        self.__dict__.setdefault("rebalance_threshold", 1.5)
        self.__dict__.setdefault("_rebalances", 0)
        # Engines pickled before the telemetry subsystem.
        self.__dict__.setdefault("_events", None)
        if self.__dict__.get("stats_collector") is None:
            self.stats_collector = StatsCollector()
        if "_state" not in self.__dict__ and legacy_datasets is not None:
            datasets = tuple(legacy_datasets)
            engines = (
                tuple(legacy_engines)
                if legacy_engines is not None
                else tuple(self._build_engines(datasets))
            )
            bounds = (
                tuple(legacy_bounds)
                if legacy_bounds is not None
                # Engines pickled before the concurrent fan-out existed.
                else tuple(_bounding_rect(shard) for shard in datasets)
            )
            self._objects = {
                obj.oid: obj for shard in datasets for obj in shard.objects
            }
            self._owner = {
                obj.oid: shard_id
                for shard_id, shard in enumerate(datasets)
                for obj in shard.objects
            }
            self._next_oid = max(self._objects, default=-1) + 1
            self._publish_state(
                ShardMap(
                    0,
                    datasets,
                    engines,
                    bounds,
                    tuple(() for _ in datasets),
                    frozenset(),
                    tuple(len(shard) for shard in datasets),
                )
            )

    # -- published shard map -----------------------------------------------------

    @property
    def epoch(self) -> ShardMap:
        """The currently published shard map (advances on every mutation)."""
        return self._state

    def snapshot(self) -> ShardMap:
        """Pin the current shard map for isolated reads.

        The returned map is immutable: queries against it (directly or via a
        :class:`~repro.service.Snapshot`) keep answering from the pinned
        layout no matter how many inserts, deletes, or rebalances are
        published afterwards — the snapshot-isolated cutover contract.
        """
        return self._state

    def __len__(self) -> int:
        return self._state.live_count

    @property
    def shard_datasets(self) -> List[Dataset]:
        """Per-shard base datasets of the published map (delta objects live
        in :attr:`ShardMap.deltas` until a rebalance folds them in)."""
        return list(self._state.datasets)

    @property
    def shard_engines(self) -> List[QueryEngine]:
        """Per-shard engines of the published map."""
        return list(self._state.engines)

    @property
    def shard_bounds(self) -> List[Optional[Rect]]:
        """Per-shard pruning boxes (``None`` for empty shards), refreshed on
        every publish.  The sequential path fans out to every shard
        regardless (preserving the pinned trace shape); the concurrent front
        end uses these to skip shards whose bounds miss the query rectangle.
        """
        return list(self._state.bounds)

    # -- updates -----------------------------------------------------------------

    def insert(self, point: Sequence[float], doc) -> int:
        """Insert an object; returns its assigned id.

        The object joins the delta buffer of the shard whose bounds need the
        least expansion (ties to the lowest shard id), the shard's pruning
        box is expanded to cover it, and the successor map is published
        atomically — in-flight readers on the previous map finish
        consistently without the new object.  When the insert tips the
        balance past :attr:`rebalance_threshold`, the published map is a
        full rebalance instead (see :meth:`rebalance`).
        """
        coords = tuple(float(c) for c in point)
        state = self._state
        dim = self.dataset.dim if self.dataset.dim is not None else len(coords)
        if len(coords) != dim:
            raise ValidationError(
                f"point is {len(coords)}-dimensional, data is {dim}-dimensional"
            )
        for coord in coords:
            if not math.isfinite(coord):
                raise ValidationError(
                    f"point has a non-finite coordinate ({coord})"
                )
        obj = KeywordObject(oid=self._next_oid, point=coords, doc=frozenset(doc))
        shard_id = self._route(state, coords)
        self._next_oid += 1
        self._objects[obj.oid] = obj
        self._owner[obj.oid] = shard_id
        deltas = tuple(
            delta + (obj,) if sid == shard_id else delta
            for sid, delta in enumerate(state.deltas)
        )
        bounds = tuple(
            _expand_rect(bound, coords) if sid == shard_id else bound
            for sid, bound in enumerate(state.bounds)
        )
        live_sizes = tuple(
            size + (1 if sid == shard_id else 0)
            for sid, size in enumerate(state.live_sizes)
        )
        if self._needs_rebalance(live_sizes, state.tombstones):
            self._publish_state(self._rebalanced_map(state.tombstones, None))
        else:
            self._publish_state(
                ShardMap(
                    state.epoch_id + 1,
                    state.datasets,
                    state.engines,
                    bounds,
                    deltas,
                    state.tombstones,
                    live_sizes,
                )
            )
        self._meter_shards()
        return obj.oid

    def delete(self, oid: int) -> None:
        """Tombstone an object; physical removal happens at the next rebalance.

        Deleting an unknown id or an already-tombstoned id raises
        :class:`~repro.errors.ValidationError` with **no** side effects: no
        tombstone is recorded and no map is published.  Once half the stored
        objects are dead, the next delete publishes a rebalanced map (the
        purge) instead of another tombstone-only map.
        """
        state = self._state
        if oid not in self._objects:
            raise ValidationError(f"unknown object id {oid}")
        if oid in state.tombstones:
            raise ValidationError(f"object {oid} already deleted")
        tombstones = state.tombstones | {oid}
        shard_id = self._owner[oid]
        live_sizes = tuple(
            size - (1 if sid == shard_id else 0)
            for sid, size in enumerate(state.live_sizes)
        )
        if len(tombstones) * 2 >= len(self._objects) or self._needs_rebalance(
            live_sizes, tombstones
        ):
            self._publish_state(self._rebalanced_map(tombstones, None))
        else:
            self._publish_state(
                ShardMap(
                    state.epoch_id + 1,
                    state.datasets,
                    state.engines,
                    state.bounds,
                    state.deltas,
                    tombstones,
                    live_sizes,
                )
            )
        self._meter_shards()

    def rebalance(self, shards: Optional[int] = None) -> None:
        """Re-partition the live set into ``shards`` fresh shards now.

        The new map — datasets re-cut by :func:`partition_dataset`, fresh
        engines, tight bounds, empty deltas, tombstones purged — is built
        entirely off to the side and published in one step: readers pinned
        to the old map (e.g. through :class:`~repro.service.SnapshotManager`)
        keep a consistent view of the pre-cutover layout, new queries see
        the rebalanced layout.  The imbalance trigger calls this implicitly;
        it is public for operator-driven splits (``shards`` > current count).
        """
        self._publish_state(self._rebalanced_map(self._state.tombstones, shards))
        self._meter_shards()

    def _route(self, state: ShardMap, coords: Tuple[float, ...]) -> int:
        """The shard whose pruning box needs the least L1 expansion."""
        best_id = 0
        best_cost: Optional[float] = None
        for shard_id, bound in enumerate(state.bounds):
            if bound is None:
                cost = 0.0  # an empty shard absorbs the point for free
            else:
                cost = sum(
                    max(b_lo - c, 0.0) + max(c - b_hi, 0.0)
                    for b_lo, b_hi, c in zip(bound.lo, bound.hi, coords)
                )
            if best_cost is None or cost < best_cost:
                best_id, best_cost = shard_id, cost
        return best_id

    def _needs_rebalance(
        self, live_sizes: Tuple[int, ...], tombstones: FrozenSet[int]
    ) -> bool:
        """Has the partition balance decayed past the threshold?

        Balance is the largest shard's live size over the exact fair share
        ``live_total / shards`` (a fresh :func:`partition_dataset` achieves
        it up to one object); dead weight counts separately through the
        half-dead purge in :meth:`delete`.  A one-object slack absorbs the
        tiny-count regime where a single insert swings the ratio.
        """
        live_total = sum(live_sizes)
        if live_total == 0:
            return bool(tombstones)
        fair = live_total / len(live_sizes)
        return max(live_sizes) > self.rebalance_threshold * fair + 1.0

    def _rebalanced_map(
        self, tombstones: FrozenSet[int], shards: Optional[int]
    ) -> ShardMap:
        """Build (but do not publish) a fresh balanced map over the live set.

        Purges ``tombstones`` from the writer-side master copy, re-cuts the
        survivors with :func:`partition_dataset`, and rebuilds engines and
        bounds.  The caller publishes the result — exactly once per
        mutation, so a reader can never observe a half-cutover layout.
        """
        if shards is not None:
            if shards < 1:
                raise ValidationError(f"shards must be >= 1, got {shards}")
            self.num_shards = shards
        live = [
            obj
            for oid, obj in sorted(self._objects.items())
            if oid not in tombstones
        ]
        self._objects = {obj.oid: obj for obj in live}
        dim = self.dataset.dim if self.dataset.dim is not None else 1
        dataset = Dataset(live) if live else Dataset.empty(dim)
        datasets = tuple(partition_dataset(dataset, self.num_shards))
        self._owner = {
            obj.oid: shard_id
            for shard_id, shard in enumerate(datasets)
            for obj in shard.objects
        }
        self._rebalances += 1
        self.metrics.counter("rebalances_total").inc()
        if self._events is not None:
            self._events.emit(
                "shard_rebalance",
                epoch=self._state.epoch_id + 1,
                shards=self.num_shards,
                live=len(live),
                purged=len(tombstones),
            )
        return ShardMap(
            self._state.epoch_id + 1,
            datasets,
            tuple(self._build_engines(datasets)),
            tuple(_bounding_rect(shard) for shard in datasets),
            tuple(() for _ in datasets),
            frozenset(),
            tuple(len(shard) for shard in datasets),
        )

    def _meter_shards(self) -> None:
        """Publish the writer's post-mutation shard gauges."""
        state = self._state
        live_total = state.live_count
        self.metrics.gauge("shard_epoch").set(state.epoch_id)
        self.metrics.gauge("shard_live_objects").set(live_total)
        self.metrics.gauge("shard_imbalance").set(
            max(state.live_sizes) / (live_total / len(state.live_sizes))
            if live_total
            else 0.0
        )
        self.metrics.gauge("shard_tombstone_fraction").set(
            len(state.tombstones) / max(len(self._objects), 1)
        )

    # -- serving ----------------------------------------------------------------

    def query(
        self,
        rect: Union[Rect, Sequence[float]],
        keywords: Sequence[int],
        budget: Optional[int] = None,
        counter: Optional[CostCounter] = None,
    ) -> Tuple[KeywordObject, ...]:
        """Fan one query out across every shard; merge results and traces.

        Same contract as :meth:`QueryEngine.query`: exact answers as an
        immutable tuple (sorted by object id — the shard merge defines a
        deterministic order), a per-query trace in :attr:`last_record`, and
        ``BudgetExceeded`` never escaping.
        """
        rect, words = self._validate(rect, keywords)
        budget = budget if budget is not None else self.default_budget
        caller = ensure_counter(counter)
        # Pin the published map once: the whole fan-out (and the cache key)
        # runs against one consistent shard layout even if a writer
        # publishes an insert or a rebalance cutover mid-flight.
        state = self._state
        self._queries_served += 1
        query_id = self._queries_served
        self.metrics.counter("queries_total").inc()

        tracer: Optional[Tracer] = None
        if self.tracing:
            tracer = Tracer(
                "sharded_query", "sharding",
                query_id=query_id, shards=len(state.engines),
            )

        # The map's epoch is part of the key, so a mutation implicitly
        # invalidates every cached merged result from older layouts.
        key = (state.epoch_id, rect.lo, rect.hi, frozenset(words))
        cached, hit = self._cache.lookup(key)
        if hit:
            return self._finish_cache_hit(
                query_id, rect, words, budget, cached, tracer
            )
        self.metrics.counter("cache_misses_total").inc()

        spent = CostCounter()  # merged per-query accumulator, never budgeted
        fallbacks: List[Dict[str, Any]] = []
        slices: List[Dict[str, Any]] = []
        merged: List[KeywordObject] = []
        remaining = budget
        num_shards = len(state.engines)
        for shard_id in range(num_shards):
            if budget is None:
                share: Optional[int] = None
            else:
                share = shard_share(remaining, num_shards - shard_id)
            objs, probe, trace = self._query_shard(
                state, shard_id, rect, words, share, tracer
            )
            merged.extend(objs)
            if budget is not None:
                # Unused share returns to the pool for the stragglers; an
                # overrun (fallbacks / degradation) is charged at most the
                # share, so one hot shard cannot starve the rest.  The share
                # never exceeds the pool, so the pool stays non-negative.
                remaining -= min(probe.total, share)
            for fallback in trace.fallbacks:
                fallbacks.append(dict(fallback, shard=shard_id))
            slices.append(
                {
                    "shard_id": shard_id,
                    "strategy": trace.strategy,
                    "budget": share,
                    "cost": probe.total,
                    "degraded": trace.degraded,
                }
            )
            spent.merge(probe)

        results = self._merge_results(merged)
        return self._finish_fanout(
            query_id=query_id,
            rect=rect,
            words=words,
            budget=budget,
            spent=spent,
            fallbacks=fallbacks,
            slices=slices,
            results=results,
            caller=caller,
            tracer=tracer,
            cache_key=key,
        )

    def _validate(
        self, rect: Union[Rect, Sequence[float]], keywords: Sequence[int]
    ) -> Tuple[Rect, List[int]]:
        """Coerce and validate a query's rectangle and keyword set."""
        rect = QueryEngine._coerce_rect(rect)
        words = sorted(set(validate_nonempty_keywords(keywords)))
        if len(words) > self.max_k:
            raise ValidationError(
                f"{len(words)} distinct keywords exceed max_k={self.max_k}"
            )
        if self.dataset.dim is not None and rect.dim != self.dataset.dim:
            raise ValidationError(
                f"query rectangle is {rect.dim}-dimensional, "
                f"data is {self.dataset.dim}-dimensional"
            )
        return rect, words

    def _finish_cache_hit(
        self,
        query_id: int,
        rect: Rect,
        words: Sequence[int],
        budget: Optional[int],
        cached: Tuple[KeywordObject, ...],
        tracer: Optional[Tracer],
    ) -> Tuple[KeywordObject, ...]:
        """Record and meter a cache hit (shared with the async front end)."""
        record = QueryRecord(
            query_id=query_id,
            rect_lo=rect.lo,
            rect_hi=rect.hi,
            keywords=tuple(words),
            strategy="cache",
            cache="hit",
            budget=budget,
            result_count=len(cached),
        )
        if tracer is not None:
            record.trace = tracer.finish().to_dict()
        self._records.append(record)
        self._strategy_counts["cache"] = self._strategy_counts.get("cache", 0) + 1
        self.metrics.counter("cache_hits_total").inc()
        self.metrics.counter("strategy_cache_total").inc()
        if self._events is not None:
            self._events.emit(
                "query_finish",
                query_id=query_id,
                strategy="cache",
                cache="hit",
                cost_total=0,
                result_count=len(cached),
                degraded=False,
            )
        return cached

    def _query_shard(
        self,
        state: ShardMap,
        shard_id: int,
        rect: Rect,
        words: Sequence[int],
        share: Optional[int],
        tracer: Optional[Tracer],
    ) -> Tuple[List[KeywordObject], CostCounter, QueryRecord]:
        """Serve one shard's slice of the pinned map under its budget share.

        The base engine answers for the shard's build-time dataset; objects
        inserted since the last rebalance live in the map's delta buffer and
        are scanned on top (fully charged); tombstoned objects are filtered
        from the combined slice.  Returns the shard's objects, the probe
        counter holding its spend, and its :class:`QueryRecord` (read back
        immediately after the query, so callers that serialize per-engine
        access can run shards from a worker pool without racing on
        ``last_record``).
        """
        engine = state.engines[shard_id]
        probe = CostCounter()
        if tracer is None:
            objs = list(engine.query(rect, words, budget=share, counter=probe))
        else:
            with tracer.span(f"shard-{shard_id}", "sharding", budget=share):
                objs = list(
                    engine.query(
                        rect, words, budget=share, counter=probe, tracer=tracer
                    )
                )
        delta = state.deltas[shard_id]
        if delta:
            required = set(words)
            with span_for(probe, "delta-scan", "sharding", shard=shard_id):
                for obj in delta:
                    probe.charge("objects_examined")
                    probe.charge("comparisons")
                    if rect.contains_point(obj.point) and required <= obj.doc:
                        objs.append(obj)
        if state.tombstones:
            with span_for(probe, "tombstone-filter", "sharding", shard=shard_id):
                kept = []
                for obj in objs:
                    probe.charge("structure_probes")
                    if obj.oid not in state.tombstones:
                        kept.append(obj)
                objs = kept
        return objs, probe, engine.last_record

    @staticmethod
    def _merge_results(merged: List[KeywordObject]) -> Tuple[KeywordObject, ...]:
        """Dedup by object id and fix a deterministic (id-sorted) order.

        The shards partition the objects, so duplicates cannot arise; the
        dedup guards the invariant anyway (a future overlap bug must not
        silently double-report).
        """
        seen: set = set()
        unique = []
        for obj in merged:
            if obj.oid not in seen:
                seen.add(obj.oid)
                unique.append(obj)
        unique.sort(key=lambda obj: obj.oid)
        return tuple(unique)

    def _finish_fanout(
        self,
        *,
        query_id: int,
        rect: Rect,
        words: Sequence[int],
        budget: Optional[int],
        spent: CostCounter,
        fallbacks: List[Dict[str, Any]],
        slices: List[Dict[str, Any]],
        results: Tuple[KeywordObject, ...],
        caller: CostCounter,
        tracer: Optional[Tracer],
        cache_key: Optional[Tuple] = None,
    ) -> Tuple[KeywordObject, ...]:
        """Record, cache, meter, and account one completed fan-out.

        Shared between the sequential path and the async front end (which
        assembles ``slices``/``spent`` from a concurrent fan-out and then
        finishes on its event-loop thread — the cache and the record deque
        are not thread-safe, so this must not run concurrently with itself).
        """
        degraded_slices = sum(1 for s in slices if s["degraded"])
        degraded = degraded_slices > 0
        if cache_key is not None:
            evicted = self._cache.put(cache_key, results)
            if evicted and self._events is not None:
                self._events.emit(
                    "cache_evict", query_id=query_id, evicted=evicted,
                    size=len(self._cache), capacity=self._cache.capacity,
                )
        record = QueryRecord(
            query_id=query_id,
            rect_lo=rect.lo,
            rect_hi=rect.hi,
            keywords=tuple(words),
            strategy="sharded",
            cache="miss",
            budget=budget,
            degraded=degraded,
            fallbacks=fallbacks,
            cost=spent.snapshot(),
            estimates={},
            result_count=len(results),
            shards=slices,
        )
        if tracer is not None:
            record.trace = tracer.finish().to_dict()
        self._records.append(record)
        self._strategy_counts["sharded"] = self._strategy_counts.get("sharded", 0) + 1
        self._fallback_count += len(fallbacks)
        self._degraded_slices += degraded_slices
        if degraded:
            self._degraded_count += 1
        self._observe_metrics(
            len(fallbacks), degraded, degraded_slices, spent.snapshot(), len(results)
        )
        self.stats_collector.observe(
            "sharded",
            self.backend,
            record.cost.get("total", 0),
            len(results),
            corpus_size=self._state.live_count,
        )
        if self._events is not None:
            if degraded:
                self._events.emit(
                    "query_degraded",
                    query_id=query_id,
                    strategy="sharded",
                    fallbacks=len(fallbacks),
                    budget=budget,
                    cost_total=record.cost.get("total", 0),
                    degraded_slices=degraded_slices,
                )
            self._events.emit(
                "query_finish",
                query_id=query_id,
                strategy="sharded",
                cache="miss",
                cost_total=record.cost.get("total", 0),
                result_count=len(results),
                degraded=degraded,
            )
        # Caller accounting last and non-raising (absorb, not merge): same
        # invariant as QueryEngine._finish — a budgeted caller counter must
        # never lose the trace or the cache entry to BudgetExceeded.
        self.counter.absorb(spent)
        caller.absorb(spent)
        return results

    def _observe_metrics(
        self,
        fallback_count: int,
        degraded: bool,
        degraded_slices: int,
        cost: Dict[str, int],
        result_count: int,
    ) -> None:
        """Feed the registry one executed (non-cache-hit) fan-out outcome."""
        metrics = self.metrics
        metrics.counter("strategy_sharded_total").inc()
        if fallback_count:
            metrics.counter("fallbacks_total").inc(fallback_count)
            metrics.counter("budget_exhausted_total").inc()
        if degraded:
            metrics.counter("degraded_total").inc()
        if degraded_slices:
            metrics.counter("degraded_slices_total").inc(degraded_slices)
        for category in CATEGORIES:
            metrics.histogram(f"cost_{category}").observe(cost.get(category, 0))
        metrics.histogram("cost_total").observe(cost.get("total", 0))
        metrics.histogram("result_count").observe(result_count)

    def batch(
        self,
        queries: Iterable[QuerySpec],
        budget: Optional[int] = None,
        counter: Optional[CostCounter] = None,
    ) -> List[Tuple[KeywordObject, ...]]:
        """Serve a sequence of ``(rect, keywords)`` queries in order."""
        return [
            self.query(rect, keywords, budget=budget, counter=counter)
            for rect, keywords in queries
        ]

    # -- observability -----------------------------------------------------------

    @property
    def records(self) -> List[QueryRecord]:
        """The retained merged per-query traces, oldest first."""
        return list(self._records)

    @property
    def last_record(self) -> Optional[QueryRecord]:
        return self._records[-1] if self._records else None

    @property
    def cache(self) -> LRUCache:
        return self._cache

    @property
    def events(self) -> Optional[EventLog]:
        """The attached structured event log (``None`` when not wired)."""
        return self._events

    def attach_events(self, events: Optional[EventLog]) -> None:
        """Attach (or detach with ``None``) a structured event log."""
        self._events = events

    def planner_stats(self) -> Dict[str, Any]:
        """The stable statistics feed: fan-out cells plus every shard's.

        Rolls the per-shard engines' collectors into the fan-out's own via
        the exact pooled merge, so the rendering covers both the merged
        ``sharded`` strategy and the per-shard strategy choices.
        """
        merged = StatsCollector()
        merged.merge(self.stats_collector)
        for engine in self.shard_engines:
            merged.merge(engine.stats_collector)
        return merged.planner_stats()

    def stats(self) -> Dict[str, Any]:
        """Lifetime statistics with a per-shard breakdown (JSON-safe)."""
        return {
            "queries": self._queries_served,
            "strategies": dict(self._strategy_counts),
            "fallbacks": self._fallback_count,
            "degraded": self._degraded_count,
            "degraded_slices": self._degraded_slices,
            "cache": self._cache.stats(),
            "cost": self.counter.snapshot(),
            "dataset": {
                "objects": len(self.dataset),
                "input_size": self.dataset.total_doc_size,
                "dim": self.dataset.dim,
                "vocabulary": len(self.vocabulary),
            },
            "shards": {
                "count": self.num_shards,
                "sizes": [len(shard) for shard in self.shard_datasets],
                "epoch": self._state.epoch_id,
                "live_sizes": list(self._state.live_sizes),
                "delta_sizes": [len(delta) for delta in self._state.deltas],
                "tombstones": len(self._state.tombstones),
                "rebalances": self._rebalances,
                "per_shard": [
                    {
                        "shard_id": shard_id,
                        "objects": len(engine.dataset),
                        "input_size": engine.dataset.total_doc_size,
                        "cost": engine.counter.snapshot(),
                        "degraded": engine.stats()["degraded"],
                    }
                    for shard_id, engine in enumerate(self.shard_engines)
                ],
            },
            "max_k": self.max_k,
            "default_budget": self.default_budget,
            "backend": getattr(self, "backend", "cost_model"),
            "metrics": self.metrics.snapshot(),
        }

    def export_stats_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.stats(), indent=indent, sort_keys=True)

    def export_records_json(self) -> str:
        """All retained merged traces as a JSON array (oldest first)."""
        return json.dumps(
            [record.to_dict() for record in self._records], sort_keys=True
        )

    @property
    def dim(self) -> Optional[int]:
        """Dimensionality of the served points (mirrors the index classes)."""
        return self.dataset.dim

    @property
    def input_size(self) -> int:
        """``N`` (mirrors the index classes, for ``cli info``)."""
        return self.dataset.total_doc_size

    @property
    def space_units(self) -> int:
        """Sum of the per-shard engines' stored entries."""
        return sum(engine.space_units for engine in self.shard_engines)

"""Word-packed set intersection: the *other* line of k-SI research (§2).

§2 reviews two lines of work on k-SI reporting.  This module implements the
first one — query time ``o(N) + O(OUT)`` through word-level parallelism
(Bille-Pagh-Pagh [11], Eppstein et al. [27], Goodrich [33]): store each set
``S_w`` as a bitmap over the element universe and intersect ``k`` bitmaps
with word-wide ANDs, paying ``O(k * N / wlen + OUT)`` time.

Python integers are arbitrary-precision bitstrings whose bitwise AND runs at
machine-word speed in C, so a single ``&`` chain is the exact analogue of
the word-RAM algorithm.  For the cost model, one ``structure_probes`` unit
is charged per machine word touched (``universe / wlen`` per set), making
the measured cost directly comparable with the other k-SI indexes.

Goodrich's corollary for ORP-KW with d = 1 (§2: "an O(N)-size index and
O(N loglogN / logN + OUT) expected query time") is realized by
:class:`BitsetIntervalIndex`: sort the objects by coordinate, keep bitmaps
in sorted order, and mask the query interval's prefix/suffix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject
from ..errors import ValidationError
from ..trace import span_for

#: Machine word size assumed by the cost accounting (CPython uses 30-bit
#: digits internally; 64 matches the paper's wlen = Θ(log N) reading).
WORD_LENGTH = 64


class BitsetKSI:
    """k-SI reporting via bitmap intersection (the [11, 27, 33] line)."""

    def __init__(self, sets: Sequence[Sequence[int]]):
        if not sets:
            raise ValidationError("a k-SI instance needs at least one set")
        elements = set()
        for members in sets:
            elements.update(members)
        if not elements:
            raise ValidationError("the set family contains no elements")
        #: elements in universe order; bit i of a mask = membership of
        #: self.universe[i].
        self.universe: List[int] = sorted(elements)
        self._position: Dict[int, int] = {e: i for i, e in enumerate(self.universe)}
        self.input_size = sum(len(set(s)) for s in sets)
        self._masks: List[int] = []
        for members in sets:
            mask = 0
            for element in set(members):
                mask |= 1 << self._position[element]
            self._masks.append(mask)

    @property
    def num_sets(self) -> int:
        """``m``."""
        return len(self._masks)

    def words_per_set(self) -> int:
        """Machine words per bitmap (the unit of intersection work)."""
        return (len(self.universe) + WORD_LENGTH - 1) // WORD_LENGTH

    def report(
        self, set_ids: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Sorted intersection of the requested sets.

        Cost: ``k * ceil(universe / wlen)`` word operations plus one
        ``objects_examined`` per reported element.
        """
        counter = ensure_counter(counter)
        ids = list(set_ids)
        if not ids:
            raise ValidationError("need at least one set id")
        try:
            mask = self._masks[ids[0]]
            for set_id in ids[1:]:
                mask &= self._masks[set_id]
        except IndexError as exc:
            raise ValidationError(f"set id out of range: {ids}") from exc
        with span_for(counter, "report", "bitset_ksi"):
            counter.charge("structure_probes", len(ids) * self.words_per_set())
            result = []
            for position in _iter_bits(mask):
                counter.charge("objects_examined")
                result.append(self.universe[position])
        return result

    def is_empty(
        self, set_ids: Sequence[int], counter: Optional[CostCounter] = None
    ) -> bool:
        """Emptiness via the same AND chain (no enumeration cost)."""
        counter = ensure_counter(counter)
        ids = list(set_ids)
        mask = self._masks[ids[0]]
        for set_id in ids[1:]:
            mask &= self._masks[set_id]
        counter.charge("structure_probes", len(ids) * self.words_per_set())
        return mask == 0

    @property
    def space_units(self) -> int:
        """Words across all bitmaps plus the universe array."""
        return self.num_sets * self.words_per_set() + len(self.universe)


class BitsetIntervalIndex:
    """ORP-KW with d = 1 in the word-RAM style (Goodrich [33], §2).

    Objects are sorted by coordinate; each keyword's bitmap is over *sorted
    positions*, so an interval query is an AND chain followed by a mask that
    zeroes everything outside the contiguous rank range of the interval.
    Query cost: ``O(k * N / wlen + log|D| + OUT)``.
    """

    def __init__(self, dataset: Dataset):
        if dataset.dim != 1:
            raise ValidationError(
                f"BitsetIntervalIndex is 1-D only (got d={dataset.dim})"
            )
        self.dataset = dataset
        order = sorted(range(len(dataset)), key=lambda i: (dataset.objects[i].point[0], i))
        self._sorted_objects: List[KeywordObject] = [dataset.objects[i] for i in order]
        self._coords: List[float] = [obj.point[0] for obj in self._sorted_objects]
        self.input_size = dataset.total_doc_size
        self._masks: Dict[int, int] = {}
        for position, obj in enumerate(self._sorted_objects):
            bit = 1 << position
            for word in obj.doc:
                self._masks[word] = self._masks.get(word, 0) | bit

    def words_per_mask(self) -> int:
        """Machine words per keyword bitmap."""
        return (len(self._sorted_objects) + WORD_LENGTH - 1) // WORD_LENGTH

    def query(
        self,
        lo: float,
        hi: float,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Objects with coordinate in ``[lo, hi]`` containing all keywords."""
        from bisect import bisect_left, bisect_right

        counter = ensure_counter(counter)
        words = list(keywords)
        if not words:
            raise ValidationError("need at least one keyword")
        mask = self._masks.get(words[0], 0)
        for word in words[1:]:
            mask &= self._masks.get(word, 0)
        counter.charge("structure_probes", len(words) * self.words_per_mask())
        start = bisect_left(self._coords, lo)
        stop = bisect_right(self._coords, hi)
        counter.charge("comparisons", 2)
        if start >= stop:
            return []
        range_mask = ((1 << (stop - start)) - 1) << start
        mask &= range_mask
        result = []
        for position in _iter_bits(mask):
            counter.charge("objects_examined")
            result.append(self._sorted_objects[position])
        return result

    @property
    def space_units(self) -> int:
        """Words across all keyword bitmaps plus the sorted arrays."""
        return len(self._masks) * self.words_per_mask() + 2 * len(self._sorted_objects)


def _iter_bits(mask: int):
    """Yield set-bit positions of ``mask``, lowest first.

    ``mask & -mask`` isolates the lowest set bit; ``bit_length`` locates it —
    both constant-time word operations on the sizes involved.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def words_touched(num_sets: int, universe: int) -> int:
    """Predicted word operations for one query (the [33] cost)."""
    return num_sets * ((universe + WORD_LENGTH - 1) // WORD_LENGTH)

"""A Cohen–Porat-style k-set-intersection index.

§3.5 of the paper credits Cohen and Porat [23] with the 2-SI index that
inspired the whole framework: classify keywords as *large* or *small*
relative to the data mass under each node of a balanced recursion, store a
hash table of the large keywords plus an emptiness table of their
combinations, and materialize a keyword's posting list at the (unique) node
where it turns small.

This module implements that structure directly over an abstract set family,
generalized from ``k = 2`` to any fixed ``k >= 2`` — i.e. a *pure keyword
search* index with no geometry.  It achieves ``O(N)`` space and
``O(N^(1-1/k) * (1 + OUT^(1/k)))`` reporting time, the bounds that §1.2
argues are essentially optimal under the strong set-intersection and strong
k-set-disjointness conjectures.

The recursion tree here is a weight-balanced binary tree over the elements
in id order — the degenerate, geometry-free special case of the paper's
kd-tree transformation (§3.2).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..costmodel import CostCounter, ensure_counter
from ..errors import BudgetExceeded, ValidationError
from ..trace import span_for
from .naive import sets_to_documents


class _Node:
    """One node of the large/small recursion."""

    __slots__ = ("start", "stop", "weight", "children", "large", "combos", "materialized")

    def __init__(self, start: int, stop: int, weight: int):
        self.start = start
        self.stop = stop
        self.weight = weight  # the paper's N_u
        self.children: List["_Node"] = []
        self.large: Set[int] = set()
        # combos[child_index] = set of sorted k-tuples of large keywords whose
        # intersection restricted to that child is non-empty.
        self.combos: List[Set[Tuple[int, ...]]] = []
        # materialized[w] = element indices under this node containing w,
        # stored at the unique node where w turns small (paper §3.2).
        self.materialized: Dict[int, List[int]] = {}

    @property
    def is_leaf(self) -> bool:
        return not self.children


class KSetIndex:
    """k-SI reporting/emptiness index with the large/small recursion.

    Parameters
    ----------
    sets:
        The input family ``S_1 .. S_m`` (sequences of integer elements).
    k:
        Number of sets a query intersects (fixed at build time, ``>= 2``).
    threshold_exponent:
        The large/small cut-off exponent ``α``: a keyword is large at a node
        when its count reaches ``N_u^α``.  The paper's (and Cohen–Porat's)
        choice is ``α = 1 - 1/k``; other values realize the smooth
        space/query trade-off of Kopelowitz–Pettie–Porat [38] reviewed in
        §2 — smaller ``α`` means fewer keywords go small (cheaper
        materialized scans, i.e. query time ``~N^α``) at the price of more
        tree levels carrying large-keyword machinery (more space).
    """

    def __init__(
        self,
        sets: Sequence[Sequence[int]],
        k: int = 2,
        threshold_exponent: Optional[float] = None,
    ):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        if threshold_exponent is None:
            threshold_exponent = 1.0 - 1.0 / k
        if not 0.0 < threshold_exponent < 1.0:
            raise ValidationError(
                f"threshold_exponent must be in (0, 1), got {threshold_exponent}"
            )
        self.k = k
        self.threshold_exponent = threshold_exponent
        docs = sets_to_documents(sets)
        if not docs:
            raise ValidationError("the set family contains no elements")
        self.num_sets = len(sets)
        # Elements in id order; the id order plays the role of the kd-tree's
        # spatial order (any fixed order works — there is no geometry).
        self._elements: List[int] = sorted(docs)
        self._docs: List[FrozenSet[int]] = [docs[e] for e in self._elements]
        self.input_size: int = sum(len(d) for d in self._docs)
        all_keywords = set()
        for doc in self._docs:
            all_keywords.update(doc)
        self.root = self._build(0, len(self._elements), all_keywords)

    # -- construction ------------------------------------------------------------

    def _range_weight(self, start: int, stop: int) -> int:
        return sum(len(self._docs[i]) for i in range(start, stop))

    def _build(self, start: int, stop: int, candidates: Set[int]) -> _Node:
        """Build the subtree over elements ``[start, stop)``.

        ``candidates`` is the set of keywords large at every proper ancestor;
        only those can ever be queried at or below this node.
        """
        weight = self._range_weight(start, stop)
        node = _Node(start, stop, weight)
        if stop - start <= 1:
            return node  # leaf: scanned directly (the pivot set)

        threshold = weight ** self.threshold_exponent
        counts: Dict[int, int] = {}
        for i in range(start, stop):
            for word in self._docs[i]:
                if word in candidates:
                    counts[word] = counts.get(word, 0) + 1

        next_candidates: Set[int] = set()
        for word in candidates:
            count = counts.get(word, 0)
            if count >= threshold:
                node.large.add(word)
                next_candidates.add(word)
            elif count > 0:
                node.materialized[word] = [
                    i for i in range(start, stop) if word in self._docs[i]
                ]

        if not node.large:
            return node  # no query can descend further; children unnecessary

        split = self._weight_split(start, stop, weight)
        node.children = [
            self._build(start, split, next_candidates),
            self._build(split, stop, next_candidates),
        ]
        node.combos = [
            self._nonempty_combos(child, node.large) for child in node.children
        ]
        return node

    def _weight_split(self, start: int, stop: int, weight: int) -> int:
        """Split index balancing document mass between the halves."""
        acc = 0
        for i in range(start, stop - 1):
            acc += len(self._docs[i])
            if acc * 2 >= weight:
                return i + 1
        return stop - 1

    def _nonempty_combos(
        self, child: _Node, large: Set[int]
    ) -> Set[Tuple[int, ...]]:
        """Sorted k-tuples of large keywords with a common element in ``child``.

        This replaces the paper's k-dimensional bit array: instead of storing
        one bit per combination of large keywords, store the (hashable)
        combinations that are non-empty — an O(1)-expected-time probe with
        space bounded by the number of stored combinations.
        """
        combos: Set[Tuple[int, ...]] = set()
        for i in range(child.start, child.stop):
            present = sorted(large.intersection(self._docs[i]))
            if len(present) >= self.k:
                combos.update(combinations(present, self.k))
        return combos

    # -- queries -------------------------------------------------------------------

    def report(
        self, set_ids: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Return the sorted intersection of the ``k`` requested sets."""
        counter = ensure_counter(counter)
        words = self._validated(set_ids)
        result: List[int] = []
        with span_for(counter, "report", "ksi"):
            self._visit(self.root, words, result, counter)
        result.sort()
        return result

    def is_empty(
        self,
        set_ids: Sequence[int],
        counter: Optional[CostCounter] = None,
        budget_factor: float = 8.0,
    ) -> bool:
        """Emptiness in ``O(N^(1-1/k))``: run a budgeted reporting query.

        Implements the paper's footnote 4: if the reporting query does not
        terminate within ``budget_factor * N^(1-1/k)`` units, the
        intersection must be non-empty and the query is abandoned.
        """
        budget = int(budget_factor * (1 + self.input_size**self.threshold_exponent))
        probe = CostCounter(budget=budget)
        result: List[int] = []
        words = self._validated(set_ids)
        try:
            self._visit(self.root, words, result, probe, stop_at_first=True)
        except BudgetExceeded:
            if counter is not None:
                counter.merge(probe)
            return False
        if counter is not None:
            counter.merge(probe)
        return not result

    def _validated(self, set_ids: Sequence[int]) -> Tuple[int, ...]:
        words = tuple(set_ids)
        if len(words) != self.k or len(set(words)) != self.k:
            raise ValidationError(
                f"query must name exactly k={self.k} distinct sets, got {words}"
            )
        return words

    def _visit(
        self,
        node: _Node,
        words: Tuple[int, ...],
        result: List[int],
        counter: CostCounter,
        stop_at_first: bool = False,
        depth: int = 0,
    ) -> bool:
        """Recursive query; returns True when the caller should stop early."""
        tracer = counter.tracer
        if tracer is None:
            return self._visit_node(node, words, result, counter, stop_at_first, depth)
        tracer.push(f"depth={depth}", "ksi")
        try:
            return self._visit_node(node, words, result, counter, stop_at_first, depth)
        finally:
            tracer.pop()

    def _visit_node(
        self,
        node: _Node,
        words: Tuple[int, ...],
        result: List[int],
        counter: CostCounter,
        stop_at_first: bool,
        depth: int,
    ) -> bool:
        counter.charge("nodes_visited")
        if not node.is_leaf or node.materialized:
            # The small-keyword branch must run even at childless nodes
            # (fewer than k large keywords): the materialized list covers the
            # entire range at N_u^alpha cost, where a raw range scan would
            # pay Theta(N_u).
            counter.charge("structure_probes", len(words))
            small = next((w for w in words if w not in node.large), None)
            if small is not None:
                for i in node.materialized.get(small, ()):
                    counter.charge("objects_examined")
                    if self._docs[i].issuperset(words):
                        result.append(self._elements[i])
                        if stop_at_first:
                            return True
                return False

        if node.is_leaf:
            for i in range(node.start, node.stop):
                counter.charge("objects_examined")
                if self._docs[i].issuperset(words):
                    result.append(self._elements[i])
                    if stop_at_first:
                        return True
            return False

        key = tuple(sorted(words))
        for child, combos in zip(node.children, node.combos):
            counter.charge("structure_probes")
            if key in combos:
                if self._visit(
                    child, words, result, counter, stop_at_first, depth + 1
                ):
                    return True
        return False

    # -- introspection ----------------------------------------------------------------

    @property
    def space_units(self) -> int:
        """Stored entries: nodes + large sets + combos + materialized lists."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1 + len(node.large)
            total += sum(len(c) for c in node.combos)
            total += sum(len(lst) for lst in node.materialized.values())
            stack.extend(node.children)
        return total

    def height(self) -> int:
        """Tree height (root at level 0)."""

        def depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(depth(c) for c in node.children)

        return depth(self.root)

"""Inverted index over a dataset: the "keywords only" naive solution.

§1 of the paper describes two naive approaches; this is the second one:
retrieve all the objects whose documents include all the keywords (via
posting lists), then eliminate those failing the structured condition.  Its
query time is proportional to the *shortest posting list* involved, which can
be ``Θ(N)`` even when nothing is reported — exactly the drawback motivating
the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_nonempty_keywords


class InvertedIndex:
    """Posting lists ``S_w = {e.oid : w in e.Doc}``, sorted by object id."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        self._postings: Dict[int, List[int]] = {}
        for obj in dataset:
            for word in obj.doc:
                self._postings.setdefault(word, []).append(obj.oid)
        for plist in self._postings.values():
            plist.sort()

    # -- accessors -------------------------------------------------------------

    def posting_list(self, keyword: int) -> List[int]:
        """Object ids whose documents contain ``keyword`` (sorted copy).

        Returns a fresh list: handing out the internal posting list let
        callers (or a careless ``.sort()``/``.append``) poison the index.
        """
        return list(self._postings.get(keyword, ()))

    def frequency(self, keyword: int) -> int:
        """``|D(w)|``."""
        return len(self._postings.get(keyword, ()))

    @property
    def space_units(self) -> int:
        """Total posting-list entries (equals ``N``)."""
        return sum(len(p) for p in self._postings.values())

    # -- queries ---------------------------------------------------------------

    def matching_objects(
        self, keywords: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[KeywordObject]:
        """Compute ``D(w1..wk)`` by scanning the shortest posting list.

        Cost: one ``objects_examined`` unit per entry of the shortest list,
        plus an O(1) ``structure_probes`` doc-membership test per candidate
        per remaining keyword.

        An empty keyword list raises :class:`ValidationError` — the old
        behaviour (return the whole dataset at zero charged cost) silently
        corrupted the RAM-model accounting and disagreed with every other
        query entry point.
        """
        counter = ensure_counter(counter)
        words = validate_nonempty_keywords(keywords)
        lists = [self._postings.get(w) for w in words]
        if any(plist is None for plist in lists):
            return []
        words.sort(key=self.frequency)
        shortest = self._postings[words[0]]
        rest = words[1:]
        result: List[KeywordObject] = []
        for oid in shortest:
            counter.charge("objects_examined")
            obj = self.dataset[oid]
            ok = True
            for word in rest:
                counter.charge("structure_probes")
                if word not in obj.doc:
                    ok = False
                    break
            if ok:
                result.append(obj)
        return result

"""The hash-based naive k-SI index.

§2 of the paper: "By resorting to (perfect) hashing, one can build an
O(N)-space index to answer a query in O(N) time."  This module implements
that baseline over an abstract set family ``S_1 .. S_m``: store each set as a
hash set, scan the smallest queried set, and probe the others.

The cost is ``Θ(min_i |S_wi|)`` regardless of the output size — the structure
every non-trivial k-SI index (and every index in this paper) is measured
against.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..errors import ValidationError
from ..trace import span_for


class NaiveKSI:
    """Hash-set family supporting k-SI reporting and emptiness queries."""

    def __init__(self, sets: Sequence[Sequence[int]]):
        if not sets:
            raise ValidationError("a k-SI instance needs at least one set")
        self.sets: List[FrozenSet[int]] = [frozenset(s) for s in sets]
        self.input_size: int = sum(len(s) for s in self.sets)

    @property
    def num_sets(self) -> int:
        """``m``, the number of sets."""
        return len(self.sets)

    def _resolve(self, set_ids: Sequence[int]) -> List[FrozenSet[int]]:
        try:
            return [self.sets[i] for i in set_ids]
        except IndexError as exc:
            raise ValidationError(f"set id out of range: {set_ids}") from exc

    def report(
        self, set_ids: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Return ``S_{w1} ∩ ... ∩ S_{wk}`` (sorted).

        Cost: one ``objects_examined`` per element of the smallest set and
        one ``structure_probes`` per hash probe.
        """
        counter = ensure_counter(counter)
        chosen = self._resolve(set_ids)
        chosen.sort(key=len)
        smallest, rest = chosen[0], chosen[1:]
        result = []
        with span_for(counter, "report", "naive_ksi"):
            for element in smallest:
                counter.charge("objects_examined")
                ok = True
                for other in rest:
                    counter.charge("structure_probes")
                    if element not in other:
                        ok = False
                        break
                if ok:
                    result.append(element)
        result.sort()
        return result

    def is_empty(
        self, set_ids: Sequence[int], counter: Optional[CostCounter] = None
    ) -> bool:
        """Emptiness query: whether the intersection is empty.

        Same worst-case cost as :meth:`report` (the naive structure cannot
        do better, which is what the strong k-set-disjointness conjecture is
        about).
        """
        counter = ensure_counter(counter)
        chosen = self._resolve(set_ids)
        chosen.sort(key=len)
        smallest, rest = chosen[0], chosen[1:]
        for element in smallest:
            counter.charge("objects_examined")
            hit = True
            for other in rest:
                counter.charge("structure_probes")
                if element not in other:
                    hit = False
                    break
            if hit:
                return False
        return True


def sets_to_documents(sets: Sequence[Sequence[int]]) -> Dict[int, FrozenSet[int]]:
    """The §1.2 reduction: elements become objects, set ids become keywords.

    Returns a mapping ``element -> frozenset(set ids containing it)``, i.e.
    ``e.Doc := {i | e in S_i}``.
    """
    docs: Dict[int, set] = {}
    for set_id, members in enumerate(sets):
        for element in members:
            docs.setdefault(element, set()).add(set_id)
    return {element: frozenset(ids) for element, ids in docs.items()}

"""k-Set Intersection (k-SI) substrates.

§1.2 of the paper shows pure keyword search and k-SI reporting are the same
problem in disguise: build, for each keyword ``w``, the set ``S_w`` of ids of
objects whose documents contain ``w`` (the inverted-index idea); then
``D(w1..wk) = S_w1 ∩ ... ∩ S_wk``.

This package provides

* :class:`~repro.ksi.inverted.InvertedIndex` — posting lists over a dataset
  (the "keywords only" naive solution of §1);
* :class:`~repro.ksi.naive.NaiveKSI` — the hash-based ``O(N)``-time baseline
  over an abstract set family;
* :class:`~repro.ksi.cohen_porat.KSetIndex` — a Cohen–Porat-style [23]
  large/small recursion achieving ``O(N^(1-1/k) * (1 + OUT^(1/k)))`` query
  time with ``O(N)`` space, generalized from ``k = 2`` to any fixed ``k``
  (the index §3.5 names as the inspiration for the paper's framework);
* :class:`~repro.ksi.ksi_index.OrpBackedKsi` — the §1.2 reduction in the
  other direction: a k-SI index implemented by a 1-D ORP-KW index.
"""

from .inverted import InvertedIndex
from .naive import NaiveKSI
from .cohen_porat import KSetIndex
from .bitset import BitsetIntervalIndex, BitsetKSI

__all__ = [
    "InvertedIndex",
    "NaiveKSI",
    "KSetIndex",
    "BitsetKSI",
    "BitsetIntervalIndex",
]

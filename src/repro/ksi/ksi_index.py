"""k-SI reporting via ORP-KW: the §1.2 reduction, executable.

"Conversely, given an instance of k-SI, one can create a keyword search
instance by treating each set id as a keyword and creating
``D = S_1 ∪ ... ∪ S_m`` where each element has document
``e.Doc = {i | e in S_i}``" — then a reporting query with set ids
``w1..wk`` equals an ORP-KW query with those keywords and search rectangle
``q = R^d``.  This class performs exactly that reduction with a 1-D ORP-KW
index, inheriting its ``O(N^(1-1/k)(1+OUT^(1/k)))`` reporting bound, and is
used by the hardness benchmark (H1) next to the direct
:class:`~repro.ksi.cohen_porat.KSetIndex`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..costmodel import CostCounter
from ..dataset import Dataset, KeywordObject
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from ..core.orp_kw import OrpKwIndex
from .naive import sets_to_documents


class OrpBackedKsi:
    """k-SI reporting answered by a 1-D ORP-KW index."""

    def __init__(self, sets: Sequence[Sequence[int]], k: int = 2):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        self.k = k
        self.num_sets = len(sets)
        docs = sets_to_documents(sets)
        if not docs:
            raise ValidationError("the set family contains no elements")
        elements = sorted(docs)
        self._elements = elements
        # Map each element to a (distinct) point on the real line; any
        # placement works — the reduction always queries q = R^1.
        objects = [
            KeywordObject(oid=i, point=(float(i),), doc=docs[element])
            for i, element in enumerate(elements)
        ]
        self._index = OrpKwIndex(Dataset(objects), k)
        self.input_size = self._index.input_size

    def report(
        self, set_ids: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Return the sorted intersection of the ``k`` requested sets."""
        found = self._index.query(Rect.full(1), set_ids, counter)
        return sorted(self._elements[obj.oid] for obj in found)

    @property
    def space_units(self) -> int:
        """Stored entries across the whole structure."""
        return self._index.space_units

"""Linear constraints (halfspaces).

An LC-KW query (paper §1.1) supplies ``s = O(1)`` linear constraints of the
form ``c1*x[1] + ... + cd*x[d] <= c_{d+1}``.  :class:`HalfSpace` represents
one such constraint; conjunctions are plain sequences of halfspaces.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import ValidationError

#: Relative tolerance for boundary classification of float geometry.
EPS = 1e-9


class HalfSpace:
    """The closed halfspace ``coeffs . x <= bound`` in R^d."""

    __slots__ = ("coeffs", "bound")

    def __init__(self, coeffs: Sequence[float], bound: float):
        coeff_t = tuple(float(c) for c in coeffs)
        if not coeff_t:
            raise ValidationError("halfspace must have at least one coefficient")
        if all(c == 0.0 for c in coeff_t):  # reprolint: exact
            raise ValidationError("halfspace normal must be non-zero")
        if any(not math.isfinite(c) for c in coeff_t) or math.isnan(bound):
            raise ValidationError("halfspace coefficients must be finite")
        self.coeffs: Tuple[float, ...] = coeff_t
        self.bound: float = float(bound)

    @property
    def dim(self) -> int:
        """Dimensionality d."""
        return len(self.coeffs)

    def value(self, point: Sequence[float]) -> float:
        """Evaluate ``coeffs . point``."""
        return sum(c * x for c, x in zip(self.coeffs, point))

    def contains(self, point: Sequence[float]) -> bool:
        """Closed membership test ``coeffs . point <= bound``."""
        return self.value(point) <= self.bound + EPS * self._scale(point)

    def strictly_contains(self, point: Sequence[float]) -> bool:
        """Open membership test."""
        return self.value(point) < self.bound - EPS * self._scale(point)

    def on_boundary(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies (within tolerance) on the bounding hyperplane."""
        return abs(self.value(point) - self.bound) <= EPS * self._scale(point)

    def _scale(self, point: Sequence[float]) -> float:
        """Magnitude scale for the relative tolerance."""
        mag = max(
            (abs(c * x) for c, x in zip(self.coeffs, point)),
            default=0.0,
        )
        return max(mag, abs(self.bound), 1.0)

    def complement(self) -> "HalfSpace":
        """The closed halfspace on the other side (shares the boundary)."""
        return HalfSpace(tuple(-c for c in self.coeffs), -self.bound)

    # -- conversions -----------------------------------------------------------

    @classmethod
    def axis_upper(cls, dim: int, axis: int, value: float) -> "HalfSpace":
        """``x[axis] <= value``."""
        coeffs = [0.0] * dim
        coeffs[axis] = 1.0
        return cls(coeffs, value)

    @classmethod
    def axis_lower(cls, dim: int, axis: int, value: float) -> "HalfSpace":
        """``x[axis] >= value`` (stored as ``-x[axis] <= -value``)."""
        coeffs = [0.0] * dim
        coeffs[axis] = -1.0
        return cls(coeffs, -value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HalfSpace)
            and self.coeffs == other.coeffs
            and self.bound == other.bound
        )

    def __hash__(self) -> int:
        return hash((self.coeffs, self.bound))

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*x{i + 1}" for i, c in enumerate(self.coeffs) if c)
        return f"HalfSpace({terms} <= {self.bound:g})"


def rect_to_halfspaces(lo: Sequence[float], hi: Sequence[float]) -> Tuple[HalfSpace, ...]:
    """Express the rectangle ``[lo, hi]`` as (at most) ``2d`` halfspaces.

    Infinite bounds produce no constraint.  This is the §1.1 observation that
    "a d-rectangle can be regarded as the conjunction of 2d = O(1) linear
    constraints", used to route ORP-KW queries through an LC-KW index.
    """
    dim = len(lo)
    constraints = []
    for axis in range(dim):
        if math.isfinite(hi[axis]):
            constraints.append(HalfSpace.axis_upper(dim, axis, hi[axis]))
        if math.isfinite(lo[axis]):
            constraints.append(HalfSpace.axis_lower(dim, axis, lo[axis]))
    return tuple(constraints)

"""The lifting map: spheres in R^d become halfspaces in R^{d+1}.

Corollary 6 solves SRP-KW (spherical range reporting with keywords) with a
(d+1)-dimensional LC-KW index through the classic lifting technique [8]:
map each point ``p`` to ``p' = (p, |p|^2)``; then ``p`` lies in the ball of
center ``c`` and radius ``r`` iff ``p'`` satisfies the halfspace

    |p|^2 - 2 c . p <= r^2 - |c|^2

which is linear in the lifted coordinates.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .halfspaces import HalfSpace


def lift_point(point: Sequence[float]) -> Tuple[float, ...]:
    """Map ``p in R^d`` to ``(p, |p|^2) in R^{d+1}``.

    >>> lift_point((3.0, 4.0))
    (3.0, 4.0, 25.0)
    """
    coords = tuple(float(c) for c in point)
    return coords + (sum(c * c for c in coords),)


def lift_sphere(center: Sequence[float], radius: float) -> HalfSpace:
    """The halfspace in R^{d+1} whose lifted members are the ball's members.

    ``|p - c|^2 <= r^2``  iff  ``-2 c . p + y <= r^2 - |c|^2`` with
    ``y = |p|^2`` the lifted coordinate.
    """
    c = tuple(float(x) for x in center)
    coeffs = tuple(-2.0 * x for x in c) + (1.0,)
    bound = float(radius) ** 2 - sum(x * x for x in c)
    return HalfSpace(coeffs, bound)


def lift_sphere_squared(center: Sequence[float], radius_squared: float) -> HalfSpace:
    """Same as :func:`lift_sphere` but parameterized by ``r^2``.

    L2NN-KW (Corollary 7) binary-searches over *squared* candidate radii,
    which stay exact integers when the input points are integral.
    """
    c = tuple(float(x) for x in center)
    coeffs = tuple(-2.0 * x for x in c) + (1.0,)
    bound = float(radius_squared) - sum(x * x for x in c)
    return HalfSpace(coeffs, bound)

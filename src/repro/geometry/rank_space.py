"""Rank-space reduction (§3.4: removing the general-position assumption).

The kd-tree transformation assumes no two objects share an x- or
y-coordinate.  §3.4 removes the assumption by converting coordinates to
*rank space*: sort the objects on each dimension, breaking ties by object id,
and replace each coordinate by its rank.  In rank space every object has
distinct integer coordinates on every dimension, and an original-space query
rectangle converts to a rank-space rectangle in ``O(d log N)`` time without
changing the answer.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence, Tuple

from ..costmodel import CostCounter, ensure_counter
from ..errors import ValidationError
from .rectangles import Rect


class RankSpaceMap:
    """Per-dimension rank mapping for a fixed point set.

    Parameters
    ----------
    points:
        One point per object, in object-id order (the id is the tie-breaker,
        as in §3.4: "break ties by favoring the object with a smaller id").
    """

    def __init__(self, points: Sequence[Sequence[float]]):
        if not points:
            raise ValidationError("rank space needs at least one point")
        self.dim = len(points[0])
        self.count = len(points)
        # _order[axis][rank] = (coordinate, object index); sorted by (coord, idx).
        self._order: List[List[Tuple[float, int]]] = []
        # _rank[axis][idx] = rank of object idx on this axis.
        self._rank: List[List[int]] = []
        for axis in range(self.dim):
            keyed = sorted((float(p[axis]), idx) for idx, p in enumerate(points))
            ranks = [0] * self.count
            for rank, (_coord, idx) in enumerate(keyed):
                ranks[idx] = rank
            self._order.append(keyed)
            self._rank.append(ranks)

    def to_rank_point(self, index: int) -> Tuple[int, ...]:
        """Rank-space coordinates of the ``index``-th input point."""
        return tuple(self._rank[axis][index] for axis in range(self.dim))

    def rank_interval(
        self, axis: int, lo: float, hi: float, counter: CostCounter = None
    ) -> Tuple[float, float]:
        """Convert the original-space interval ``[lo, hi]`` on ``axis`` to ranks.

        The result is the (closed) set of ranks whose coordinates fall inside
        ``[lo, hi]``; an empty set is returned as an inverted pseudo-interval
        ``(0.5, -0.5)`` which no rank point can satisfy.
        """
        counter = ensure_counter(counter)
        keys = self._order[axis]
        # bisect on (coord, idx) pairs: all ids compare above (-1,) sentinels.
        start = bisect_left(keys, (lo, -1))
        stop = bisect_right(keys, (hi, self.count))
        counter.charge("comparisons", 2)
        if start >= stop:
            return (0.5, -0.5)
        return (float(start), float(stop - 1))

    def rect_to_rank(self, rect: Rect, counter: CostCounter = None) -> Rect:
        """Convert an original-space query rectangle to rank space.

        Empty per-axis intervals become inverted unit intervals placed
        outside the rank range so the rank-space query reports nothing —
        ``Rect`` forbids inverted bounds, so emptiness is encoded as an
        interval beyond the last rank.
        """
        lo: List[float] = []
        hi: List[float] = []
        for axis in range(self.dim):
            a, b = self.rank_interval(axis, rect.lo[axis], rect.hi[axis], counter)
            if a > b:  # empty on this axis -> whole query is empty
                a, b = float(self.count + 1), float(self.count + 2)
            lo.append(a)
            hi.append(b)
        return Rect(lo, hi)

"""Closed axis-parallel d-rectangles.

A *d-rectangle* (paper footnote 1) is a product of closed intervals
``[x1, y1] x ... x [xd, yd]``.  Unbounded sides are represented with
``float('inf')`` / ``float('-inf')``; :meth:`Rect.full` builds the all-space
rectangle used as the root cell of the kd-tree.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import ValidationError

_INF = math.inf


class Rect:
    """A closed, possibly unbounded, axis-parallel rectangle in R^d."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo_t = tuple(float(c) for c in lo)
        hi_t = tuple(float(c) for c in hi)
        if len(lo_t) != len(hi_t):
            raise ValidationError(
                f"rectangle corners have different dimensionalities "
                f"({len(lo_t)} vs {len(hi_t)})"
            )
        if not lo_t:
            raise ValidationError("rectangle must have at least one dimension")
        for low, high in zip(lo_t, hi_t):
            if math.isnan(low) or math.isnan(high):
                raise ValidationError("rectangle bounds must not be NaN")
            if low > high:
                raise ValidationError(f"empty rectangle: lower bound {low} > upper bound {high}")
        self.lo: Tuple[float, ...] = lo_t
        self.hi: Tuple[float, ...] = hi_t

    # -- constructors --------------------------------------------------------

    @classmethod
    def full(cls, dim: int) -> "Rect":
        """The all-space rectangle R^dim."""
        return cls((-_INF,) * dim, (_INF,) * dim)

    @classmethod
    def from_intervals(cls, intervals: Sequence[Tuple[float, float]]) -> "Rect":
        """Build from a sequence of (lo, hi) pairs."""
        return cls([iv[0] for iv in intervals], [iv[1] for iv in intervals])

    # -- basic properties -----------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality d."""
        return len(self.lo)

    def interval(self, axis: int) -> Tuple[float, float]:
        """Projection onto ``axis`` (the paper's ``q[i]``)."""
        return (self.lo[axis], self.hi[axis])

    def is_bounded(self) -> bool:
        """Whether every side is finite."""
        return all(math.isfinite(c) for c in self.lo + self.hi)

    # -- predicates ----------------------------------------------------------

    def contains_point(self, point: Sequence[float]) -> bool:
        """Closed containment test."""
        return all(
            self.lo[i] <= point[i] <= self.hi[i] for i in range(self.dim)
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two closed rectangles share at least one point."""
        return all(
            self.lo[i] <= other.hi[i] and other.lo[i] <= self.hi[i]
            for i in range(self.dim)
        )

    def covers(self, other: "Rect") -> bool:
        """Whether ``other`` is fully contained in this rectangle."""
        return all(
            self.lo[i] <= other.lo[i] and other.hi[i] <= self.hi[i]
            for i in range(self.dim)
        )

    def boundary_contains(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies on the boundary of this rectangle.

        The boundary of an unbounded side is empty (a point can never sit on
        an infinite bound), matching the polyhedron-boundary definition of
        the paper's footnote 7.
        """
        if not self.contains_point(point):
            return False
        return any(
            point[i] == self.lo[i] or point[i] == self.hi[i]
            for i in range(self.dim)
            if math.isfinite(self.lo[i]) or math.isfinite(self.hi[i])
        )

    def interior_contains(self, point: Sequence[float]) -> bool:
        """Strict (open) containment test."""
        return all(
            self.lo[i] < point[i] < self.hi[i] for i in range(self.dim)
        )

    # -- constructions --------------------------------------------------------

    def clip(self, other: "Rect") -> "Rect":
        """Intersection of two rectangles (raises if empty)."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def split(self, axis: int, value: float) -> Tuple["Rect", "Rect"]:
        """Split by the hyperplane ``x[axis] == value`` into two closed halves.

        The halves share the splitting hyperplane on their boundary — they
        "touch only at boundary and are interior disjoint", exactly the
        kd-tree cell rule of §3.1.
        """
        if not (self.lo[axis] <= value <= self.hi[axis]):
            raise ValidationError(
                f"split value {value} outside axis-{axis} extent "
                f"[{self.lo[axis]}, {self.hi[axis]}]"
            )
        left_hi = list(self.hi)
        left_hi[axis] = value
        right_lo = list(self.lo)
        right_lo[axis] = value
        return Rect(self.lo, left_hi), Rect(right_lo, self.hi)

    def vertices(self) -> Tuple[Tuple[float, ...], ...]:
        """All 2^d corner points (requires a bounded rectangle)."""
        if not self.is_bounded():
            raise ValidationError("cannot enumerate vertices of an unbounded rectangle")
        corners = [()]
        for low, high in zip(self.lo, self.hi):
            corners = [c + (v,) for c in corners for v in ((low, high) if low != high else (low,))]
        return tuple(corners)

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rect) and self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        sides = " x ".join(f"[{lo:g}, {hi:g}]" for lo, hi in zip(self.lo, self.hi))
        return f"Rect({sides})"

"""d-simplices.

A *d-simplex* (Appendix D) is a polyhedron in R^d with ``d + 1`` facets: a
point (d=0), segment (d=1), triangle (d=2), tetrahedron (d=3), and so on.
SP-KW queries are issued with a simplex range; LC-KW queries are decomposed
into a constant number of simplices (see :mod:`repro.geometry.triangulate`).

A simplex is stored both ways: as its ``d + 1`` vertices and as the ``d + 1``
facet halfspaces, because the query algorithms need vertex-based "covers"
tests and halfspace-based feasibility tests.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .halfspaces import HalfSpace

#: Degeneracy tolerance for facet-normal computation.
_EPS = 1e-12


def hyperplane_through(points: np.ndarray) -> Tuple[np.ndarray, float]:
    """Hyperplane through ``d`` affinely independent points in R^d.

    Returns ``(normal, offset)`` with ``normal . x == offset`` on the plane.
    Raises :class:`GeometryError` when the points are affinely dependent.
    """
    pts = np.asarray(points, dtype=float)
    dim = pts.shape[1]
    base = pts[0]
    diffs = pts[1:] - base
    if diffs.shape[0] == 0:
        # d == 1: the "hyperplane" through one point is x == base.
        normal = np.ones(1)
    else:
        # The normal spans the null space of the difference matrix.
        _u, sing, vt = np.linalg.svd(diffs, full_matrices=True)
        full_rank = sing.size == dim - 1 and (
            dim == 1 or sing[-1] > _EPS * max(1.0, float(sing[0]))
        )
        if not full_rank:
            raise GeometryError("points are affinely dependent; no unique hyperplane")
        normal = vt[-1]
    norm = float(np.linalg.norm(normal))
    if norm <= _EPS:
        raise GeometryError("degenerate hyperplane normal")
    normal = normal / norm
    return normal, float(normal @ base)


class Simplex:
    """A (possibly degenerate) d-simplex given by its ``d + 1`` vertices."""

    __slots__ = ("vertices", "halfspaces", "dim")

    def __init__(self, vertices: Sequence[Sequence[float]]):
        verts = tuple(tuple(float(c) for c in v) for v in vertices)
        if not verts:
            raise GeometryError("a simplex needs at least one vertex")
        dim = len(verts[0])
        if any(len(v) != dim for v in verts):
            raise GeometryError("simplex vertices have mixed dimensionalities")
        if len(verts) != dim + 1:
            raise GeometryError(
                f"a {dim}-simplex needs {dim + 1} vertices, got {len(verts)}"
            )
        self.vertices: Tuple[Tuple[float, ...], ...] = verts
        self.dim: int = dim
        self.halfspaces: Tuple[HalfSpace, ...] = self._facet_halfspaces()

    def _facet_halfspaces(self) -> Tuple[HalfSpace, ...]:
        arr = np.asarray(self.vertices, dtype=float)
        facets = []
        for excluded in range(len(self.vertices)):
            rest = np.delete(arr, excluded, axis=0)
            normal, offset = hyperplane_through(rest)
            # Orient so the excluded vertex is inside (<=).
            if float(normal @ arr[excluded]) > offset:
                normal, offset = -normal, -offset
            facets.append(HalfSpace(tuple(normal), offset))
        return tuple(facets)

    def contains(self, point: Sequence[float]) -> bool:
        """Closed membership test (inside or on the boundary)."""
        return all(h.contains(point) for h in self.halfspaces)

    def volume(self) -> float:
        """Euclidean volume (zero for degenerate simplices)."""
        arr = np.asarray(self.vertices, dtype=float)
        diffs = arr[1:] - arr[0]
        return abs(float(np.linalg.det(diffs))) / float(math.factorial(self.dim))

    def bounding_box(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Axis-aligned bounding box of the vertex set."""
        arr = np.asarray(self.vertices, dtype=float)
        return tuple(arr.min(axis=0)), tuple(arr.max(axis=0))

    def __repr__(self) -> str:
        return f"Simplex(dim={self.dim}, vertices={self.vertices})"

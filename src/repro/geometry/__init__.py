"""Geometric substrates: predicates and constructions the indexes build on.

Everything in this package is implemented from scratch (Seidel's LP, vertex
enumeration, simplex decomposition, the lifting map, rank-space reduction);
``scipy.spatial`` is used only for Delaunay triangulation of explicit vertex
sets inside :mod:`repro.geometry.triangulate`.
"""

from .rectangles import Rect
from .halfspaces import HalfSpace
from .simplex import Simplex
from .lifting import lift_point, lift_sphere
from .rank_space import RankSpaceMap

__all__ = [
    "Rect",
    "HalfSpace",
    "Simplex",
    "lift_point",
    "lift_sphere",
    "RankSpaceMap",
]

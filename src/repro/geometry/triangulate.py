"""Simplex decomposition of convex polytopes.

Appendix D observes that the feasible region of ``s = O(1)`` linear
constraints "can be partitioned into a constant number of d-simplices", so an
LC-KW query becomes ``O(1)`` SP-KW queries.  This module performs that
partition: enumerate the (clipped) polytope's vertices, then triangulate.

For ``d == 1`` the polytope is an interval — a single 1-simplex.  For
``d >= 2`` we Delaunay-triangulate the vertex set (scipy); the Delaunay
simplices of a convex point set tile its convex hull, i.e. the polytope.
Degenerate (lower-dimensional) polytopes contain no interior and at most a
measure-zero slice of data; they are handled by returning an empty
decomposition when no full-dimensional simplex exists (callers additionally
run an exact containment filter, so correctness never depends on the
triangulation being fat).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy.spatial import Delaunay, QhullError

from ..errors import GeometryError
from .polytope import HPolytope
from .simplex import Simplex

_EPS = 1e-12


def triangulate_vertices(vertices: Sequence[Sequence[float]], dim: int) -> List[Simplex]:
    """Triangulate the convex hull of ``vertices`` into d-simplices.

    Returns an empty list when the point set is degenerate (affinely
    dependent / fewer than ``d + 1`` points).
    """
    points = [tuple(float(c) for c in v) for v in vertices]
    if len(points) < dim + 1:
        return []
    if dim == 1:
        coords = sorted(p[0] for p in points)
        if coords[0] == coords[-1]:
            return []
        return [Simplex([(coords[0],), (coords[-1],)])]
    arr = np.asarray(points, dtype=float)
    try:
        tri = Delaunay(arr)
    except QhullError:
        return []  # degenerate: flat point set
    simplices: List[Simplex] = []
    for indices in tri.simplices:
        verts = arr[indices]
        volume = abs(float(np.linalg.det(verts[1:] - verts[0])))
        if volume <= _EPS:
            continue
        try:
            simplices.append(Simplex(verts.tolist()))
        except GeometryError:
            continue
    return simplices


def decompose_polytope(polytope: HPolytope) -> List[Simplex]:
    """Partition a bounded polytope into interior-disjoint d-simplices.

    The polytope must be bounded (clip with
    :func:`repro.geometry.polytope.polytope_from_constraints` first).
    """
    vertices = polytope.enumerate_vertices()
    return triangulate_vertices(vertices, polytope.dim)

"""Convex polytopes in halfspace representation, with vertex enumeration.

LC-KW reduces to SP-KW by decomposing the feasible region of its ``s = O(1)``
linear constraints into ``O(1)`` simplices (Appendix D, discussion under
Theorem 12).  That needs the polytope's vertices.  In the small, constant
dimensions of this library, brute-force vertex enumeration — solve every
``d``-subset of bounding hyperplanes and keep the feasible solutions — costs
``O(C(s + 2d, d) * d^3)`` which is a constant, so no sophisticated pivoting
is required.

Unbounded polyhedra (e.g. a single halfspace) are handled by clipping with a
bounding box that encloses all data: only data points can be reported, so
clipping to an enclosing box never changes any query answer.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .halfspaces import HalfSpace, rect_to_halfspaces
from .lp import feasible_point

_EPS = 1e-9


class HPolytope:
    """Intersection of closed halfspaces in R^d."""

    __slots__ = ("halfspaces", "dim")

    def __init__(self, halfspaces: Sequence[HalfSpace]):
        spaces = tuple(halfspaces)
        if not spaces:
            raise GeometryError("a polytope needs at least one halfspace")
        dims = {h.dim for h in spaces}
        if len(dims) != 1:
            raise GeometryError(f"mixed halfspace dimensionalities: {sorted(dims)}")
        self.halfspaces: Tuple[HalfSpace, ...] = spaces
        self.dim: int = dims.pop()

    def contains(self, point: Sequence[float]) -> bool:
        """Closed membership test."""
        return all(h.contains(point) for h in self.halfspaces)

    def clipped_to_box(
        self, lo: Sequence[float], hi: Sequence[float]
    ) -> "HPolytope":
        """Return the polytope intersected with the box ``[lo, hi]``."""
        return HPolytope(self.halfspaces + rect_to_halfspaces(lo, hi))

    def feasible(self, lo: Sequence[float], hi: Sequence[float]) -> bool:
        """Whether the polytope meets the box ``[lo, hi]`` (Seidel LP)."""
        constraints = [(h.coeffs, h.bound) for h in self.halfspaces]
        return feasible_point(constraints, lo, hi) is not None

    def enumerate_vertices(self) -> List[Tuple[float, ...]]:
        """All vertices of the (bounded) polytope.

        Every vertex is the intersection of ``d`` bounding hyperplanes that
        satisfies all other constraints.  The polytope must already be
        bounded (clip first); unbounded inputs simply yield the vertices of
        the bounded skeleton, which is usually not what you want.
        """
        dim = self.dim
        mats = [np.asarray(h.coeffs, dtype=float) for h in self.halfspaces]
        bounds = [h.bound for h in self.halfspaces]
        vertices: List[Tuple[float, ...]] = []
        for subset in combinations(range(len(self.halfspaces)), dim):
            a_mat = np.stack([mats[i] for i in subset])
            b_vec = np.asarray([bounds[i] for i in subset])
            try:
                solution = np.linalg.solve(a_mat, b_vec)
            except np.linalg.LinAlgError:
                continue
            point = tuple(float(c) for c in solution)
            if not all(h.contains(point) for h in self.halfspaces):
                continue
            if not _is_duplicate(point, vertices):
                vertices.append(point)
        return vertices


def _is_duplicate(point: Tuple[float, ...], seen: List[Tuple[float, ...]]) -> bool:
    scale = max(1.0, max(abs(c) for c in point))
    for other in seen:
        if all(abs(a - b) <= _EPS * scale for a, b in zip(point, other)):
            return True
    return False


def polytope_from_constraints(
    constraints: Sequence[HalfSpace],
    data_lo: Sequence[float],
    data_hi: Sequence[float],
    margin: float = 1.0,
) -> HPolytope:
    """Build the (clipped) feasible polytope of an LC-KW query.

    The clip box is the data bounding box inflated by ``margin`` times its
    extent on each side, which keeps every data point strictly inside the
    clip region; hence the clipped polytope contains exactly the same data
    points as the original polyhedron.
    """
    lo: List[float] = []
    hi: List[float] = []
    for low, high in zip(data_lo, data_hi):
        extent = max(high - low, 1.0)
        lo.append(low - margin * extent)
        hi.append(high + margin * extent)
    if not constraints:
        return HPolytope(rect_to_halfspaces(lo, hi))
    return HPolytope(tuple(constraints) + rect_to_halfspaces(lo, hi))


def optional_feasible_point(
    constraints: Sequence[HalfSpace],
    lo: Sequence[float],
    hi: Sequence[float],
) -> Optional[Tuple[float, ...]]:
    """Any point of ``constraints`` within ``[lo, hi]``, or ``None``."""
    return feasible_point([(h.coeffs, h.bound) for h in constraints], lo, hi)

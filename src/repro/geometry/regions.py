"""Query regions: the geometry side of a query, abstracted over cell types.

The transformation framework (§3.3) interacts with geometry through exactly
three predicates on a query region ``q`` and a tree cell ``Δ``:

* does ``q`` contain a given point?          (reporting filter)
* does ``q`` intersect ``Δ``?                (may the subtree contain answers?)
* does ``q`` cover ``Δ``?                    (covered vs crossing node)

A region object implements the three; cells are either bounded
:class:`~repro.geometry.rectangles.Rect` boxes (kd-tree, box partition
scheme) or :class:`~repro.partitiontree.cells.ConvexCell` polytopes (Willard
scheme).  Rect-vs-Rect tests take the exact fast path; everything else goes
through vertex filters with Seidel-LP feasibility as the exact fallback.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import ValidationError
from .halfspaces import HalfSpace, rect_to_halfspaces
from .lp import feasible_point
from .rectangles import Rect
from .simplex import Simplex


def _cell_vertices(cell) -> Tuple[Tuple[float, ...], ...]:
    if isinstance(cell, Rect):
        return cell.vertices()
    return cell.vertices


def _cell_bounds(cell) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    return (tuple(cell.lo), tuple(cell.hi))


def _cell_halfspaces(cell) -> Tuple[HalfSpace, ...]:
    if isinstance(cell, Rect):
        return rect_to_halfspaces(cell.lo, cell.hi)
    return cell.halfspaces


class RectRegion:
    """An orthogonal query range (ORP-KW)."""

    __slots__ = ("rect",)

    def __init__(self, rect: Rect):
        self.rect = rect

    @property
    def dim(self) -> int:
        return self.rect.dim

    def contains_point(self, point: Sequence[float]) -> bool:
        return self.rect.contains_point(point)

    def intersects(self, cell) -> bool:
        if isinstance(cell, Rect):
            return self.rect.intersects(cell)
        # Polytope cell: bounding-box reject, then vertex accept, then LP.
        lo, hi = _cell_bounds(cell)
        box = Rect(lo, hi)
        if not self.rect.intersects(box):
            return False
        if any(self.rect.contains_point(v) for v in cell.vertices):
            return True
        constraints = [
            (h.coeffs, h.bound)
            for h in rect_to_halfspaces(self.rect.lo, self.rect.hi)
        ] + [(h.coeffs, h.bound) for h in cell.halfspaces]
        return feasible_point(constraints, lo, hi) is not None

    def covers(self, cell) -> bool:
        if isinstance(cell, Rect):
            return self.rect.covers(cell)
        return all(self.rect.contains_point(v) for v in cell.vertices)


class ConvexRegion:
    """A query range given as an intersection of halfspaces.

    Used for simplices (SP-KW), conjunctions of linear constraints (LC-KW
    before decomposition), and lifted spheres (SRP-KW): a single halfspace
    is simply a one-constraint region.
    """

    __slots__ = ("halfspaces", "dim")

    def __init__(self, halfspaces: Sequence[HalfSpace]):
        spaces = tuple(halfspaces)
        if not spaces:
            raise ValidationError("a convex region needs at least one halfspace")
        dims = {h.dim for h in spaces}
        if len(dims) != 1:
            raise ValidationError(f"mixed halfspace dimensionalities: {sorted(dims)}")
        self.halfspaces = spaces
        self.dim = dims.pop()

    @classmethod
    def from_simplex(cls, simplex: Simplex) -> "ConvexRegion":
        """Region for a d-simplex (its d+1 facet halfspaces)."""
        return cls(simplex.halfspaces)

    def contains_point(self, point: Sequence[float]) -> bool:
        return all(h.contains(point) for h in self.halfspaces)

    def intersects(self, cell) -> bool:
        lo, hi = _cell_bounds(cell)
        verts = _cell_vertices(cell)
        # Fast accept: some cell vertex inside the region.
        if any(self.contains_point(v) for v in verts):
            return True
        # Fast reject: all cell vertices strictly outside one halfspace
        # (the whole convex cell then lies outside that halfspace).
        for h in self.halfspaces:
            if not any(h.contains(v) for v in verts):
                return False
        constraints = [(h.coeffs, h.bound) for h in self.halfspaces] + [
            (h.coeffs, h.bound) for h in _cell_halfspaces(cell)
        ]
        return feasible_point(constraints, lo, hi) is not None

    def covers(self, cell) -> bool:
        return all(self.contains_point(v) for v in _cell_vertices(cell))


class EverythingRegion:
    """The all-space region (the §1.2 reduction queries with ``q = R^d``)."""

    __slots__ = ("dim",)

    def __init__(self, dim: int):
        self.dim = dim

    def contains_point(self, point: Sequence[float]) -> bool:
        return True

    def intersects(self, cell) -> bool:
        return True

    def covers(self, cell) -> bool:
        return True

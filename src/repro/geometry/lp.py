"""Seidel's randomized linear programming in small, fixed dimension.

The partition-tree machinery (Appendix D) needs one geometric primitive over
and over: *does a convex cell intersect a query simplex?*  Both sides are
intersections of halfspaces, so the test is feasibility of a tiny linear
program (``d`` variables, a handful of constraints).  Seidel's randomized
incremental algorithm solves such LPs in ``O(d! * n)`` expected time, which
for the ``d <= 6`` regimes of this library is a few microseconds — far
cheaper than a general-purpose solver.

The entry points are :func:`solve_lp` (minimize a linear objective over a
halfspace intersection clipped to a bounding box) and :func:`feasible_point`
(find any point of the intersection, or ``None``).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..errors import GeometryError

#: Absolute/relative feasibility tolerance.
_EPS = 1e-9

Constraint = Tuple[Tuple[float, ...], float]  # coeffs . x <= bound


def _violates(point: Sequence[float], constraint: Constraint) -> bool:
    coeffs, bound = constraint
    value = sum(c * x for c, x in zip(coeffs, point))
    scale = max(1.0, abs(bound), max((abs(c * x) for c, x in zip(coeffs, point)), default=0.0))
    return value > bound + _EPS * scale


def _solve_1d(
    constraints: Sequence[Constraint],
    objective: float,
    lo: float,
    hi: float,
) -> Optional[float]:
    """Base case: minimize ``objective * x`` over an interval and constraints."""
    for (coeff,), bound in constraints:
        if coeff > 0:
            hi = min(hi, bound / coeff)
        elif coeff < 0:
            lo = max(lo, bound / coeff)
        elif bound < -_EPS:
            return None  # 0 <= bound with bound < 0: infeasible
    if lo > hi + _EPS * max(1.0, abs(lo), abs(hi)):
        return None
    hi = max(hi, lo)
    return lo if objective >= 0 else hi


def _substitute(
    constraint: Constraint, axis: int, plane: Constraint
) -> Optional[Constraint]:
    """Eliminate variable ``axis`` using equality ``plane`` (coeffs . x == bound).

    Returns the reduced constraint over the remaining variables, or ``None``
    if the constraint becomes trivially true after substitution.  Raises
    :class:`GeometryError` when the reduced constraint is trivially false —
    the caller treats that as infeasibility.
    """
    p_coeffs, p_bound = plane
    c_coeffs, c_bound = constraint
    pivot = p_coeffs[axis]
    factor = c_coeffs[axis] / pivot
    new_coeffs = tuple(
        c_coeffs[i] - factor * p_coeffs[i]
        for i in range(len(c_coeffs))
        if i != axis
    )
    new_bound = c_bound - factor * p_bound
    if all(abs(c) <= _EPS for c in new_coeffs):
        if new_bound < -_EPS * max(1.0, abs(c_bound)):
            raise GeometryError("constraint infeasible after substitution")
        return None
    return (new_coeffs, new_bound)


def _reduce_objective(
    objective: Tuple[float, ...], axis: int, plane: Constraint
) -> Tuple[float, ...]:
    """Project the objective onto the hyperplane's parameterization.

    Unlike constraints, the objective has no feasibility meaning — the
    constant offset produced by the substitution is irrelevant to argmin and
    never signals infeasibility.
    """
    p_coeffs, _p_bound = plane
    pivot = p_coeffs[axis]
    factor = objective[axis] / pivot
    return tuple(
        objective[i] - factor * p_coeffs[i]
        for i in range(len(objective))
        if i != axis
    )


def _lift(point_reduced: Sequence[float], axis: int, plane: Constraint) -> Tuple[float, ...]:
    """Insert the eliminated coordinate back, using the equality ``plane``."""
    p_coeffs, p_bound = plane
    partial = list(point_reduced)
    partial.insert(axis, 0.0)
    acc = sum(p_coeffs[i] * partial[i] for i in range(len(p_coeffs)) if i != axis)
    partial[axis] = (p_bound - acc) / p_coeffs[axis]
    return tuple(partial)


def _solve(
    constraints: List[Constraint],
    objective: Sequence[float],
    box_lo: Sequence[float],
    box_hi: Sequence[float],
    rng: random.Random,
) -> Optional[Tuple[float, ...]]:
    dim = len(objective)
    if dim == 1:
        x = _solve_1d(constraints, objective[0], box_lo[0], box_hi[0])
        return None if x is None else (x,)

    order = list(constraints)
    rng.shuffle(order)

    # Start from the box corner optimal for the objective alone.
    current = tuple(
        box_lo[i] if objective[i] >= 0 else box_hi[i] for i in range(dim)
    )

    for idx, constraint in enumerate(order):
        if not _violates(current, constraint):
            continue
        # The optimum must lie on this constraint's bounding hyperplane.
        coeffs, _bound = constraint
        axis = max(range(dim), key=lambda i: abs(coeffs[i]))
        if abs(coeffs[axis]) <= _EPS:
            return None
        plane: Constraint = constraint
        reduced: List[Constraint] = []
        try:
            for prior in order[:idx]:
                red = _substitute(prior, axis, plane)
                if red is not None:
                    reduced.append(red)
            # Box bounds of the eliminated variable become general constraints.
            unit = tuple(1.0 if i == axis else 0.0 for i in range(dim))
            for bnd_constraint in (
                (unit, box_hi[axis]),
                (tuple(-u for u in unit), -box_lo[axis]),
            ):
                red = _substitute(bnd_constraint, axis, plane)
                if red is not None:
                    reduced.append(red)
        except GeometryError:
            return None
        red_obj = _reduce_objective(tuple(objective), axis, plane)
        red_lo = [box_lo[i] for i in range(dim) if i != axis]
        red_hi = [box_hi[i] for i in range(dim) if i != axis]
        sub = _solve(reduced, red_obj, red_lo, red_hi, rng)
        if sub is None:
            return None
        current = _lift(sub, axis, plane)
    return current


def solve_lp(
    constraints: Sequence[Constraint],
    objective: Sequence[float],
    box_lo: Sequence[float],
    box_hi: Sequence[float],
    seed: int = 0x5E1DE1,
) -> Optional[Tuple[float, ...]]:
    """Minimize ``objective . x`` s.t. ``constraints`` and ``box_lo <= x <= box_hi``.

    Returns an optimal point, or ``None`` when infeasible.  The box bounds
    must be finite (the callers always clip to a data bounding box), which
    rules out unbounded LPs.

    >>> solve_lp([((1.0, 1.0), 1.0)], (1.0, 0.0), (0.0, 0.0), (2.0, 2.0))
    (0.0, 0.0)
    """
    dim = len(objective)
    if len(box_lo) != dim or len(box_hi) != dim:
        raise GeometryError("box bounds must match the objective dimensionality")
    for lo, hi in zip(box_lo, box_hi):
        if lo > hi:
            return None
    rng = random.Random(seed)
    return _solve(list(constraints), objective, list(box_lo), list(box_hi), rng)


def feasible_point(
    constraints: Sequence[Constraint],
    box_lo: Sequence[float],
    box_hi: Sequence[float],
    seed: int = 0x5E1DE1,
) -> Optional[Tuple[float, ...]]:
    """Return any point satisfying all constraints within the box, or ``None``."""
    dim = len(box_lo)
    return solve_lp(constraints, (0.0,) * dim, box_lo, box_hi, seed=seed)


def halfspaces_feasible(
    halfspaces: Sequence,
    box_lo: Sequence[float],
    box_hi: Sequence[float],
) -> bool:
    """Feasibility test for :class:`~repro.geometry.halfspaces.HalfSpace` objects."""
    constraints = [(h.coeffs, h.bound) for h in halfspaces]
    return feasible_point(constraints, box_lo, box_hi) is not None

"""repro — indexes for keyword search with structured constraints.

A from-scratch reproduction of Lu & Tao, *Indexing for Keyword Search with
Structured Constraints*, PODS 2023 (DOI 10.1145/3584372.3588663): the §3
transformation framework, all the indexes of Table 1, their substrates
(kd-tree, partition tree, lifting, rank space, balanced cuts), the two naive
baselines, and a k-SI toolkit.

Quickstart
----------
>>> from repro import Dataset, OrpKwIndex, Rect
>>> data = Dataset.from_points(
...     [(120.0, 8.5), (180.0, 9.1), (90.0, 7.0)],
...     [{1, 2, 3}, {1, 3}, {1, 2, 3}],
... )
>>> index = OrpKwIndex(data, k=2)
>>> hotels = index.query(Rect((100.0, 8.0), (200.0, 10.0)), [1, 3])
>>> sorted(obj.oid for obj in hotels)
[0, 1]

See README.md for the full tour and DESIGN.md for the paper-to-module map.
"""

from .costmodel import CostCounter
from .dataset import Dataset, KeywordObject, RectangleObject, make_objects
from .errors import (
    BudgetExceeded,
    BuildError,
    GeometryError,
    ReproError,
    ValidationError,
)
from .geometry import HalfSpace, Rect, Simplex
from .core import (
    DimReductionOrpKw,
    L2NnIndex,
    LcKwIndex,
    LinfNnIndex,
    MultiKOrpIndex,
    OrpKwIndex,
    RrKwIndex,
    SpKwIndex,
    SrpKwIndex,
)
from .rangetree import RangeTree2D
from .intervaltree import IntervalTree
from .core.planner import HybridPlanner
from .text import Vocabulary, dataset_from_texts, tokenize
from .ksi import BitsetKSI, InvertedIndex, KSetIndex, NaiveKSI
from .core.dynamic import DynamicOrpKw
from .core.dynamize import (
    DynamicKeywordsOnly,
    DynamicLcKw,
    DynamicMultiKOrp,
    DynamicSrpKw,
    Dynamized,
    GaugeCompactionPolicy,
)
from .irtree import IrTree
from .persist import load_index, save_index
from .service import (
    AdmissionController,
    AsyncDynamicIndex,
    AsyncQueryEngine,
    LRUCache,
    QueryEngine,
    QueryRecord,
    ShardedQueryEngine,
    Snapshot,
    SnapshotManager,
    partition_dataset,
)
from .trace import (
    GLOBAL_REGISTRY,
    MetricsRegistry,
    TraceSpan,
    Tracer,
    span_for,
)

__version__ = "1.0.0"

__all__ = [
    "CostCounter",
    "Dataset",
    "KeywordObject",
    "RectangleObject",
    "make_objects",
    "ReproError",
    "ValidationError",
    "BudgetExceeded",
    "GeometryError",
    "BuildError",
    "Rect",
    "HalfSpace",
    "Simplex",
    "OrpKwIndex",
    "DimReductionOrpKw",
    "LcKwIndex",
    "SpKwIndex",
    "RrKwIndex",
    "LinfNnIndex",
    "SrpKwIndex",
    "L2NnIndex",
    "InvertedIndex",
    "KSetIndex",
    "NaiveKSI",
    "BitsetKSI",
    "DynamicOrpKw",
    "Dynamized",
    "DynamicKeywordsOnly",
    "DynamicLcKw",
    "DynamicMultiKOrp",
    "DynamicSrpKw",
    "GaugeCompactionPolicy",
    "IrTree",
    "MultiKOrpIndex",
    "RangeTree2D",
    "IntervalTree",
    "HybridPlanner",
    "Vocabulary",
    "dataset_from_texts",
    "tokenize",
    "save_index",
    "load_index",
    "QueryEngine",
    "QueryRecord",
    "ShardedQueryEngine",
    "partition_dataset",
    "AdmissionController",
    "AsyncDynamicIndex",
    "AsyncQueryEngine",
    "Snapshot",
    "SnapshotManager",
    "LRUCache",
    "TraceSpan",
    "Tracer",
    "span_for",
    "MetricsRegistry",
    "GLOBAL_REGISTRY",
    "__version__",
]

"""The reprolint driver: collect files, run rules, gate on the baseline.

Entry points:

* ``python -m repro.analysis [paths...]`` (see :mod:`repro.analysis.__main__`)
* ``python -m repro.cli lint [paths...]`` (the CLI subcommand delegates here)
* :func:`analyze_paths` — the library API the tests use.

Exit codes: 0 = clean (or baselined), 1 = new findings or baseline entries
referencing deleted files, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..errors import ReproError
from . import baseline as baseline_mod
from .findings import Finding
from .rules import ALL_RULES, ProjectRule, Rule, select_rules
from .source import SourceFile, iter_python_files, load_source
from .symbols import ProjectModel


def analyze_paths(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Run ``rules`` (default: all) over every .py file under ``paths``.

    ``root`` anchors display paths (default: the current directory).
    ``respect_scope=False`` applies path-scoped rules (R4-R10) everywhere —
    the fixture tests use this to exercise rules outside their home packages.
    Per-file rules run file by file; :class:`ProjectRule` subclasses (R9,
    R10) run once over a :class:`ProjectModel` of every loaded file, and
    their findings are filtered through the *finding's own* file scope and
    suppressions.  Unparseable files yield a ``PARSE`` finding instead of
    raising.
    """
    active = list(rules) if rules is not None else list(ALL_RULES)
    file_rules = [rule for rule in active if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]
    anchor = root if root is not None else Path.cwd()
    findings: List[Finding] = []
    sources: List[SourceFile] = []
    for file_path in iter_python_files(paths):
        try:
            src = load_source(file_path, root=anchor)
        except SyntaxError as exc:
            display = file_path.as_posix()
            findings.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="PARSE",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        sources.append(src)
        for rule in file_rules:
            if respect_scope and not rule.applies_to(src.display_path):
                continue
            for finding in rule.check(src):
                if not src.suppressed(finding.line, rule.tags):
                    findings.append(finding)
    if project_rules and sources:
        model = ProjectModel(sources)
        for rule in project_rules:
            for finding in rule.check_project(model):
                if respect_scope and not rule.applies_to(finding.path):
                    continue
                src_for = model.files.get(finding.path)
                if src_for is not None and src_for.suppressed(
                    finding.line, rule.tags
                ):
                    continue
                findings.append(finding)
    return sorted(findings)


#: SARIF severity levels corresponding to reprolint severities.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def sarif_payload(
    new: Sequence[Finding], baselined: Sequence[Finding]
) -> dict:
    """A minimal SARIF 2.1.0 document for CI annotation uploads.

    Baselined findings are included with ``baselineState: "unchanged"`` so
    dashboards can render them without failing the gate; new findings carry
    ``baselineState: "new"``.
    """
    rule_ids = sorted({f.rule for f in list(new) + list(baselined)})
    rule_meta = []
    for rule_id in rule_ids:
        rule = next((r for r in ALL_RULES if r.id == rule_id), None)
        entry: dict = {"id": rule_id}
        if rule is not None:
            entry["shortDescription"] = {"text": rule.title}
            entry["defaultConfiguration"] = {
                "level": _SARIF_LEVELS.get(rule.severity, "error")
            }
        rule_meta.append(entry)

    def result(finding: Finding, state: str) -> dict:
        return {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS.get(finding.severity, "error"),
            "baselineState": state,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }

    return {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "DESIGN.md#8",
                        "rules": rule_meta,
                    }
                },
                "results": [result(f, "new") for f in new]
                + [result(f, "unchanged") for f in baselined],
            }
        ],
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "reprolint: CFG/dataflow cost-accounting and invariant auditor "
            "(rules R1-R10, see DESIGN.md section 8)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help=(
            "output format (text = ruff-style lines, json = machine-readable "
            "report, sarif = SARIF 2.1.0 for CI annotation uploads)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_PATH,
        help=f"baseline file of accepted findings (default: {baseline_mod.DEFAULT_PATH})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and gate on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset, e.g. R1,R3 (default: all rules)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory display paths are made relative to (default: cwd)",
    )
    parser.add_argument(
        "--all-paths",
        action="store_true",
        help="apply path-scoped rules (R4-R10) to every analyzed file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        rules = select_rules(args.rules.split(",")) if args.rules else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    root = Path(args.root)
    try:
        findings = analyze_paths(
            [Path(p) for p in args.paths],
            root=root,
            rules=rules,
            respect_scope=not args.all_paths,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = root / args.baseline
    if args.write_baseline:
        baseline_mod.write_baseline(baseline_path, findings)
        print(
            f"# wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    accepted = (
        set() if args.no_baseline else baseline_mod.load_baseline(baseline_path)
    )
    parts = baseline_mod.split_findings(findings, accepted)
    new, baselined, stale = parts["new"], parts["baselined"], parts["stale"]
    # A stale entry whose *file* is gone is not drift to shrink later — the
    # baseline no longer describes the tree, so it gates like a finding.
    dangling = baseline_mod.dangling_entries(stale, root)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "tool": "reprolint",
                    "new": [f.to_dict() for f in new],
                    "baselined": [f.to_dict() for f in baselined],
                    "stale_baseline_entries": [list(key) for key in stale],
                    "dangling_baseline_entries": [list(key) for key in dangling],
                    "summary": {
                        "total": len(findings),
                        "new": len(new),
                        "baselined": len(baselined),
                        "stale": len(stale),
                        "dangling": len(dangling),
                    },
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(json.dumps(sarif_payload(new, baselined), indent=2))
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"# reprolint: {len(findings)} finding(s) — {len(new)} new, "
            f"{len(baselined)} baselined, {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'}"
        )
        print(summary, file=sys.stderr)
        if stale:
            for key in stale:
                marker = " (file missing)" if key in dangling else ""
                print(
                    f"# stale baseline entry{marker}: {key[0]} {key[1]} {key[2]}",
                    file=sys.stderr,
                )
        if dangling:
            print(
                f"# {len(dangling)} baseline entr"
                f"{'y' if len(dangling) == 1 else 'ies'} reference(s) deleted "
                "files; regenerate with --write-baseline",
                file=sys.stderr,
            )

    return 1 if new or dangling else 0

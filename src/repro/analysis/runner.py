"""The reprolint driver: collect files, run rules, gate on the baseline.

Entry points:

* ``python -m repro.analysis [paths...]`` (see :mod:`repro.analysis.__main__`)
* ``python -m repro.cli lint [paths...]`` (the CLI subcommand delegates here)
* :func:`analyze_paths` — the library API the tests use.

Exit codes: 0 = clean (or baselined), 1 = new findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..errors import ReproError
from . import baseline as baseline_mod
from .findings import Finding
from .rules import ALL_RULES, Rule, select_rules
from .source import iter_python_files, load_source


def analyze_paths(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Run ``rules`` (default: all) over every .py file under ``paths``.

    ``root`` anchors display paths (default: the current directory).
    ``respect_scope=False`` applies path-scoped rules (R4/R5/R6) everywhere —
    the fixture tests use this to exercise rules outside their home packages.
    Unparseable files yield a single ``PARSE`` finding instead of raising.
    """
    active = list(rules) if rules is not None else list(ALL_RULES)
    anchor = root if root is not None else Path.cwd()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            src = load_source(file_path, root=anchor)
        except SyntaxError as exc:
            display = file_path.as_posix()
            findings.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="PARSE",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        for rule in active:
            if respect_scope and not rule.applies_to(src.display_path):
                continue
            for finding in rule.check(src):
                if not src.suppressed(finding.line, rule.tags):
                    findings.append(finding)
    return sorted(findings)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description=(
            "reprolint: AST-based cost-accounting and invariant auditor "
            "(rules R1-R6, see DESIGN.md section 8)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (text = ruff-style lines, json = machine-readable)",
    )
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_PATH,
        help=f"baseline file of accepted findings (default: {baseline_mod.DEFAULT_PATH})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and gate on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule subset, e.g. R1,R3 (default: all rules)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory display paths are made relative to (default: cwd)",
    )
    parser.add_argument(
        "--all-paths",
        action="store_true",
        help="apply path-scoped rules (R4/R5/R6) to every analyzed file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        rules = select_rules(args.rules.split(",")) if args.rules else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    root = Path(args.root)
    try:
        findings = analyze_paths(
            [Path(p) for p in args.paths],
            root=root,
            rules=rules,
            respect_scope=not args.all_paths,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = root / args.baseline
    if args.write_baseline:
        baseline_mod.write_baseline(baseline_path, findings)
        print(
            f"# wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    accepted = (
        set() if args.no_baseline else baseline_mod.load_baseline(baseline_path)
    )
    parts = baseline_mod.split_findings(findings, accepted)
    new, baselined, stale = parts["new"], parts["baselined"], parts["stale"]

    if args.format == "json":
        print(
            json.dumps(
                {
                    "tool": "reprolint",
                    "new": [f.to_dict() for f in new],
                    "baselined": [f.to_dict() for f in baselined],
                    "stale_baseline_entries": [list(key) for key in stale],
                    "summary": {
                        "total": len(findings),
                        "new": len(new),
                        "baselined": len(baselined),
                        "stale": len(stale),
                    },
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"# reprolint: {len(findings)} finding(s) — {len(new)} new, "
            f"{len(baselined)} baselined, {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'}"
        )
        print(summary, file=sys.stderr)
        if stale:
            for key in stale:
                print(f"# stale baseline entry: {key[0]} {key[1]} {key[2]}",
                      file=sys.stderr)

    return 1 if new else 0

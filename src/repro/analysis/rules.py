"""The reprolint rule set: this codebase's invariants as AST checks.

Every rule encodes a bug class that a previous PR actually shipped a fix
for (or that DESIGN.md's cost-model contract forbids):

* **R1 uncharged-traversal** — a ``query``/``search``/``report`` method of a
  class traverses tree structure (loops or self-recursion touching
  ``.children``/``.left``/``.right``) yet neither calls ``*.charge(...)``
  nor forwards a ``counter`` to a callee.  In a RAM-model reproduction an
  uncounted traversal silently corrupts the measured quantity (the PR-1
  ``MultiKOrpIndex`` k=1 bug class).
* **R2 mutate-before-validate** — an ``insert*``/``delete*``/``add*``/
  ``remove*``/``update*`` method assigns to ``self.*`` (or calls a mutating
  helper) before its last validation check has run, so a rejected input can
  leave the structure half-updated (the PR-2 ``DynamicOrpKw.insert`` class).
* **R3 mutable-escape** — a public method returns an attribute known to hold
  a ``list``/``dict``/``set`` (or an entry of a dict-of-mutables), handing
  callers a reference they can mutate to poison the index (the PR-2
  ``QueryEngine`` cache class).
* **R4 float-equality** — ``==``/``!=`` against float operands inside the
  geometry package, where tolerance-based predicates are the contract.
  Legitimate exact tests opt out with ``# reprolint: exact``.
* **R5 wall-clock-in-cost-path** — any ``time.time``/``perf_counter``/...
  use inside the cost-counted index packages: wall clock must never leak
  into RAM-model accounting.
* **R6 unseeded-rng** — module-level ``random.*``/``np.random.*`` calls in
  workload/benchmark code instead of an explicit seeded
  ``random.Random``/``np.random.default_rng`` instance: unseeded randomness
  makes benchmark numbers unreproducible.

All rules are heuristic *by design* (no type inference, no interprocedural
analysis); the committed baseline plus per-line opt-outs absorb accepted
findings, and the fixtures under ``tests/analysis/fixtures`` pin each rule's
intended positive/negative behaviour.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .source import SourceFile

# --------------------------------------------------------------------------
# shared AST helpers


def _self_attr(node: ast.AST) -> Optional[str]:
    """Attribute name when ``node`` is ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _attr_names(node: ast.AST) -> Set[str]:
    """All attribute names referenced anywhere under ``node``."""
    return {sub.attr for sub in ast.walk(node) if isinstance(sub, ast.Attribute)}


def _calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _is_mutable_literal(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a fresh mutable container."""
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"}
    return False


def _class_methods(
    cls: ast.ClassDef,
) -> Iterator[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    id: str = ""
    title: str = ""
    #: suppression tags honoured in addition to the rule id itself.
    extra_tags: Tuple[str, ...] = ()
    #: display-path regex limiting where the rule applies (None = everywhere).
    scope: Optional[re.Pattern] = None

    @property
    def tags(self) -> Tuple[str, ...]:
        return (self.id.lower(),) + self.extra_tags

    def applies_to(self, display_path: str) -> bool:
        return self.scope is None or bool(self.scope.search(display_path))

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(self, src: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=src.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


# --------------------------------------------------------------------------
# R1 — uncharged traversal


#: tree-structure attributes whose traversal must be cost-counted.
_TRAVERSAL_ATTRS = {"children", "left", "right"}

_QUERY_METHOD_RE = re.compile(r"^_*(query|search|report|visit)")


class UnchargedTraversal(Rule):
    id = "R1"
    title = "uncharged traversal in a query path"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)):
            for method in _class_methods(cls):
                if not _QUERY_METHOD_RE.match(method.name):
                    continue
                traversal = self._first_traversal(method)
                if traversal is None:
                    continue
                if self._charges_or_delegates(method):
                    continue
                yield self._finding(
                    src,
                    traversal,
                    f"{cls.name}.{method.name} traverses index structure "
                    "(.children/.left/.right) but neither charges a cost "
                    "counter nor forwards one to a callee",
                )

    @staticmethod
    def _first_traversal(method: ast.FunctionDef) -> Optional[ast.AST]:
        """First loop or self-recursive call that touches tree structure."""
        for node in ast.walk(method):
            if isinstance(node, (ast.For, ast.While)):
                if _attr_names(node) & _TRAVERSAL_ATTRS:
                    return node
            elif isinstance(node, ast.Call):
                callee = _self_attr(node.func)
                if callee == method.name and any(
                    _attr_names(arg) & _TRAVERSAL_ATTRS for arg in node.args
                ):
                    return node
        return None

    @staticmethod
    def _charges_or_delegates(method: ast.FunctionDef) -> bool:
        """A ``*.charge(...)`` call, or any call receiving a ``counter``."""
        for call in _calls(method):
            if isinstance(call.func, ast.Attribute) and call.func.attr == "charge":
                return True
            for arg in call.args:
                if isinstance(arg, ast.Name) and "counter" in arg.id.lower():
                    return True
            for kw in call.keywords:
                if kw.arg is not None and "counter" in kw.arg.lower():
                    return True
                if isinstance(kw.value, ast.Name) and "counter" in kw.value.id.lower():
                    return True
        return False


# --------------------------------------------------------------------------
# R2 — mutate before validate


_UPDATE_METHOD_RE = re.compile(r"^_*(insert|delete|add|remove|update)")
_VALIDATOR_CALL_RE = re.compile(r"^_*(validate|check|coerce|ensure)")
_MUTATING_HELPER_RE = re.compile(r"^_*(merge|rebuild|push|apply|store|register)")
#: container methods that mutate their receiver.
_CONTAINER_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "sort",
}


class MutateBeforeValidate(Rule):
    id = "R2"
    title = "state mutation before validation completes"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)):
            for method in _class_methods(cls):
                if not _UPDATE_METHOD_RE.match(method.name):
                    continue
                yield from self._check_method(src, cls, method)

    def _check_method(
        self, src: SourceFile, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        last_validation = -1
        for index, stmt in enumerate(method.body):
            if self._contains_validation(stmt):
                last_validation = index
        if last_validation < 0:
            return
        for index, stmt in enumerate(method.body[:last_validation]):
            mutation = self._first_mutation(stmt)
            if mutation is not None:
                yield self._finding(
                    src,
                    mutation,
                    f"{cls.name}.{method.name} mutates self before its last "
                    f"validation check (statement {last_validation + 1}) has "
                    "run; a rejected input would leave the structure "
                    "half-updated",
                )
                return  # one finding per method is enough to fix it

    @staticmethod
    def _contains_validation(stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr
                    if isinstance(target, ast.Attribute)
                    else ""
                )
                if name.endswith("Error"):
                    return True
            elif isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else ""
                )
                if _VALIDATOR_CALL_RE.match(name):
                    return True
        return False

    @staticmethod
    def _roots_in_self(target: ast.AST) -> bool:
        """Whether an assignment target is ``self.<...>`` however nested."""
        base = target
        while isinstance(base, (ast.Subscript, ast.Starred, ast.Attribute)):
            if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                return base.value.id == "self"
            base = base.value
        return False

    @classmethod
    def _first_mutation(cls, stmt: ast.stmt) -> Optional[ast.AST]:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue  # bare annotation: nothing assigned
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if any(cls._roots_in_self(target) for target in targets):
                    return node
            elif isinstance(node, ast.Delete):
                if any(cls._roots_in_self(target) for target in node.targets):
                    return node
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # self.attr.append(...) — container mutation
                if (
                    node.func.attr in _CONTAINER_MUTATORS
                    and _self_attr(node.func.value) is not None
                ):
                    return node
                # self._merge_in(...) — mutating helper by naming convention
                if _self_attr(node.func) is not None and _MUTATING_HELPER_RE.match(
                    node.func.attr
                ):
                    return node
        return None


# --------------------------------------------------------------------------
# R3 — mutable escape


class MutableEscape(Rule):
    id = "R3"
    title = "public method returns a mutable internal"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)):
            mutable_attrs, dict_of_mutables = self._mutable_attributes(cls)
            if not mutable_attrs and not dict_of_mutables:
                continue
            for method in _class_methods(cls):
                if method.name.startswith("_"):
                    continue  # private/dunder: callers accept sharp edges
                for ret in (
                    n for n in ast.walk(method) if isinstance(n, ast.Return)
                ):
                    escaped = self._escaped_attr(
                        ret.value, mutable_attrs, dict_of_mutables
                    )
                    if escaped is not None:
                        yield self._finding(
                            src,
                            ret,
                            f"{cls.name}.{method.name} returns mutable internal "
                            f"state self.{escaped}; return a copy (or an "
                            "immutable view) so callers cannot poison the index",
                        )

    @staticmethod
    def _mutable_attributes(
        cls: ast.ClassDef,
    ) -> Tuple[Set[str], Set[str]]:
        """Attrs assigned fresh mutable containers / used as dict-of-mutables."""
        mutable: Set[str] = set()
        dict_of: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None and _is_mutable_literal(value):
                        mutable.add(attr)
                    # self.attr[key] = <mutable> — dict-of-mutables
                    if (
                        isinstance(target, ast.Subscript)
                        and _self_attr(target.value) is not None
                        and _is_mutable_literal(value)
                    ):
                        dict_of.add(_self_attr(target.value))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # self.attr.setdefault(k, <mutable>) — dict-of-mutables
                if (
                    node.func.attr == "setdefault"
                    and _self_attr(node.func.value) is not None
                    and len(node.args) >= 2
                    and _is_mutable_literal(node.args[1])
                ):
                    dict_of.add(_self_attr(node.func.value))
        return mutable, dict_of

    @staticmethod
    def _escaped_attr(
        value: Optional[ast.AST],
        mutable_attrs: Set[str],
        dict_of_mutables: Set[str],
    ) -> Optional[str]:
        if value is None:
            return None
        # return self.attr
        attr = _self_attr(value)
        if attr in mutable_attrs or attr in dict_of_mutables:
            return attr
        # return self.attr[key]
        if isinstance(value, ast.Subscript):
            attr = _self_attr(value.value)
            if attr in dict_of_mutables:
                return attr
        # return self.attr.get(key, default)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
        ):
            attr = _self_attr(value.func.value)
            if attr in dict_of_mutables:
                return attr
        return None


# --------------------------------------------------------------------------
# R4 — float equality in geometry


class FloatEquality(Rule):
    id = "R4"
    title = "exact float equality in geometry code"
    extra_tags = ("exact",)
    scope = re.compile(r"(^|/)repro/geometry/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(self._looks_float(operand) for operand in operands):
                yield self._finding(
                    src,
                    node,
                    "==/!= against a float operand; use a tolerance-based "
                    "predicate, or append '# reprolint: exact' for a "
                    "legitimate exact-representation test",
                )

    @staticmethod
    def _looks_float(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "float"
            ):
                return True
        return False


# --------------------------------------------------------------------------
# R5 — wall clock in the cost path


_CLOCK_NAMES = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock",
}


class WallClockInCostPath(Rule):
    id = "R5"
    title = "wall clock inside the RAM-model cost path"
    # trace/ is in scope on purpose: spans carry cost-unit deltas and must
    # stay timestamp-free, or traced and untraced runs would diverge.
    scope = re.compile(r"(^|/)repro/(core|kdtree|partitiontree|ksi|irtree|trace)/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
                and node.attr in _CLOCK_NAMES
            ):
                yield self._finding(
                    src,
                    node,
                    f"time.{node.attr} in a cost-counted index package; the "
                    "RAM-model cost counter is the only clock allowed here",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                clocks = sorted(
                    alias.name for alias in node.names if alias.name in _CLOCK_NAMES
                )
                if clocks:
                    yield self._finding(
                        src,
                        node,
                        f"imports {', '.join(clocks)} from time in a "
                        "cost-counted index package; the RAM-model cost "
                        "counter is the only clock allowed here",
                    )


# --------------------------------------------------------------------------
# R6 — unseeded RNG in workloads/benchmarks


#: module-level random.* calls that are themselves seeding/construction.
_RANDOM_ALLOWED = {"seed", "Random", "SystemRandom", "getstate", "setstate"}
_NP_RANDOM_ALLOWED = {"seed", "default_rng", "get_state", "set_state"}


class UnseededRng(Rule):
    id = "R6"
    title = "unseeded module-level RNG in workload/benchmark code"
    scope = re.compile(r"(^|/)(repro/workloads|benchmarks)/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # random.<fn>(...)
            if isinstance(func.value, ast.Name) and func.value.id == "random":
                if func.attr == "Random" and not node.args and not node.keywords:
                    yield self._finding(
                        src,
                        node,
                        "random.Random() without a seed; pass an explicit "
                        "seed so workloads are reproducible",
                    )
                elif func.attr not in _RANDOM_ALLOWED:
                    yield self._finding(
                        src,
                        node,
                        f"module-level random.{func.attr}(...) draws from "
                        "shared unseeded state; use a seeded random.Random "
                        "instance instead",
                    )
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            elif (
                isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in {"np", "numpy"}
            ):
                if func.attr == "RandomState" and (node.args or node.keywords):
                    continue  # explicitly seeded legacy generator
                if func.attr not in _NP_RANDOM_ALLOWED:
                    yield self._finding(
                        src,
                        node,
                        f"module-level {func.value.value.id}.random."
                        f"{func.attr}(...) draws from shared unseeded state; "
                        "use np.random.default_rng(seed) instead",
                    )


# --------------------------------------------------------------------------
# registry


ALL_RULES: Tuple[Rule, ...] = (
    UnchargedTraversal(),
    MutateBeforeValidate(),
    MutableEscape(),
    FloatEquality(),
    WallClockInCostPath(),
    UnseededRng(),
)

RULES_BY_ID = {rule.id: rule for rule in ALL_RULES}


def select_rules(ids: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve ``--rules R1,R3``-style selections (None = all rules)."""
    if not ids:
        return list(ALL_RULES)
    chosen = []
    for rule_id in ids:
        normalized = rule_id.strip().upper()
        if normalized not in RULES_BY_ID:
            raise ValueError(
                f"unknown rule {rule_id!r} (known: {', '.join(RULES_BY_ID)})"
            )
        chosen.append(RULES_BY_ID[normalized])
    return chosen

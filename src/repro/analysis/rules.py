"""The reprolint rule set: this codebase's invariants as AST checks.

Every rule encodes a bug class that a previous PR actually shipped a fix
for (or that DESIGN.md's cost-model contract forbids):

* **R1 uncharged-traversal** — a ``query``/``search``/``report`` method of a
  class traverses tree structure (loops or self-recursion touching
  ``.children``/``.left``/``.right``) yet neither calls ``*.charge(...)``
  nor forwards a ``counter`` to a callee.  In a RAM-model reproduction an
  uncounted traversal silently corrupts the measured quantity (the PR-1
  ``MultiKOrpIndex`` k=1 bug class).
* **R2 mutate-before-validate** — an ``insert*``/``delete*``/``add*``/
  ``remove*``/``update*`` method assigns to ``self.*`` (or calls a mutating
  helper) before its last validation check has run, so a rejected input can
  leave the structure half-updated (the PR-2 ``DynamicOrpKw.insert`` class).
* **R3 mutable-escape** — a public method returns an attribute known to hold
  a ``list``/``dict``/``set`` (or an entry of a dict-of-mutables), handing
  callers a reference they can mutate to poison the index (the PR-2
  ``QueryEngine`` cache class).
* **R4 float-equality** — ``==``/``!=`` against float operands inside the
  geometry package, where tolerance-based predicates are the contract.
  Legitimate exact tests opt out with ``# reprolint: exact``.
* **R5 wall-clock-in-cost-path** — any ``time.time``/``perf_counter``/...
  use inside the cost-counted index packages: wall clock must never leak
  into RAM-model accounting.
* **R6 unseeded-rng** — module-level ``random.*``/``np.random.*`` calls in
  workload/benchmark code instead of an explicit seeded
  ``random.Random``/``np.random.default_rng`` instance: unseeded randomness
  makes benchmark numbers unreproducible.

The v2 families added on top of the CFG/dataflow engine (:mod:`.cfg`) and
the project symbol table (:mod:`.symbols`):

* **R7 epoch-publication-atomicity** — in copy-on-write classes (those with
  a ``publish``-style method rebinding a published attribute), mutators must
  not mutate published state in place, must not publish twice on one path,
  and must publish on *every* non-exceptional exit path once they build new
  state (the ``DynamicOrpKw`` contract from PR 6).
* **R8 await-holding-state** — in async service code, a read-modify-write
  of ``self.*`` state that straddles an ``await`` is not atomic under task
  interleaving unless guarded by an ``async with <lock>`` block.
* **R9 backend-charge-parity** — cross-module: the set of ``CostCounter``
  categories charged transitively on a scalar ``core/`` query path must
  equal the set charged by its vectorized ``fast/`` mirror (the PR-7
  cost-model-as-oracle contract, checked statically).
* **R10 span-discipline** — charges/probe merges outside an open
  ``TraceSpan`` (lexically or via every call site), and explicitly pushed
  spans without a guaranteed ``finally`` pop.

All rules are heuristic *by design* (no type inference; R9/R10 use a
by-name call graph, not a resolved one); the committed baseline plus
per-line opt-outs absorb accepted findings, and the fixtures under
``tests/analysis/fixtures`` pin each rule's intended positive/negative
behaviour.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from .cfg import (
    EXCEPTIONAL_KINDS,
    CFGNode,
    assigned_names,
    attribute_chain,
    build_cfg,
    reaching_definitions,
)
from .findings import Finding
from .source import SourceFile
from .symbols import FunctionInfo, ProjectModel

# --------------------------------------------------------------------------
# shared AST helpers


def _self_attr(node: ast.AST) -> Optional[str]:
    """Attribute name when ``node`` is ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _attr_names(node: ast.AST) -> Set[str]:
    """All attribute names referenced anywhere under ``node``."""
    return {sub.attr for sub in ast.walk(node) if isinstance(sub, ast.Attribute)}


def _calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _is_mutable_literal(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a fresh mutable container."""
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"}
    return False


def _class_methods(
    cls: ast.ClassDef,
) -> Iterator[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    id: str = ""
    title: str = ""
    #: reporting severity ("error" or "warning"); does not change gating.
    severity: str = "error"
    #: suppression tags honoured in addition to the rule id itself.
    extra_tags: Tuple[str, ...] = ()
    #: display-path regex limiting where the rule applies (None = everywhere).
    scope: Optional[re.Pattern] = None

    @property
    def tags(self) -> Tuple[str, ...]:
        return (self.id.lower(),) + self.extra_tags

    def applies_to(self, display_path: str) -> bool:
        return self.scope is None or bool(self.scope.search(display_path))

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(self, src: SourceFile, node: ast.AST, message: str) -> Finding:
        return self._finding_at(src.display_path, node, message)

    def _finding_at(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that reasons across files via a :class:`ProjectModel`.

    Project rules run once per analysis invocation (not once per file);
    the runner builds the model from every loaded source file and filters
    the returned findings through per-line suppressions and (when scopes
    are respected) :meth:`Rule.applies_to` on each finding's own path.
    """

    project = True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        raise NotImplementedError


# --------------------------------------------------------------------------
# R1 — uncharged traversal


#: tree-structure attributes whose traversal must be cost-counted.
_TRAVERSAL_ATTRS = {"children", "left", "right"}

_QUERY_METHOD_RE = re.compile(r"^_*(query|search|report|visit)")


class UnchargedTraversal(Rule):
    id = "R1"
    title = "uncharged traversal in a query path"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)):
            for method in _class_methods(cls):
                if not _QUERY_METHOD_RE.match(method.name):
                    continue
                traversal = self._first_traversal(method)
                if traversal is None:
                    continue
                if self._charges_or_delegates(method):
                    continue
                yield self._finding(
                    src,
                    traversal,
                    f"{cls.name}.{method.name} traverses index structure "
                    "(.children/.left/.right) but neither charges a cost "
                    "counter nor forwards one to a callee",
                )

    @staticmethod
    def _first_traversal(method: ast.FunctionDef) -> Optional[ast.AST]:
        """First loop or self-recursive call that touches tree structure."""
        for node in ast.walk(method):
            if isinstance(node, (ast.For, ast.While)):
                if _attr_names(node) & _TRAVERSAL_ATTRS:
                    return node
            elif isinstance(node, ast.Call):
                callee = _self_attr(node.func)
                if callee == method.name and any(
                    _attr_names(arg) & _TRAVERSAL_ATTRS for arg in node.args
                ):
                    return node
        return None

    @staticmethod
    def _charges_or_delegates(method: ast.FunctionDef) -> bool:
        """A ``*.charge(...)`` call, or any call receiving a ``counter``."""
        for call in _calls(method):
            if isinstance(call.func, ast.Attribute) and call.func.attr == "charge":
                return True
            for arg in call.args:
                if isinstance(arg, ast.Name) and "counter" in arg.id.lower():
                    return True
            for kw in call.keywords:
                if kw.arg is not None and "counter" in kw.arg.lower():
                    return True
                if isinstance(kw.value, ast.Name) and "counter" in kw.value.id.lower():
                    return True
        return False


# --------------------------------------------------------------------------
# R2 — mutate before validate


_UPDATE_METHOD_RE = re.compile(r"^_*(insert|delete|add|remove|update)")
_VALIDATOR_CALL_RE = re.compile(r"^_*(validate|check|coerce|ensure)")
_MUTATING_HELPER_RE = re.compile(r"^_*(merge|rebuild|push|apply|store|register)")
#: container methods that mutate their receiver.
_CONTAINER_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "sort",
}


class MutateBeforeValidate(Rule):
    id = "R2"
    title = "state mutation before validation completes"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)):
            for method in _class_methods(cls):
                if not _UPDATE_METHOD_RE.match(method.name):
                    continue
                yield from self._check_method(src, cls, method)

    def _check_method(
        self, src: SourceFile, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        last_validation = -1
        for index, stmt in enumerate(method.body):
            if self._contains_validation(stmt):
                last_validation = index
        if last_validation < 0:
            return
        for index, stmt in enumerate(method.body[:last_validation]):
            mutation = self._first_mutation(stmt)
            if mutation is not None:
                yield self._finding(
                    src,
                    mutation,
                    f"{cls.name}.{method.name} mutates self before its last "
                    f"validation check (statement {last_validation + 1}) has "
                    "run; a rejected input would leave the structure "
                    "half-updated",
                )
                return  # one finding per method is enough to fix it

    @staticmethod
    def _contains_validation(stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr
                    if isinstance(target, ast.Attribute)
                    else ""
                )
                if name.endswith("Error"):
                    return True
            elif isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else ""
                )
                if _VALIDATOR_CALL_RE.match(name):
                    return True
        return False

    @staticmethod
    def _roots_in_self(target: ast.AST) -> bool:
        """Whether an assignment target is ``self.<...>`` however nested."""
        base = target
        while isinstance(base, (ast.Subscript, ast.Starred, ast.Attribute)):
            if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                return base.value.id == "self"
            base = base.value
        return False

    @classmethod
    def _first_mutation(cls, stmt: ast.stmt) -> Optional[ast.AST]:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue  # bare annotation: nothing assigned
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if any(cls._roots_in_self(target) for target in targets):
                    return node
            elif isinstance(node, ast.Delete):
                if any(cls._roots_in_self(target) for target in node.targets):
                    return node
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # self.attr.append(...) — container mutation
                if (
                    node.func.attr in _CONTAINER_MUTATORS
                    and _self_attr(node.func.value) is not None
                ):
                    return node
                # self._merge_in(...) — mutating helper by naming convention
                if _self_attr(node.func) is not None and _MUTATING_HELPER_RE.match(
                    node.func.attr
                ):
                    return node
        return None


# --------------------------------------------------------------------------
# R3 — mutable escape


class MutableEscape(Rule):
    id = "R3"
    title = "public method returns a mutable internal"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)):
            mutable_attrs, dict_of_mutables = self._mutable_attributes(cls)
            if not mutable_attrs and not dict_of_mutables:
                continue
            for method in _class_methods(cls):
                if method.name.startswith("_"):
                    continue  # private/dunder: callers accept sharp edges
                for ret in (
                    n for n in ast.walk(method) if isinstance(n, ast.Return)
                ):
                    escaped = self._escaped_attr(
                        ret.value, mutable_attrs, dict_of_mutables
                    )
                    if escaped is not None:
                        yield self._finding(
                            src,
                            ret,
                            f"{cls.name}.{method.name} returns mutable internal "
                            f"state self.{escaped}; return a copy (or an "
                            "immutable view) so callers cannot poison the index",
                        )

    @staticmethod
    def _mutable_attributes(
        cls: ast.ClassDef,
    ) -> Tuple[Set[str], Set[str]]:
        """Attrs assigned fresh mutable containers / used as dict-of-mutables."""
        mutable: Set[str] = set()
        dict_of: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                if value is None:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None and _is_mutable_literal(value):
                        mutable.add(attr)
                    # self.attr[key] = <mutable> — dict-of-mutables
                    if (
                        isinstance(target, ast.Subscript)
                        and _self_attr(target.value) is not None
                        and _is_mutable_literal(value)
                    ):
                        dict_of.add(_self_attr(target.value))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # self.attr.setdefault(k, <mutable>) — dict-of-mutables
                if (
                    node.func.attr == "setdefault"
                    and _self_attr(node.func.value) is not None
                    and len(node.args) >= 2
                    and _is_mutable_literal(node.args[1])
                ):
                    dict_of.add(_self_attr(node.func.value))
        return mutable, dict_of

    @staticmethod
    def _escaped_attr(
        value: Optional[ast.AST],
        mutable_attrs: Set[str],
        dict_of_mutables: Set[str],
    ) -> Optional[str]:
        if value is None:
            return None
        # return self.attr
        attr = _self_attr(value)
        if attr in mutable_attrs or attr in dict_of_mutables:
            return attr
        # return self.attr[key]
        if isinstance(value, ast.Subscript):
            attr = _self_attr(value.value)
            if attr in dict_of_mutables:
                return attr
        # return self.attr.get(key, default)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
        ):
            attr = _self_attr(value.func.value)
            if attr in dict_of_mutables:
                return attr
        return None


# --------------------------------------------------------------------------
# R4 — float equality in geometry


class FloatEquality(Rule):
    id = "R4"
    title = "exact float equality in geometry code"
    extra_tags = ("exact",)
    scope = re.compile(r"(^|/)repro/geometry/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(self._looks_float(operand) for operand in operands):
                yield self._finding(
                    src,
                    node,
                    "==/!= against a float operand; use a tolerance-based "
                    "predicate, or append '# reprolint: exact' for a "
                    "legitimate exact-representation test",
                )

    @staticmethod
    def _looks_float(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "float"
            ):
                return True
        return False


# --------------------------------------------------------------------------
# R5 — wall clock in the cost path


_CLOCK_NAMES = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock",
}


class WallClockInCostPath(Rule):
    id = "R5"
    title = "wall clock inside the RAM-model cost path"
    # trace/ is in scope on purpose: spans carry cost-unit deltas and must
    # stay timestamp-free, or traced and untraced runs would diverge.
    # telemetry/ likewise: every estimator is keyed on cost units and event
    # counts; the one sanctioned wall-clock (clock.MonotonicClock) is the
    # single baselined R5 finding.
    scope = re.compile(
        r"(^|/)repro/(core|kdtree|partitiontree|ksi|irtree|trace|telemetry)/"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
                and node.attr in _CLOCK_NAMES
            ):
                yield self._finding(
                    src,
                    node,
                    f"time.{node.attr} in a cost-counted index package; the "
                    "RAM-model cost counter is the only clock allowed here",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                clocks = sorted(
                    alias.name for alias in node.names if alias.name in _CLOCK_NAMES
                )
                if clocks:
                    yield self._finding(
                        src,
                        node,
                        f"imports {', '.join(clocks)} from time in a "
                        "cost-counted index package; the RAM-model cost "
                        "counter is the only clock allowed here",
                    )


# --------------------------------------------------------------------------
# R6 — unseeded RNG in workloads/benchmarks


#: module-level random.* calls that are themselves seeding/construction.
_RANDOM_ALLOWED = {"seed", "Random", "SystemRandom", "getstate", "setstate"}
_NP_RANDOM_ALLOWED = {"seed", "default_rng", "get_state", "set_state"}


class UnseededRng(Rule):
    id = "R6"
    title = "unseeded module-level RNG in workload/benchmark code"
    scope = re.compile(r"(^|/)(repro/workloads|benchmarks)/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # random.<fn>(...)
            if isinstance(func.value, ast.Name) and func.value.id == "random":
                if func.attr == "Random" and not node.args and not node.keywords:
                    yield self._finding(
                        src,
                        node,
                        "random.Random() without a seed; pass an explicit "
                        "seed so workloads are reproducible",
                    )
                elif func.attr not in _RANDOM_ALLOWED:
                    yield self._finding(
                        src,
                        node,
                        f"module-level random.{func.attr}(...) draws from "
                        "shared unseeded state; use a seeded random.Random "
                        "instance instead",
                    )
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            elif (
                isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in {"np", "numpy"}
            ):
                if func.attr == "RandomState" and (node.args or node.keywords):
                    continue  # explicitly seeded legacy generator
                if func.attr not in _NP_RANDOM_ALLOWED:
                    yield self._finding(
                        src,
                        node,
                        f"module-level {func.value.value.id}.random."
                        f"{func.attr}(...) draws from shared unseeded state; "
                        "use np.random.default_rng(seed) instead",
                    )


# --------------------------------------------------------------------------
# R7 — epoch publication atomicity (CFG-based)


_PUBLISH_METHOD_RE = re.compile(r"^_*publish")
_R7_MUTATOR_RE = re.compile(
    r"^_*(insert|delete|add|remove|update|rebuild|clear|compact|merge)"
)


class EpochPublicationAtomicity(Rule):
    """In a copy-on-write class (one with a ``publish``-style method that
    rebinds a published attribute), every mutator must build fresh state and
    publish it exactly once on every non-exceptional exit path — never
    mutate the already-published object in place, never publish twice."""

    id = "R7"
    title = "non-atomic epoch publication in a copy-on-write mutator"
    severity = "error"
    scope = re.compile(r"(^|/)repro/(core|service)/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)):
            publish_names, published = self._publication_surface(cls)
            if not publish_names or not published:
                continue
            publishing_calls = self._publishing_closure(cls, publish_names)
            for method in _class_methods(cls):
                if method.name in publish_names or method.name == "__init__":
                    continue
                if not _R7_MUTATOR_RE.match(method.name):
                    continue
                yield from self._check_mutator(
                    src, cls, method, publish_names, published, publishing_calls
                )

    @staticmethod
    def _publication_surface(
        cls: ast.ClassDef,
    ) -> Tuple[Set[str], Set[str]]:
        """(publish-method names, attribute names those methods rebind)."""
        publish_names: Set[str] = set()
        published: Set[str] = set()
        for method in _class_methods(cls):
            if not _PUBLISH_METHOD_RE.match(method.name):
                continue
            publish_names.add(method.name)
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            published.add(attr)
        return publish_names, published

    @staticmethod
    def _publishing_closure(cls: ast.ClassDef, publish_names: Set[str]) -> Set[str]:
        """Method names that publish transitively: the publish methods plus
        any method calling one of them (``delete`` → ``_rebuild_all`` →
        ``_publish`` all count as publication events at their call sites)."""
        closure = set(publish_names)
        changed = True
        while changed:
            changed = False
            for method in _class_methods(cls):
                if method.name in closure:
                    continue
                for call in _calls(method):
                    if _self_attr(call.func) in closure:
                        closure.add(method.name)
                        changed = True
                        break
        return closure

    def _check_mutator(
        self,
        src: SourceFile,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        publish_names: Set[str],
        published: Set[str],
        publishing_calls: Set[str],
    ) -> Iterator[Finding]:
        # (a) in-place mutation of already-published state (AST-level).
        for node, attr in self._published_mutations(method, published):
            yield self._finding(
                src,
                node,
                f"{cls.name}.{method.name} mutates published state "
                f"self.{attr} in place; readers of the live epoch can "
                "observe a half-applied update — build fresh state and "
                f"publish it atomically via {sorted(publish_names)[0]}()",
            )

        # (b)/(c) are path properties: build the CFG once.
        cfg = build_cfg(method)
        publish_nodes = [
            node
            for node in cfg.statement_nodes()
            if self._publish_events(node, publishing_calls, published)
        ]
        if not publish_nodes:
            return

        # (b) double publish on one path (incl. publish inside a loop).
        for first in publish_nodes:
            again = cfg.reachable(first, avoid_kinds=EXCEPTIONAL_KINDS)
            second = next((n for n in publish_nodes if n in again), None)
            if second is not None:
                yield self._finding(
                    src,
                    second.stmt,
                    f"{cls.name}.{method.name} publishes twice on one "
                    "control-flow path; concurrent readers between the two "
                    "publications observe an intermediate epoch",
                )
                break

        # (c) built state that can reach the exit without being published.
        built_locals = self._published_locals(method, publishing_calls, published)
        if not built_locals:
            return
        for node in cfg.statement_nodes():
            names = set()
            for header in node.header_ast():
                names.update(assigned_names(header))
            if not (names & built_locals):
                continue
            if node in publish_nodes:
                continue
            if cfg.path_exists(
                node,
                cfg.exit,
                avoid_nodes=publish_nodes,
                avoid_kinds=EXCEPTIONAL_KINDS,
            ):
                yield self._finding(
                    src,
                    node.stmt,
                    f"{cls.name}.{method.name} builds a new epoch but some "
                    "non-exceptional exit path skips publication; the "
                    "mutation is silently lost on that path",
                )
                break

    @staticmethod
    def _published_mutations(
        method: ast.FunctionDef, published: Set[str]
    ) -> Iterator[Tuple[ast.AST, str]]:
        prefixes = {f"self.{attr}" for attr in published}

        def rooted(chain: Optional[str], strict: bool) -> Optional[str]:
            if chain is None:
                return None
            for prefix in prefixes:
                if chain == prefix and not strict:
                    return prefix.split(".", 1)[1]
                if chain.startswith(prefix + "."):
                    return prefix.split(".", 1)[1]
            return None

        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        # self.<p>.<sub> = ... is in-place; self.<p> = ... is
                        # a (possibly bypassing) publish, handled by (b)/(c).
                        attr = rooted(attribute_chain(target), strict=True)
                        if attr is not None:
                            yield node, attr
                    elif isinstance(target, ast.Subscript):
                        attr = rooted(attribute_chain(target.value), strict=False)
                        if attr is not None:
                            yield node, attr
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _CONTAINER_MUTATORS:
                    attr = rooted(attribute_chain(node.func.value), strict=False)
                    if attr is not None:
                        yield node, attr

    @staticmethod
    def _publish_events(
        node: CFGNode, publish_names: Set[str], published: Set[str]
    ) -> bool:
        """Whether the statement publishes: calls a publish method or
        rebinds a published attribute directly."""
        for header in node.header_ast():
            for sub in ast.walk(header):
                if (
                    isinstance(sub, ast.Call)
                    and _self_attr(sub.func) in publish_names
                ):
                    return True
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if _self_attr(target) in published:
                            return True
        return False

    @staticmethod
    def _published_locals(
        method: ast.FunctionDef, publish_names: Set[str], published: Set[str]
    ) -> Set[str]:
        """Local names that flow into a publish call or published attribute."""
        out: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Call) and _self_attr(node.func) in publish_names:
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        out.add(arg.id)
            elif isinstance(node, ast.Assign):
                if (
                    any(_self_attr(t) in published for t in node.targets)
                    and isinstance(node.value, ast.Name)
                ):
                    out.add(node.value.id)
        return out


# --------------------------------------------------------------------------
# R8 — read-modify-write of shared state straddling an await (CFG-based)


_LOCKISH = ("lock", "sem", "cond", "mutex")


def _is_lockish_expr(node: ast.AST) -> bool:
    target = node
    if isinstance(target, ast.Call):
        target = target.func
    chain = attribute_chain(target)
    if chain is None:
        return False
    last = chain.rsplit(".", 1)[-1].lower()
    return any(token in last for token in _LOCKISH)


class AwaitHoldingState(Rule):
    """Flag ``v = self.x; await ...; self.x = f(v)`` shapes (and one-line
    ``self.x = ... await ... self.x ...``): under ``asyncio`` another task
    can interleave at the ``await`` and the write clobbers its update.
    Regions inside an ``async with <lock/sem/cond>`` block are exempt."""

    id = "R8"
    title = "read-modify-write of shared state straddles an await"
    severity = "error"
    scope = re.compile(r"(^|/)repro/service/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for func in (
            n for n in ast.walk(src.tree) if isinstance(n, ast.AsyncFunctionDef)
        ):
            yield from self._check_async(src, func)

    def _check_async(
        self, src: SourceFile, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        lock_regions = [
            (node.lineno, node.end_lineno or node.lineno)
            for node in ast.walk(func)
            if isinstance(node, ast.AsyncWith)
            and any(_is_lockish_expr(item.context_expr) for item in node.items)
        ]

        def locked(*linenos: int) -> bool:
            return any(
                all(start <= line <= end for line in linenos)
                for start, end in lock_regions
            )

        cfg = build_cfg(func)
        nodes = cfg.statement_nodes()
        awaits = [
            n
            for n in nodes
            if any(
                isinstance(sub, ast.Await)
                for header in n.header_ast()
                for sub in ast.walk(header)
            )
        ]

        reads: List[Tuple[CFGNode, str, str]] = []  # (node, local, chain)
        writes: List[Tuple[CFGNode, str, Set[str], bool]] = []
        for node in nodes:
            for header in node.header_ast():
                for sub in ast.walk(header):
                    if isinstance(sub, ast.Assign):
                        self._collect_assign(sub, node, reads, writes)
                    elif isinstance(sub, ast.AugAssign):
                        chain = attribute_chain(sub.target)
                        if chain is not None and chain.startswith("self."):
                            has_await = any(
                                isinstance(x, ast.Await) for x in ast.walk(sub.value)
                            )
                            writes.append((node, chain, set(), has_await))

        emitted: Set[Tuple[str, int]] = set()

        # One-statement straddle: the write's own RHS awaits after reading
        # the same chain (or the target is re-read implicitly by AugAssign).
        for node, chain, _sources, has_await in writes:
            if not has_await:
                continue
            line = getattr(node.stmt, "lineno", 0)
            if locked(line):
                continue
            if (chain, node.index) in emitted:
                continue
            emitted.add((chain, node.index))
            yield self._finding(
                src,
                node.stmt,
                f"{func.name} reads and rewrites shared state {chain} across "
                "an await in one statement; another task can interleave at "
                "the suspension point — recompute after the await or guard "
                "with a lock",
            )

        if not awaits:
            return
        rdefs = reaching_definitions(cfg)
        for r_node, local, chain in reads:
            for w_node, w_chain, sources, _has_await in writes:
                if w_chain != chain or local not in sources:
                    continue
                if (local, r_node.index) not in rdefs[w_node.index]:
                    continue  # the read is dead by the time of the write
                straddles = any(
                    a in (r_node, w_node)
                    or (
                        cfg.path_exists(
                            r_node, a, avoid_kinds=EXCEPTIONAL_KINDS
                        )
                        and cfg.path_exists(
                            a, w_node, avoid_kinds=EXCEPTIONAL_KINDS
                        )
                    )
                    for a in awaits
                )
                if not straddles:
                    continue
                r_line = getattr(r_node.stmt, "lineno", 0)
                w_line = getattr(w_node.stmt, "lineno", 0)
                if locked(r_line, w_line):
                    continue
                if (chain, w_node.index) in emitted:
                    continue
                emitted.add((chain, w_node.index))
                yield self._finding(
                    src,
                    w_node.stmt,
                    f"{func.name} reads {chain} (line {r_line}) before an "
                    "await and writes it back afterwards; the "
                    "read-modify-write is not atomic under task "
                    "interleaving — recompute after the await or guard "
                    "with a lock",
                )

    @staticmethod
    def _collect_assign(
        sub: ast.Assign,
        node: CFGNode,
        reads: List[Tuple[CFGNode, str, str]],
        writes: List[Tuple[CFGNode, str, Set[str], bool]],
    ) -> None:
        value_names = {
            x.id for x in ast.walk(sub.value) if isinstance(x, ast.Name)
        }
        value_chains = {
            attribute_chain(x)
            for x in ast.walk(sub.value)
            if isinstance(x, ast.Attribute)
        }
        has_await = any(isinstance(x, ast.Await) for x in ast.walk(sub.value))
        for target in sub.targets:
            if isinstance(target, ast.Name):
                # v = ... self.x ... captures a snapshot of shared state.
                for chain in value_chains:
                    if chain is not None and chain.startswith("self."):
                        reads.append((node, target.id, chain))
            else:
                chain = attribute_chain(target)
                if chain is None and isinstance(target, ast.Subscript):
                    chain = attribute_chain(target.value)
                if chain is not None and chain.startswith("self."):
                    rereads = chain in value_chains
                    writes.append(
                        (node, chain, value_names, has_await and rereads)
                    )


# --------------------------------------------------------------------------
# R9 — backend charge parity (cross-module, call-graph-based)


class _ParitySide:
    __slots__ = ("label", "entries", "allow")

    def __init__(
        self,
        label: str,
        entries: Sequence[Tuple[str, str]],
        allow: "re.Pattern[str]",
    ):
        self.label = label
        self.entries = entries
        self.allow = allow


#: The scalar ↔ vectorized parity contract, one family per query pipeline.
#: Each side lists (path-suffix, qualname) entry points and the module
#: allowlist its transitive charge closure may traverse.  Categories are
#: compared as the *union over the family*: the scalar path charges per
#: element, the fast path once per batch, but the set of categories must
#: match exactly or measured costs silently diverge between backends.
_PARITY_FAMILIES: Tuple[Tuple[str, _ParitySide, _ParitySide], ...] = (
    (
        "keyword-intersection",
        _ParitySide(
            "scalar (cost-model path)",
            (("core/baselines.py", "KeywordsOnlyIndex.query_predicate"),),
            re.compile(r"(^|/)(core/baselines|ksi/inverted)\.py$"),
        ),
        _ParitySide(
            "vectorized (fast path)",
            (
                ("fast/backend.py", "VectorizedBackend.query_rect"),
                ("fast/backend.py", "VectorizedBackend.query_halfspaces"),
            ),
            re.compile(r"(^|/)fast/(arrays|backend)\.py$"),
        ),
    ),
)


class BackendChargeParity(ProjectRule):
    """Every CostCounter category charged on a scalar query path in ``core/``
    must have a batch-granularity mirror in the corresponding ``fast/``
    routine, and vice versa (the PR-7 oracle contract, checked statically)."""

    id = "R9"
    title = "charge category missing its scalar/vectorized mirror"
    severity = "error"
    scope = re.compile(r"(^|/)(core|ksi|fast)/")

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        for family, scalar, fast in _PARITY_FAMILIES:
            yield from self._check_family(model, family, scalar, fast)

    def _check_family(
        self,
        model: ProjectModel,
        family: str,
        scalar: _ParitySide,
        fast: _ParitySide,
    ) -> Iterator[Finding]:
        scalar_entries = self._resolve(model, scalar)
        fast_entries = self._resolve(model, fast)
        if not scalar_entries or not fast_entries:
            return  # partial analysis (one side not in the file set): no claim
        scalar_cats = self._union_categories(model, scalar_entries, scalar.allow)
        fast_cats = self._union_categories(model, fast_entries, fast.allow)
        yield from self._diff(
            family, scalar, scalar_cats, fast, fast_cats, fast_entries[0]
        )
        yield from self._diff(
            family, fast, fast_cats, scalar, scalar_cats, scalar_entries[0]
        )

    @staticmethod
    def _resolve(
        model: ProjectModel, side: _ParitySide
    ) -> List[FunctionInfo]:
        out = []
        for path_suffix, qualname in side.entries:
            info = model.find(path_suffix, qualname)
            if info is not None:
                out.append(info)
        return out

    @staticmethod
    def _union_categories(
        model: ProjectModel,
        entries: Sequence[FunctionInfo],
        allow: "re.Pattern[str]",
    ) -> Set[str]:
        cats: Set[str] = set()
        for entry in entries:
            cats.update(model.transitive_categories(entry, allow))
        return cats

    def _diff(
        self,
        family: str,
        have_side: _ParitySide,
        have: Set[str],
        miss_side: _ParitySide,
        missing_in: Set[str],
        anchor: FunctionInfo,
    ) -> Iterator[Finding]:
        for category in sorted(have - missing_in):
            entry_names = ", ".join(q for _p, q in miss_side.entries)
            yield self._finding_at(
                anchor.path,
                anchor.node,
                f"parity family '{family}': charge category '{category}' is "
                f"emitted on the {have_side.label} but has no mirror on the "
                f"{miss_side.label} (checked {entry_names} and their "
                "transitive callees)",
            )


# --------------------------------------------------------------------------
# R10 — span discipline (cross-function, call-graph-based)


class SpanDiscipline(ProjectRule):
    """Charges and probe merges must happen inside an open TraceSpan (either
    lexically, or because every call site of the charging function is itself
    spanned), and explicitly pushed spans must be popped in a ``finally``."""

    id = "R10"
    title = "cost charged or merged outside an open trace span"
    severity = "warning"
    scope = re.compile(r"(^|/)repro/(core/dynamic\.py|service/|fast/|trace/)")

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        for info in model.functions:
            for push in info.pushes:
                if not push.guarded:
                    yield self._finding_at(
                        info.path,
                        push.call,
                        f"{info.qualname} pushes a trace span without a "
                        "try/finally pop; the span leaks on exception paths "
                        "— use the tracer's span() context manager or wrap "
                        "the region in try/finally",
                    )
            for site in info.charges:
                if site.covered:
                    continue
                if self._all_callers_covered(model, info):
                    continue
                if site.is_merge:
                    message = (
                        f"{info.qualname} merges probe costs outside an open "
                        "TraceSpan; the transfer is invisible to the trace "
                        "tree — merge inside the consuming span, or baseline "
                        "if the merge is deliberately tracer-silent"
                    )
                else:
                    message = (
                        f"{info.qualname} charges '{site.category}' outside "
                        "an open TraceSpan; wrap the charging region in "
                        "span_for(...) or enter it only from spanned call "
                        "sites so traced and untraced accounting agree"
                    )
                yield self._finding_at(info.path, site.call, message)

    @staticmethod
    def _all_callers_covered(model: ProjectModel, info: FunctionInfo) -> bool:
        """One-level interprocedural exemption: every project call site of
        this function's (bare) name sits inside an open span."""
        sites = [
            site
            for caller, site in model.call_sites_of(info.name)
            if caller is not info
        ]
        return bool(sites) and all(site.covered for site in sites)


# --------------------------------------------------------------------------
# registry


ALL_RULES: Tuple[Rule, ...] = (
    UnchargedTraversal(),
    MutateBeforeValidate(),
    MutableEscape(),
    FloatEquality(),
    WallClockInCostPath(),
    UnseededRng(),
    EpochPublicationAtomicity(),
    AwaitHoldingState(),
    BackendChargeParity(),
    SpanDiscipline(),
)

RULES_BY_ID = {rule.id: rule for rule in ALL_RULES}


def select_rules(ids: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve ``--rules R1,R3``-style selections (None = all rules)."""
    if not ids:
        return list(ALL_RULES)
    chosen = []
    for rule_id in ids:
        normalized = rule_id.strip().upper()
        if normalized not in RULES_BY_ID:
            raise ValueError(
                f"unknown rule {rule_id!r} (known: {', '.join(RULES_BY_ID)})"
            )
        chosen.append(RULES_BY_ID[normalized])
    return chosen

"""Finding objects emitted by the reprolint rules.

A finding pins one rule violation to a source location.  Its *identity* for
baseline purposes is ``(path, rule, message)`` — deliberately excluding the
line number, so that unrelated edits moving code up or down a file do not
invalidate a committed baseline (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is repo-relative with forward slashes (stable across machines);
    ``line``/``col`` are 1-based, matching the ``path:line:col`` convention
    of ruff/gcc so editors can jump to the location.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: ``"error"`` or ``"warning"`` — reporting metadata carried into the
    #: JSON/SARIF outputs.  Severity does not change gating: a new finding
    #: fails the build either way, and it is excluded from :attr:`key` so
    #: re-classifying a rule never invalidates a committed baseline.
    severity: str = "error"

    @property
    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable under pure line movement."""
        return (self.path, self.rule, self.message)

    def render(self) -> str:
        """The ruff-style one-line rendering."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by ``--format json`` and baselines)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }

"""Source-file loading, AST parsing, and suppression-comment handling.

Suppressions are trailing comments of the form::

    if x == 0.0:  # reprolint: exact
    return self._postings  # reprolint: r3
    whatever()  # reprolint: ignore

A tag suppresses a finding on the same line when it is (case-insensitively)
the rule id (``r3``/``R3``), the rule's documented opt-out word (``exact``
for R4), or the blanket ``ignore``.  Tags may be comma-separated, and a
rationale may follow after ``--``::

    return self.items  # reprolint: r3 -- documented zero-copy accessor
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

#: Matches the suppression payload inside a comment token.
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*([A-Za-z0-9_,\- ]+)")

#: The blanket tag that silences every rule on its line.
IGNORE_TAG = "ignore"


@dataclass
class SourceFile:
    """One parsed Python file plus its per-line suppression tags."""

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    #: line number -> lower-cased suppression tags on that line.
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, tags: Iterable[str]) -> bool:
        """Whether any of ``tags`` (or the blanket tag) is active on ``line``."""
        active = self.suppressions.get(line)
        if not active:
            return False
        if IGNORE_TAG in active:
            return True
        return any(tag.lower() in active for tag in tags)


def _comment_tags(comment: str) -> Set[str]:
    match = _SUPPRESS_RE.search(comment)
    if not match:
        return set()
    payload = match.group(1).split("--", 1)[0]
    return {part.strip().lower() for part in payload.split(",") if part.strip()}


def _parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Extract ``# reprolint: ...`` tags via the tokenizer (not a line regex),
    so string literals that merely *contain* the marker are not treated as
    suppressions.

    A comment attached to a *logical* line — including one sitting on any
    physical line of a parenthesized continuation — suppresses every
    physical line that logical line spans, so a finding anchored on the
    first line of a multi-line call is silenced by a tag on (say) the
    closing-paren line.  A standalone comment (no code on its logical line)
    applies to its own line only.
    """
    tags: Dict[int, Set[str]] = {}
    logical_start: Optional[int] = None  # first code line since last NEWLINE
    pending: Set[str] = set()  # tags seen inside the current logical line
    last_line = 0
    _JUNK = (tokenize.NL, tokenize.INDENT, tokenize.DEDENT, tokenize.ENCODING)

    def flush(end_line: int) -> None:
        nonlocal pending, logical_start
        if pending and logical_start is not None:
            for line in range(logical_start, end_line + 1):
                tags.setdefault(line, set()).update(pending)
        pending = set()
        logical_start = None

    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                parsed = _comment_tags(token.string)
                if parsed:
                    if logical_start is None:
                        # Standalone comment: its own line only.
                        tags.setdefault(token.start[0], set()).update(parsed)
                    else:
                        pending.update(parsed)
                continue
            if token.type == tokenize.NEWLINE:
                flush(max(token.start[0], last_line))
                continue
            if token.type in _JUNK or token.type == tokenize.ENDMARKER:
                continue
            if logical_start is None:
                logical_start = token.start[0]
            last_line = token.end[0]
    except tokenize.TokenError:
        pass  # unterminated constructs: the ast parse will complain instead
    flush(last_line)
    return tags


def load_source(path: Path, root: Optional[Path] = None) -> SourceFile:
    """Parse ``path`` into a :class:`SourceFile`.

    ``root`` anchors the display path; files outside it (or with no root)
    display as given.  Raises :class:`SyntaxError` on unparseable files —
    callers turn that into a finding rather than a crash.
    """
    text = path.read_text(encoding="utf-8")
    display = path
    if root is not None:
        try:
            display = path.resolve().relative_to(root.resolve())
        except ValueError:
            display = path
    tree = ast.parse(text, filename=str(path))
    return SourceFile(
        path=path,
        display_path=display.as_posix(),
        text=text,
        tree=tree,
        suppressions=_parse_suppressions(text),
    )


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list.

    Compiled caches and hidden directories are skipped.
    """
    seen: Set[Path] = set()
    out: List[Path] = []
    for entry in paths:
        if entry.is_file():
            candidates = [entry] if entry.suffix == ".py" else []
        elif entry.is_dir():
            candidates = sorted(
                p
                for p in entry.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out

"""Baseline files: accepted findings that gate CI without blocking it.

The workflow mirrors ruff's ``--add-noqa`` / mypy's baseline tools:

1. ``python -m repro.analysis src --write-baseline`` records every current
   finding in ``analysis/baseline.json`` (committed to the repo).
2. Subsequent runs subtract baselined findings; only **new** findings fail
   the build (exit code 1).
3. Baseline entries whose finding no longer exists are reported as *stale*
   so the file shrinks over time instead of fossilizing.  Stale entries
   whose *file* no longer exists are **dangling** and fail the build: a
   baseline that references deleted files no longer describes the tree.

Matching is by ``(path, rule, message)`` — line numbers are recorded for
human readers but ignored for matching, so pure code movement does not
invalidate the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from ..errors import ValidationError
from .findings import Finding

#: Baseline schema version (bump on incompatible format changes).
VERSION = 1

#: Default location, relative to the repository root.
DEFAULT_PATH = "analysis/baseline.json"

Key = Tuple[str, str, str]


def load_baseline(path: Path) -> Set[Key]:
    """Read the accepted-finding keys from ``path`` (missing file = empty)."""
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValidationError(f"{path}: expected an object with a 'findings' list")
    keys: Set[Key] = set()
    for entry in payload["findings"]:
        try:
            keys.add((entry["path"], entry["rule"], entry["message"]))
        except (TypeError, KeyError) as exc:
            raise ValidationError(f"{path}: malformed baseline entry ({exc})") from exc
    return keys


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record ``findings`` as the new accepted baseline at ``path``."""
    payload = {
        "version": VERSION,
        "tool": "reprolint",
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def dangling_entries(stale: Sequence[Key], root: Path) -> List[Key]:
    """Stale keys whose referenced file no longer exists under ``root``.

    These gate CI (exit 1) rather than merely being reported: a rename or
    deletion must regenerate the baseline in the same change.
    """
    return [key for key in stale if not (root / key[0]).exists()]


def split_findings(
    findings: Sequence[Finding], accepted: Set[Key]
) -> Dict[str, List]:
    """Partition findings against a baseline.

    Returns ``{"new": [Finding...], "baselined": [Finding...],
    "stale": [key...]}`` where *stale* keys are baseline entries no current
    finding matches.
    """
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen: Set[Key] = set()
    for finding in findings:
        if finding.key in accepted:
            baselined.append(finding)
            seen.add(finding.key)
        else:
            new.append(finding)
    stale = sorted(accepted - seen)
    return {"new": new, "baselined": baselined, "stale": stale}

"""Module-level symbol tables and a project call graph for cross-module rules.

PR 3's rules see one function at a time; the backend-parity (R9) and
span-discipline (R10) families need to reason *across* functions and across
the ``core/`` ↔ ``fast/`` module pair: which charge categories a routine
emits transitively, and whether a charging routine is only ever entered from
inside an open :class:`~repro.trace.span.TraceSpan`.

The model stays lint-grade on purpose:

* Every function/method in the analyzed file set becomes a
  :class:`FunctionInfo` carrying its direct cost-model **charge sites**
  (``X.charge("<literal>", ...)``), **merge sites** (``X.merge(Y)`` between
  counter-looking operands), and **call sites**.
* Calls resolve *by bare callee name* across the project
  (``self.store.intersect(...)`` resolves to every known function named
  ``intersect``) — no type inference.  Rules narrow the candidate set with
  module-path filters where collisions would hurt.
* Each site records whether it is lexically inside an open span context:
  a ``with span_for(...)`` / ``with tracer.span(...)`` block, or the
  ``push(...); try: ... finally: pop()`` pattern the recursion hot paths use.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .source import SourceFile

#: Names whose presence in an operand marks it as cost-counter-like for the
#: merge-site heuristic (``spent.merge(probe)``; ``caller.merge(counter)``).
_COUNTERISH = ("counter", "probe", "spent", "cost")


def _is_counterish(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        return False
    return any(token in name for token in _COUNTERISH)


def _is_span_with(stmt: ast.AST) -> bool:
    """Whether a ``with`` statement opens a trace span."""
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return False
    for item in stmt.items:
        expr = item.context_expr
        if not isinstance(expr, ast.Call):
            continue
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "span_for":
            return True
        if isinstance(func, ast.Attribute) and func.attr in ("span", "span_for"):
            return True
    return False


def _push_call(stmt: ast.AST) -> Optional[ast.Call]:
    """The ``tracer.push(...)`` call when ``stmt`` is exactly that."""
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "push"
        and _receiver_is_tracer(stmt.value.func.value)
    ):
        return stmt.value
    return None


def _receiver_is_tracer(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "tracer" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "tracer" in node.attr.lower()
    return False


def _finalbody_pops(stmt: ast.Try) -> bool:
    for sub in stmt.finalbody:
        for call in ast.walk(sub):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "pop"
                and _receiver_is_tracer(call.func.value)
            ):
                return True
    return False


@dataclass
class ChargeSite:
    """One ``X.charge(...)`` (or counter merge) call inside a function."""

    call: ast.Call
    category: Optional[str]  # literal first argument, when it is one
    covered: bool  # lexically inside an open span context
    is_merge: bool = False


@dataclass
class CallSite:
    """One call to a (possibly project-internal) function, by bare name."""

    call: ast.Call
    callee: str
    covered: bool


@dataclass
class PushSite:
    """An explicit ``tracer.push(...)`` and whether a finally pops it."""

    call: ast.Call
    guarded: bool  # immediately followed by try/finally containing pop()


@dataclass
class FunctionInfo:
    """One function or method with its cost/span-relevant sites."""

    path: str  # display path of the defining file
    qualname: str  # "Class.method", "func", or "outer.<locals>.inner"
    name: str  # bare name
    node: ast.AST
    charges: List[ChargeSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    pushes: List[PushSite] = field(default_factory=list)

    @property
    def direct_categories(self) -> Set[str]:
        return {
            site.category
            for site in self.charges
            if site.category is not None and not site.is_merge
        }


class _SiteCollector(ast.NodeVisitor):
    """Walks one function body, tracking lexical span-context depth."""

    def __init__(self, info: FunctionInfo):
        self.info = info
        self._span_depth = 0

    def visit_body(self, stmts: Sequence[ast.stmt]) -> None:
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            push = _push_call(stmt)
            if push is not None:
                follower = stmts[index + 1] if index + 1 < len(stmts) else None
                guarded = isinstance(follower, ast.Try) and _finalbody_pops(follower)
                self.info.pushes.append(PushSite(call=push, guarded=guarded))
                if guarded:
                    # The try body runs between push and pop: covered.
                    self._span_depth += 1
                    try:
                        self.visit(follower)
                    finally:
                        self._span_depth -= 1
                    index += 2
                    continue
            self.visit(stmt)
            index += 1

    # -- structure -------------------------------------------------------------

    def _visit_compound(self, node: ast.AST) -> None:
        for field_name in ("body", "orelse", "finalbody"):
            self.visit_body(getattr(node, field_name, ()) or ())
        for handler in getattr(node, "handlers", ()) or ():
            self.visit_body(handler.body)

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self._visit_compound(node)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._visit_compound(node)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_compound(node)

    visit_AsyncFor = visit_For

    def visit_Try(self, node: ast.Try) -> None:
        self._visit_compound(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
        if _is_span_with(node):
            self._span_depth += 1
            try:
                self.visit_body(node.body)
            finally:
                self._span_depth -= 1
        else:
            self.visit_body(node.body)

    visit_AsyncWith = visit_With

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested definitions are collected as their own FunctionInfo by the
        # ProjectModel walk; don't double-attribute their sites here.
        return

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    # -- sites -----------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        covered = self._span_depth > 0
        if isinstance(func, ast.Attribute):
            if func.attr == "charge":
                category = None
                if node.args and isinstance(node.args[0], ast.Constant):
                    value = node.args[0].value
                    if isinstance(value, str):
                        category = value
                self.info.charges.append(
                    ChargeSite(call=node, category=category, covered=covered)
                )
            elif func.attr == "merge" and (
                _is_counterish(func.value)
                or any(_is_counterish(arg) for arg in node.args)
            ):
                self.info.charges.append(
                    ChargeSite(
                        call=node, category=None, covered=covered, is_merge=True
                    )
                )
            self.info.calls.append(
                CallSite(call=node, callee=func.attr, covered=covered)
            )
        elif isinstance(func, ast.Name):
            self.info.calls.append(
                CallSite(call=node, callee=func.id, covered=covered)
            )
        self.generic_visit(node)


class ProjectModel:
    """Symbol tables + call graph over an analyzed set of source files."""

    def __init__(self, sources: Iterable[SourceFile]):
        self.files: Dict[str, SourceFile] = {}
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        for src in sources:
            self.add_file(src)

    def add_file(self, src: SourceFile) -> None:
        self.files[src.display_path] = src
        self._walk(src, src.tree, prefix="")

    def _walk(self, src: SourceFile, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._walk(src, child, prefix=f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    path=src.display_path,
                    qualname=f"{prefix}{child.name}",
                    name=child.name,
                    node=child,
                )
                collector = _SiteCollector(info)
                collector.visit_body(child.body)
                self.functions.append(info)
                self.by_name.setdefault(child.name, []).append(info)
                self._walk(src, child, prefix=f"{prefix}{child.name}.<locals>.")

    # -- lookups ---------------------------------------------------------------

    def resolve(
        self, callee: str, path_filter: Optional[re.Pattern] = None
    ) -> List[FunctionInfo]:
        """Project functions named ``callee`` (optionally path-filtered)."""
        found = self.by_name.get(callee, [])
        if path_filter is None:
            return list(found)
        return [info for info in found if path_filter.search(info.path)]

    def find(self, path_suffix: str, qualname: str) -> Optional[FunctionInfo]:
        """The unique function at ``(*path_suffix, qualname)``, if present."""
        for info in self.functions:
            if info.qualname == qualname and info.path.endswith(path_suffix):
                return info
        return None

    def call_sites_of(self, name: str) -> List[Tuple[FunctionInfo, CallSite]]:
        """Every call site in the project whose bare callee name matches."""
        out: List[Tuple[FunctionInfo, CallSite]] = []
        for info in self.functions:
            for site in info.calls:
                if site.callee == name:
                    out.append((info, site))
        return out

    def transitive_categories(
        self, entry: FunctionInfo, path_filter: re.Pattern
    ) -> Dict[str, List[Tuple[FunctionInfo, ChargeSite]]]:
        """Charge categories reachable from ``entry`` through project calls.

        Follows calls only into functions whose defining file matches
        ``path_filter`` (the per-side module allowlist that keeps the
        ``core``/``fast`` closures from leaking into each other).  Returns
        ``{category: [(function, charge site), ...]}``.
        """
        out: Dict[str, List[Tuple[FunctionInfo, ChargeSite]]] = {}
        seen: Set[int] = set()
        stack = [entry]
        while stack:
            info = stack.pop()
            if id(info) in seen:
                continue
            seen.add(id(info))
            for site in info.charges:
                if site.category is not None and not site.is_merge:
                    out.setdefault(site.category, []).append((info, site))
            for call in info.calls:
                for callee in self.resolve(call.callee, path_filter):
                    if id(callee) not in seen:
                        stack.append(callee)
        return out

"""reprolint: AST-based cost-accounting and invariant auditor.

This package encodes the repository's own invariants — every traversal on a
query path charges the :class:`~repro.costmodel.CostCounter`, updates
validate before they mutate, internals never escape mutably, geometry never
compares floats exactly, the cost path never reads a wall clock, and
workloads never draw unseeded randomness — as static-analysis rules over the
repo's AST.  See DESIGN.md §8 for the rule catalogue, the opt-out comment
syntax, and the baseline workflow.

Run it as ``python -m repro.analysis src`` or ``python -m repro.cli lint``.
"""

from .baseline import load_baseline, split_findings, write_baseline
from .findings import Finding
from .rules import ALL_RULES, RULES_BY_ID, select_rules
from .runner import analyze_paths, main
from .source import SourceFile, iter_python_files, load_source

__all__ = [
    "ALL_RULES",
    "Finding",
    "RULES_BY_ID",
    "SourceFile",
    "analyze_paths",
    "iter_python_files",
    "load_baseline",
    "load_source",
    "main",
    "select_rules",
    "split_findings",
    "write_baseline",
]

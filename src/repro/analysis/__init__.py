"""reprolint: AST-based cost-accounting and invariant auditor.

This package encodes the repository's own invariants — every traversal on a
query path charges the :class:`~repro.costmodel.CostCounter`, updates
validate before they mutate, internals never escape mutably, geometry never
compares floats exactly, the cost path never reads a wall clock, and
workloads never draw unseeded randomness — as static-analysis rules over the
repo's AST.  See DESIGN.md §8 for the rule catalogue, the opt-out comment
syntax, and the baseline workflow.

Run it as ``python -m repro.analysis src`` or ``python -m repro.cli lint``.
"""

from .baseline import dangling_entries, load_baseline, split_findings, write_baseline
from .cfg import CFG, build_cfg, reaching_definitions
from .findings import Finding
from .rules import ALL_RULES, RULES_BY_ID, ProjectRule, Rule, select_rules
from .runner import analyze_paths, main, sarif_payload
from .source import SourceFile, iter_python_files, load_source
from .symbols import ProjectModel

__all__ = [
    "ALL_RULES",
    "CFG",
    "Finding",
    "ProjectModel",
    "ProjectRule",
    "RULES_BY_ID",
    "Rule",
    "SourceFile",
    "analyze_paths",
    "build_cfg",
    "dangling_entries",
    "iter_python_files",
    "load_baseline",
    "load_source",
    "main",
    "reaching_definitions",
    "sarif_payload",
    "select_rules",
    "split_findings",
    "write_baseline",
]

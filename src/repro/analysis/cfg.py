"""Intraprocedural control-flow graphs and reaching definitions.

PR 3's rules were single-pass AST pattern matches: one function, one walk,
no notion of *order* or *paths*.  The post-PR-6 invariants are path
properties — "every exit path publishes exactly one epoch", "no
read-modify-write of shared state straddles an ``await``", "a pushed span is
popped on every exception path" — so this module gives the rule families a
small statement-level CFG plus a classic reaching-definitions dataflow pass.

Model (deliberately modest, documented where it approximates):

* One :class:`CFGNode` per *statement* (plus synthetic ``entry``/``exit``).
  Compound statements contribute a node for their header (the ``if``/
  ``while``/``for`` test, the ``with`` items) and recurse into their bodies;
  :meth:`CFGNode.header_ast` exposes only the header expressions so rules
  never accidentally scan a whole subtree through its header node.
* Edges carry a kind: ``next``, ``true``/``false`` (branch), ``back`` (loop
  back edge), ``break``/``continue``, ``return``, ``raise`` (explicit
  ``raise``), ``except`` (implicit potential exception inside a ``try``).
* ``try``/``finally`` duplicates the ``finally`` suite per provenance — a
  normal-completion copy, an exceptional copy that re-raises, and one copy
  per ``return`` routed through it — so "the finally ran" and "the function
  still raised/returned" stay distinguishable on the edge set.  Copies get
  ``x<N>``-suffixed labels (``L12x1``) since they share line numbers.
* Inside a ``try``, every statement gets ``except`` edges to the handler
  entries (and to the exceptional ``finally`` copy when present): any
  statement may raise.  Outside a ``try``, implicit exceptions are not
  modeled; ``with`` blocks do not model ``__exit__`` as a barrier; ``break``
  and ``continue`` do not route through intervening ``finally`` suites.
  These are documented approximations, acceptable for lint-grade analysis.

Labels are stable and test-friendly: ``entry``, ``exit``, else
``L<lineno>`` (+ copy suffix), so fixtures can assert *exact* edge sets.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: Edge kinds considered "normal completion" when asking whether a path
#: reaches the function exit without raising.
NORMAL_EXIT_KINDS = frozenset({"next", "true", "false", "return", "break"})

#: Edge kinds that represent exceptional control transfer.
EXCEPTIONAL_KINDS = frozenset({"raise", "except"})


class CFGNode:
    """One statement (or synthetic entry/exit) in the graph."""

    __slots__ = ("index", "stmt", "kind", "label", "succ", "pred")

    def __init__(
        self,
        index: int,
        stmt: Optional[ast.AST] = None,
        kind: str = "stmt",
        suffix: str = "",
    ):
        self.index = index
        self.stmt = stmt
        self.kind = kind  # "entry" | "exit" | "stmt"
        if kind in ("entry", "exit"):
            self.label = kind
        else:
            self.label = f"L{getattr(stmt, 'lineno', 0)}{suffix}"
        #: outgoing edges as (node, edge_kind) pairs, in creation order.
        self.succ: List[Tuple["CFGNode", str]] = []
        #: incoming edges as (node, edge_kind) pairs.
        self.pred: List[Tuple["CFGNode", str]] = []

    def header_ast(self) -> List[ast.AST]:
        """The AST parts evaluated *at* this node (compound bodies excluded)."""
        stmt = self.stmt
        if stmt is None:
            return []
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.target, stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return list(stmt.items)
        if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []
        return [stmt]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFGNode({self.label})"


class CFG:
    """A built graph: nodes, synthetic entry/exit, and path queries."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(kind="entry")
        self.exit = self._new(kind="exit")

    def _new(
        self, stmt: Optional[ast.AST] = None, kind: str = "stmt", suffix: str = ""
    ) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, kind, suffix)
        self.nodes.append(node)
        return node

    def link(self, src: CFGNode, dst: CFGNode, kind: str = "next") -> None:
        src.succ.append((dst, kind))
        dst.pred.append((src, kind))

    # -- queries ---------------------------------------------------------------

    def edges(self) -> Set[Tuple[str, str, str]]:
        """``{(src_label, dst_label, kind)}`` — what the CFG fixtures assert."""
        return {
            (node.label, dst.label, kind)
            for node in self.nodes
            for dst, kind in node.succ
        }

    def statement_nodes(self) -> List[CFGNode]:
        return [node for node in self.nodes if node.kind == "stmt"]

    def reachable(
        self,
        start: CFGNode,
        avoid_nodes: Iterable[CFGNode] = (),
        avoid_kinds: FrozenSet[str] = frozenset(),
    ) -> Set[CFGNode]:
        """Nodes reachable from ``start`` without *entering* an avoided node
        or traversing an edge of an avoided kind.  ``start`` itself is not
        returned unless a cycle leads back into it."""
        blocked = set(avoid_nodes)
        seen: Set[CFGNode] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for succ, kind in node.succ:
                if kind in avoid_kinds or succ in blocked or succ in seen:
                    continue
                seen.add(succ)
                stack.append(succ)
        return seen

    def path_exists(
        self,
        start: CFGNode,
        goal: CFGNode,
        avoid_nodes: Iterable[CFGNode] = (),
        avoid_kinds: FrozenSet[str] = frozenset(),
    ) -> bool:
        return goal in self.reachable(start, avoid_nodes, avoid_kinds)


class _LoopCtx:
    __slots__ = ("continue_node", "break_frontier")

    def __init__(self, continue_node: CFGNode):
        self.continue_node = continue_node
        self.break_frontier: List[Tuple[CFGNode, str]] = []


class _Ctx:
    """Builder context: where raises, breaks, and returns route to."""

    __slots__ = ("except_targets", "loops", "finally_stack")

    def __init__(self) -> None:
        #: handler/exceptional-finally entry nodes a raise jumps to.
        self.except_targets: List[CFGNode] = []
        self.loops: List[_LoopCtx] = []
        #: (finalbody, ctx-at-that-level) pairs, innermost last, that a
        #: ``return`` must route through before reaching the exit.
        self.finally_stack: List[Tuple[Sequence[ast.stmt], "_Ctx"]] = []

    def child(self) -> "_Ctx":
        ctx = _Ctx()
        ctx.except_targets = list(self.except_targets)
        ctx.loops = self.loops  # shared: break/continue see the same stack
        ctx.finally_stack = list(self.finally_stack)
        return ctx


Frontier = List[Tuple[CFGNode, str]]


class CFGBuilder:
    """Builds a :class:`CFG` for one function (or a bare statement list)."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self._copies = 0
        self._suffix = ""

    def build(self, func: ast.AST) -> CFG:
        body = getattr(func, "body", None)
        if body is None:
            raise TypeError(f"cannot build a CFG for {func!r}")
        frontier = self._stmts(body, [(self.cfg.entry, "next")], _Ctx())
        self._connect(frontier, self.cfg.exit)
        return self.cfg

    # -- plumbing --------------------------------------------------------------

    def _connect(self, frontier: Frontier, node: CFGNode) -> None:
        for src, kind in frontier:
            self.cfg.link(src, node, kind)

    def _fresh_suffix(self) -> str:
        self._copies += 1
        return f"x{self._copies}"

    def _node(self, stmt: ast.AST, ctx: _Ctx, frontier: Frontier) -> CFGNode:
        node = self.cfg._new(stmt, suffix=self._suffix)
        self._connect(frontier, node)
        # Any statement inside a try may raise into the handlers.
        for target in ctx.except_targets:
            self.cfg.link(node, target, "except")
        return node

    def _block(
        self, stmts: Sequence[ast.stmt], frontier: Frontier, ctx: _Ctx
    ) -> Tuple[Optional[CFGNode], Frontier]:
        """Build ``stmts``; returns (entry node or None, out frontier)."""
        before = len(self.cfg.nodes)
        out = self._stmts(stmts, frontier, ctx)
        entry = self.cfg.nodes[before] if len(self.cfg.nodes) > before else None
        return entry, out

    # -- statement dispatch ----------------------------------------------------

    def _stmts(
        self, stmts: Sequence[ast.stmt], frontier: Frontier, ctx: _Ctx
    ) -> Frontier:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier, ctx)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: Frontier, ctx: _Ctx) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._node(stmt, ctx, frontier)
            return self._stmts(stmt.body, [(node, "next")], ctx)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, frontier, ctx)
        if isinstance(stmt, ast.Raise):
            node = self._node(stmt, ctx, frontier)
            self._route_raise(node)
            return []
        if isinstance(stmt, ast.Break):
            node = self._node(stmt, ctx, frontier)
            if ctx.loops:
                ctx.loops[-1].break_frontier.append((node, "break"))
            return []
        if isinstance(stmt, ast.Continue):
            node = self._node(stmt, ctx, frontier)
            if ctx.loops:
                self.cfg.link(node, ctx.loops[-1].continue_node, "continue")
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are opaque single statements here; their own
            # bodies get their own CFGs when a rule asks for them.
            node = self._node(stmt, ctx, frontier)
            return [(node, "next")]
        node = self._node(stmt, ctx, frontier)
        return [(node, "next")]

    # -- compound statements ---------------------------------------------------

    def _if(self, stmt: ast.If, frontier: Frontier, ctx: _Ctx) -> Frontier:
        test = self._node(stmt, ctx, frontier)
        _, then_out = self._block(stmt.body, [(test, "true")], ctx)
        if stmt.orelse:
            _, else_out = self._block(stmt.orelse, [(test, "false")], ctx)
            return then_out + else_out
        return then_out + [(test, "false")]

    def _loop(self, stmt: ast.stmt, frontier: Frontier, ctx: _Ctx) -> Frontier:
        test = self._node(stmt, ctx, frontier)
        loop = _LoopCtx(test)
        ctx.loops.append(loop)
        try:
            _, body_out = self._block(stmt.body, [(test, "true")], ctx)
        finally:
            ctx.loops.pop()
        for src, _kind in body_out:
            self.cfg.link(src, test, "back")
        after: Frontier = list(loop.break_frontier)
        if stmt.orelse:
            # while/else and for/else: the else suite runs on normal loop
            # exit (test false), and a break skips it.
            _, else_out = self._block(stmt.orelse, [(test, "false")], ctx)
            return after + else_out
        return after + [(test, "false")]

    def _return(self, stmt: ast.Return, frontier: Frontier, ctx: _Ctx) -> Frontier:
        node = self._node(stmt, ctx, frontier)
        route: Frontier = [(node, "return")]
        # An early return runs every enclosing finally, innermost first; each
        # gets its own labeled copy so the provenance stays visible.
        for finalbody, fctx in reversed(ctx.finally_stack):
            saved = self._suffix
            self._suffix = self._fresh_suffix()
            try:
                route = self._stmts(finalbody, route, fctx.child())
            finally:
                self._suffix = saved
            route = [(src, "return") for src, _kind in route]
        self._connect(route, self.cfg.exit)
        return []

    def _route_raise(self, node: CFGNode) -> None:
        """Explicit ``raise``: into the handlers, or straight off the end."""
        targets = [
            target for target, kind in node.succ if kind == "except"
        ]
        if not targets:
            self.cfg.link(node, self.cfg.exit, "raise")
        # (the implicit "except" edges added by _node already cover the
        # in-try case; an explicit raise adds no normal-completion edge)

    def _try(self, stmt: ast.Try, frontier: Frontier, ctx: _Ctx) -> Frontier:
        outer_ctx = ctx
        has_finally = bool(stmt.finalbody)

        # Exceptional finally copy: entered from a raising statement, exits
        # by re-raising (to the outer handlers, or off the function).
        exc_entry: Optional[CFGNode] = None
        if has_finally:
            saved = self._suffix
            self._suffix = self._fresh_suffix()
            try:
                exc_entry, exc_out = self._block(
                    stmt.finalbody, [], outer_ctx.child()
                )
            finally:
                self._suffix = saved
            for src, _kind in exc_out:
                if outer_ctx.except_targets:
                    for target in outer_ctx.except_targets:
                        self.cfg.link(src, target, "raise")
                else:
                    self.cfg.link(src, self.cfg.exit, "raise")

        # Handlers: their own raises route through this try's finally (the
        # exceptional copy), then outward.
        handler_ctx = outer_ctx.child()
        if has_finally:
            handler_ctx.except_targets = [exc_entry]
            handler_ctx.finally_stack = outer_ctx.finally_stack + [
                (stmt.finalbody, outer_ctx)
            ]
        handler_entries: List[CFGNode] = []
        handler_out: Frontier = []
        for handler in stmt.handlers:
            entry, out = self._block(handler.body, [], handler_ctx.child())
            if entry is not None:
                handler_entries.append(entry)
            handler_out.extend(out)

        # Body: any statement may raise into the handlers (and, when a
        # finally exists, into its exceptional copy for non-matching kinds).
        body_ctx = outer_ctx.child()
        body_ctx.except_targets = list(handler_entries)
        if has_finally:
            body_ctx.except_targets.append(exc_entry)
            body_ctx.finally_stack = outer_ctx.finally_stack + [
                (stmt.finalbody, outer_ctx)
            ]
        _, body_out = self._block(stmt.body, frontier, body_ctx)
        if stmt.orelse:
            _, body_out = self._block(stmt.orelse, body_out, body_ctx)

        normal_in = body_out + handler_out
        if has_finally:
            _, out = self._block(stmt.finalbody, normal_in, outer_ctx.child())
            return out
        return normal_in


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of a function (or any node with a ``body``)."""
    return CFGBuilder().build(func)


# --------------------------------------------------------------------------
# reaching definitions


def assigned_names(node: ast.AST) -> Set[str]:
    """Names and dotted ``self``-rooted chains assigned in a header AST."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                out.update(_target_names(target))
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            out.update(_target_names(sub.target))
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    out.update(_target_names(item.optional_vars))
        elif isinstance(sub, ast.NamedExpr):
            out.update(_target_names(sub.target))
    return out


def attribute_chain(node: ast.AST) -> Optional[str]:
    """Dotted chain for ``a.b.c``-style expressions rooted at a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _target_names(target: ast.AST) -> Set[str]:
    out: Set[str] = set()
    if isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, ast.Attribute):
        chain = attribute_chain(target)
        if chain is not None:
            out.add(chain)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            out.update(_target_names(element))
    elif isinstance(target, ast.Starred):
        out.update(_target_names(target.value))
    elif isinstance(target, ast.Subscript):
        chain = attribute_chain(target.value)
        if chain is not None:
            out.add(chain)
    return out


Definition = Tuple[str, int]  # (variable, defining node index)


def reaching_definitions(cfg: CFG) -> Dict[int, Set[Definition]]:
    """Classic forward may-analysis over the statement-level CFG.

    Returns, per node index, the set of ``(variable, defining-node-index)``
    pairs that may reach the node's entry.  Variables are plain names and
    dotted attribute chains (``self.count``), matching
    :func:`assigned_names`.
    """
    gen: Dict[int, Set[Definition]] = {}
    for node in cfg.nodes:
        names: Set[str] = set()
        for header in node.header_ast():
            names.update(assigned_names(header))
        gen[node.index] = {(name, node.index) for name in names}

    in_sets: Dict[int, Set[Definition]] = {node.index: set() for node in cfg.nodes}
    out_sets: Dict[int, Set[Definition]] = {node.index: set() for node in cfg.nodes}
    work = list(cfg.nodes)
    while work:
        node = work.pop()
        new_in: Set[Definition] = set()
        for pred, _kind in node.pred:
            new_in |= out_sets[pred.index]
        killed = {name for name, _idx in gen[node.index]}
        new_out = {
            definition for definition in new_in if definition[0] not in killed
        } | gen[node.index]
        if new_in != in_sets[node.index] or new_out != out_sets[node.index]:
            in_sets[node.index] = new_in
            out_sets[node.index] = new_out
            for succ, _kind in node.succ:
                work.append(succ)
    return in_sets

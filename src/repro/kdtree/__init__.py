"""kd-trees: the space-partitioning index of §3.1.

:class:`~repro.kdtree.tree.KdTree` is the classic structure — a balanced
binary tree whose nodes carry axis-parallel rectangular cells, splitting on
the axes in round-robin order.  It serves two roles:

* the geometric skeleton that §3's transformation framework converts into
  the ORP-KW index (Theorem 1), and
* a classic orthogonal range-reporting structure, which is exactly the
  "structured only" naive solution of §1.
"""

from .tree import KdNode, KdTree

__all__ = ["KdNode", "KdTree"]

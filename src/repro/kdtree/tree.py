"""The kd-tree (§3.1).

Built on a (multi)set ``P`` of points in R^d:

* every node ``u`` carries a closed rectangular cell ``Δ_u`` covering all the
  points in its subtree;
* the root cell covers the whole space (here: a caller-supplied universe
  rectangle enclosing all data — equivalent for every query that matters,
  since only data points can be reported);
* an internal node at level ``ℓ`` splits its cell with an axis-parallel
  hyperplane orthogonal to axis ``ℓ mod d``, placed at the median of its
  points; the child cells touch only at the splitting hyperplane and are
  interior disjoint.

Splitting at the *index* median (rather than a value median) keeps the exact
balance invariant ``|P_u| <= ceil(|P|/2^level)`` even when coordinates repeat
— repeats are what the verbose set of §3.2 produces, so this matters.

The build uses ``numpy.argpartition`` per node, giving an
``O(|P| log |P|)``-time construction with C-speed partitioning.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..costmodel import CostCounter, ensure_counter
from ..errors import ValidationError
from ..geometry.rectangles import Rect


class KdNode:
    """One node of a kd-tree."""

    __slots__ = ("cell", "level", "axis", "split_value", "children", "indices", "size")

    def __init__(self, cell: Rect, level: int):
        self.cell = cell
        self.level = level
        self.axis: int = -1
        self.split_value: float = float("nan")
        self.children: List["KdNode"] = []
        #: point indices stored here (leaves only).
        self.indices: Optional[np.ndarray] = None
        #: |P_u| — number of points in the subtree.
        self.size: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


class KdTree:
    """kd-tree over ``points`` (an ``(n, d)`` array; duplicates allowed)."""

    def __init__(
        self,
        points: Sequence[Sequence[float]],
        leaf_size: int = 1,
        root_cell: Optional[Rect] = None,
    ):
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ValidationError("points must be a non-empty (n, d) array")
        if leaf_size < 1:
            raise ValidationError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = arr
        self.dim = arr.shape[1]
        self.leaf_size = leaf_size
        if root_cell is None:
            lo = arr.min(axis=0) - 1.0
            hi = arr.max(axis=0) + 1.0
            root_cell = Rect(lo, hi)
        if root_cell.dim != self.dim:
            raise ValidationError("root cell dimensionality mismatch")
        self.root = self._build(np.arange(arr.shape[0]), root_cell, 0)

    # -- construction ------------------------------------------------------------

    def _build(self, indices: np.ndarray, cell: Rect, level: int) -> KdNode:
        node = KdNode(cell, level)
        node.size = int(indices.shape[0])
        if node.size <= self.leaf_size:
            node.indices = indices
            return node
        axis = level % self.dim
        mid = node.size // 2
        coords = self.points[indices, axis]
        order = np.argpartition(coords, mid)
        indices = indices[order]
        split_value = float(self.points[indices[mid], axis])
        # Clamp into the cell (repeated coordinates can push the median onto
        # the cell boundary; the split degenerates gracefully).
        split_value = min(max(split_value, cell.lo[axis]), cell.hi[axis])
        node.axis = axis
        node.split_value = split_value
        left_cell, right_cell = cell.split(axis, split_value)
        node.children = [
            self._build(indices[:mid], left_cell, level + 1),
            self._build(indices[mid:], right_cell, level + 1),
        ]
        return node

    # -- traversal ---------------------------------------------------------------

    def nodes(self) -> Iterator[KdNode]:
        """Yield every node, pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def height(self) -> int:
        """Maximum level over all nodes."""
        return max(node.level for node in self.nodes())

    def subtree_indices(self, node: KdNode) -> np.ndarray:
        """All point indices stored under ``node``."""
        if node.is_leaf:
            return node.indices
        parts = [self.subtree_indices(child) for child in node.children]
        return np.concatenate(parts) if parts else np.empty(0, dtype=int)

    # -- classic range reporting (the "structured only" baseline) -----------------

    def range_query(
        self, rect: Rect, counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Classic orthogonal range reporting: indices of points in ``rect``.

        Standard kd-tree analysis: ``O(n^(1-1/d) + OUT)`` node visits for a
        d-dimensional tree on ``n`` points.
        """
        counter = ensure_counter(counter)
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.charge("nodes_visited")
            if not rect.intersects(node.cell):
                continue
            if node.is_leaf:
                for idx in node.indices:
                    counter.charge("objects_examined")
                    if rect.contains_point(self.points[idx]):
                        result.append(int(idx))
                continue
            if rect.covers(node.cell):
                # Covered subtree: every point qualifies; pay output cost only.
                for idx in self.subtree_indices(node):
                    counter.charge("objects_examined")
                    result.append(int(idx))
                continue
            stack.extend(node.children)
        return result

    def region_query(
        self, region, counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Report indices of points inside an arbitrary convex ``region``.

        ``region`` is any object of :mod:`repro.geometry.regions`.  Used by
        the "structured only" baselines for non-rectangular predicates.
        """
        counter = ensure_counter(counter)
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.charge("nodes_visited")
            if not region.intersects(node.cell):
                continue
            if region.covers(node.cell):
                for idx in self.subtree_indices(node):
                    counter.charge("objects_examined")
                    result.append(int(idx))
                continue
            if node.is_leaf:
                for idx in node.indices:
                    counter.charge("objects_examined")
                    if region.contains_point(self.points[idx]):
                        result.append(int(idx))
                continue
            stack.extend(node.children)
        return result

    def count_crossing_nodes(self, rect: Rect) -> int:
        """Number of nodes whose cells intersect but are not covered by ``rect``.

        This is ``|T_cross|`` of §3.3, the quantity Figure 1's compaction
        argument bounds; exposed for the F1 benchmark.
        """
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not rect.intersects(node.cell) or rect.covers(node.cell):
                continue
            count += 1
            stack.extend(node.children)
        return count

"""A static interval tree: O(log n + OUT) interval-overlap reporting.

For RR-KW with d = 1 (temporal keyword search), the honest "structured only"
baseline is not a scan but the classical interval tree [24, §10.1]: a
balanced ternary recursion on the median point, with the intervals stabbing
the median stored twice, sorted by left and by right endpoint.

Overlap query with ``[lo, hi]``: at each node, report the center intervals
overlapping the window (prefix of a sorted list — output-proportional), then
recurse into the side subtrees the window touches.  A *stabbing* query
(point ``x``) is the degenerate window ``[x, x]``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .costmodel import CostCounter, ensure_counter
from .errors import ValidationError

Interval = Tuple[float, float]


class _Node:
    __slots__ = ("center", "by_left", "by_right", "left", "right")

    def __init__(self, center: float):
        self.center = center
        #: intervals containing center, sorted by left endpoint ascending.
        self.by_left: List[Tuple[float, float, int]] = []
        #: the same intervals, sorted by right endpoint descending.
        self.by_right: List[Tuple[float, float, int]] = []
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class IntervalTree:
    """Static interval tree over closed intervals ``[lo, hi]``."""

    def __init__(self, intervals: Sequence[Interval]):
        if not len(intervals):
            raise ValidationError("an interval tree needs at least one interval")
        items = []
        for index, (lo, hi) in enumerate(intervals):
            if lo > hi:
                raise ValidationError(f"interval {index} is inverted: [{lo}, {hi}]")
            items.append((float(lo), float(hi), index))
        self.count = len(items)
        self.root = self._build(items)

    def _build(self, items: List[Tuple[float, float, int]]) -> Optional[_Node]:
        if not items:
            return None
        endpoints = sorted(
            [lo for lo, _hi, _i in items] + [hi for _lo, hi, _i in items]
        )
        center = endpoints[len(endpoints) // 2]
        node = _Node(center)
        left_items: List[Tuple[float, float, int]] = []
        right_items: List[Tuple[float, float, int]] = []
        for item in items:
            lo, hi, _index = item
            if hi < center:
                left_items.append(item)
            elif lo > center:
                right_items.append(item)
            else:
                node.by_left.append(item)
        node.by_left.sort(key=lambda it: it[0])
        node.by_right = sorted(node.by_left, key=lambda it: -it[1])
        # Degenerate guard: if nothing stabs the center (cannot happen with
        # the median-of-endpoints choice) the recursion still shrinks.
        node.left = self._build(left_items)
        node.right = self._build(right_items)
        return node

    # -- queries ----------------------------------------------------------------

    def overlap_query(
        self, lo: float, hi: float, counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Indices of intervals intersecting the closed window ``[lo, hi]``."""
        if lo > hi:
            raise ValidationError(f"inverted query window [{lo}, {hi}]")
        counter = ensure_counter(counter)
        result: List[int] = []
        node = self.root
        stack = [node]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            counter.charge("nodes_visited")
            if hi < node.center:
                # Window entirely left of center: center intervals overlap
                # iff their left endpoint <= hi (prefix of by_left).
                for c_lo, _c_hi, index in node.by_left:
                    counter.charge("comparisons")
                    if c_lo > hi:
                        break
                    counter.charge("objects_examined")
                    result.append(index)
                stack.append(node.left)
            elif lo > node.center:
                # Window entirely right of center: overlap iff right
                # endpoint >= lo (prefix of by_right).
                for _c_lo, c_hi, index in node.by_right:
                    counter.charge("comparisons")
                    if c_hi < lo:
                        break
                    counter.charge("objects_examined")
                    result.append(index)
                stack.append(node.right)
            else:
                # Window contains the center: every center interval overlaps.
                for _c_lo, _c_hi, index in node.by_left:
                    counter.charge("objects_examined")
                    result.append(index)
                stack.append(node.left)
                stack.append(node.right)
        return result

    def stabbing_query(
        self, x: float, counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Indices of intervals containing the point ``x``."""
        return self.overlap_query(x, x, counter)

    @property
    def space_units(self) -> int:
        """Stored interval copies (2 per interval) plus nodes."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            total += 1 + 2 * len(node.by_left)
            stack.append(node.left)
            stack.append(node.right)
        return total

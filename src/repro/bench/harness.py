"""Sweep runner and slope fitting.

Each experiment sweeps a size parameter (usually ``N``), measures cost
units, and checks the *shape* of the paper's bound two ways:

* the ratio ``measured / predicted`` should stay (roughly) constant across
  the sweep, and
* the fitted log-log slope of ``measured`` vs ``N`` should approximate the
  bound's exponent (``1 - 1/k`` for the non-output term, etc.).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..errors import ValidationError


@dataclass
class SweepResult:
    """Rows collected by :func:`run_sweep`, with derived statistics."""

    parameter: str
    rows: List[Dict[str, float]] = field(default_factory=list)

    def column(self, name: str) -> List[float]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def slope(self, x_column: str, y_column: str) -> float:
        """Fitted log-log slope of ``y`` against ``x``."""
        return fit_loglog_slope(self.column(x_column), self.column(y_column))

    def ratio_spread(self, num_column: str, den_column: str) -> float:
        """max/min of the per-row ratio (1.0 = perfectly proportional)."""
        ratios = [
            row[num_column] / row[den_column]
            for row in self.rows
            if row[den_column] > 0
        ]
        if not ratios:
            return math.inf
        return max(ratios) / min(ratios)


def run_sweep(
    parameter: str,
    values: Sequence[float],
    measure: Callable[[float], Dict[str, float]],
) -> SweepResult:
    """Evaluate ``measure`` at each value; collect one row per value."""
    result = SweepResult(parameter)
    for value in values:
        row = {parameter: float(value)}
        row.update(measure(value))
        result.rows.append(row)
    return result


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Zero or negative measurements are clamped to 1 (a cost of zero units is
    "constant" for slope purposes).
    """
    pairs = [(math.log(max(x, 1.0)), math.log(max(y, 1.0))) for x, y in zip(xs, ys)]
    if len(pairs) < 2:
        raise ValidationError("need at least two points to fit a slope")
    n = len(pairs)
    mean_x = sum(p[0] for p in pairs) / n
    mean_y = sum(p[1] for p in pairs) / n
    sxx = sum((p[0] - mean_x) ** 2 for p in pairs)
    if sxx == 0:
        raise ValidationError("degenerate sweep: all x values equal")
    sxy = sum((p[0] - mean_x) * (p[1] - mean_y) for p in pairs)
    return sxy / sxx


def geometric_sizes(start: int, stop: int, steps: int) -> List[int]:
    """``steps`` sizes geometrically spaced in ``[start, stop]``."""
    if steps < 2 or start < 1 or stop <= start:
        raise ValidationError("need steps >= 2 and 1 <= start < stop")
    ratio = (stop / start) ** (1.0 / (steps - 1))
    return [int(round(start * ratio**i)) for i in range(steps)]


def predicted_query_bound(n: int, k: int, out: int) -> float:
    """The headline bound ``N^(1-1/k) * (1 + OUT^(1/k))`` (Theorem 1)."""
    return n ** (1.0 - 1.0 / k) * (1.0 + out ** (1.0 / k))

"""Benchmark harness: sweeps, slope fitting, and table rendering.

The experiments (see DESIGN.md §3) measure RAM-model cost units against the
paper's predicted bounds; this package provides the shared machinery —
running parameter sweeps, fitting log-log slopes, and printing the
tables/series that EXPERIMENTS.md records.
"""

from .harness import SweepResult, fit_loglog_slope, geometric_sizes, run_sweep
from .reporting import format_table, print_table

__all__ = [
    "SweepResult",
    "fit_loglog_slope",
    "geometric_sizes",
    "run_sweep",
    "format_table",
    "print_table",
]

"""ASCII table rendering for benchmark output.

Kept dependency-free so the benchmark scripts can print the exact
rows/series recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]], columns: Sequence[str] = None, title: str = ""
) -> str:
    """Render dict-rows as a fixed-width ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), max(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.rjust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Dict[str, object]], columns: Sequence[str] = None, title: str = ""
) -> None:
    """Print :func:`format_table` output (with a trailing blank line)."""
    print(format_table(rows, columns, title))
    print()

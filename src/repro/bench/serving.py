"""Async-serving benchmark core: fan-out wall-clock and mixed churn.

Importable machinery behind ``benchmarks/bench_async_serving.py`` and the
CLI's ``bench-serve`` subcommand.  Two experiments:

**Fan-out** (:func:`bench_fanout`).  A selective-rectangle workload is
served twice over the same sharded dataset — sequentially through
:class:`~repro.service.ShardedQueryEngine` and concurrently through
:class:`~repro.service.AsyncQueryEngine` — and wall-clock is compared.
Unlike the cost-unit experiments, wall-clock is the honest metric here: the
concurrent path wins by (a) pruning shards whose bounding box misses the
query rectangle (work the sequential loop performs to keep its pinned trace
shape) and (b) overlapping the remaining shard queries on the worker pool,
which on a multi-core host adds true parallelism.  The per-row ``pruned``
column reports how much of the win came from pruning, so single-core runs
stay interpretable.  Both paths are asserted result-identical per query.

**Mixed churn** (:func:`bench_mixed`).  Sustained concurrent read/write
traffic over :class:`~repro.service.AsyncDynamicIndex`: one writer streams
``insert_many``/``delete`` batches while several readers query snapshots.
Reported: operations completed, epochs published, and the isolation check —
every read must return a result set equal to some epoch's live set (zero
violations is an assertion, not a statistic).
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..dataset import Dataset
from ..core.dynamic import DynamicOrpKw
from ..geometry.rectangles import Rect
from ..service import AsyncDynamicIndex, AsyncQueryEngine, ShardedQueryEngine
from ..workloads.generators import WorkloadConfig, zipf_dataset

__all__ = ["bench_fanout", "bench_mixed", "selective_workload", "run_serving_bench"]


def selective_workload(
    num_queries: int, seed: int, side: float = 0.12, vocabulary: int = 24
) -> List[Tuple[Rect, List[int]]]:
    """Small-rectangle queries (most miss most shards' bounding boxes)."""
    rng = random.Random(seed)
    workload = []
    for _ in range(num_queries):
        a = rng.uniform(0.0, 1.0 - side)
        c = rng.uniform(0.0, 1.0 - side)
        words = rng.sample(range(1, vocabulary + 1), 2)
        workload.append((Rect((a, c), (a + side, c + side)), words))
    return workload


def _dataset(num_objects: int, seed: int = 7, vocabulary: int = 24) -> Dataset:
    return zipf_dataset(
        WorkloadConfig(
            num_objects=num_objects, vocabulary=vocabulary, seed=seed
        )
    )


def bench_fanout(
    num_objects: int,
    num_queries: int,
    shards: int,
    budget: Optional[int],
    seed: int = 7,
    repeats: int = 3,
) -> Dict[str, Any]:
    """One row: sequential vs concurrent fan-out over the same workload.

    Caches are disabled on both engines so both serve every query; the
    best-of-``repeats`` wall-clock is reported for each path.  Raises if
    any query's result set differs between the two paths.
    """
    dataset = _dataset(num_objects, seed=seed)
    workload = selective_workload(num_queries, seed=seed + 1)
    seq_engine = ShardedQueryEngine(dataset, shards=shards, cache_size=0)
    conc_engine = ShardedQueryEngine(dataset, shards=shards, cache_size=0)

    seq_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        seq_results = seq_engine.batch(workload, budget=budget)
        seq_s = min(seq_s, time.perf_counter() - start)

    async def concurrent() -> List:
        async with AsyncQueryEngine(conc_engine) as engine:
            return await engine.batch(workload, budget=budget)

    conc_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        conc_results = asyncio.run(concurrent())
        conc_s = min(conc_s, time.perf_counter() - start)

    for (rect, words), seq, conc in zip(workload, seq_results, conc_results):
        if seq != conc:
            raise AssertionError(
                f"fan-out mismatch for rect={rect.lo}->{rect.hi} words={words}"
            )

    slices = [
        s
        for record in conc_engine.records
        if record.strategy == "sharded"
        for s in record.shards
    ]
    pruned = sum(1 for s in slices if s["strategy"] == "pruned")
    return {
        "shards": shards,
        "budget": budget if budget is not None else "inf",
        "queries": num_queries,
        "seq_ms": round(seq_s * 1000.0, 1),
        "conc_ms": round(conc_s * 1000.0, 1),
        "speedup": round(seq_s / conc_s, 2) if conc_s > 0 else float("inf"),
        "pruned_pct": round(100.0 * pruned / max(len(slices), 1), 1),
    }


def bench_mixed(
    num_objects: int = 600,
    batches: int = 20,
    batch_size: int = 25,
    readers: int = 4,
    seed: int = 11,
) -> Dict[str, Any]:
    """Sustained mixed read/write churn over the snapshot-isolated index.

    The writer publishes ``batches`` insert batches (deleting a sample of
    earlier objects between batches) while ``readers`` query loops pin
    snapshots concurrently.  Every read is checked against the epoch
    protocol: result sets must be free of duplicates and consistent with
    the pinned epoch's live set — an isolation violation raises.
    """
    rng = random.Random(seed)
    index = DynamicOrpKw(k=2, dim=2)
    # Every object carries {1, 2}: a [1, 2] query over the full rectangle
    # reports exactly the live set, which is the isolation oracle below.
    oids = index.insert_many(
        [(rng.random(), rng.random()) for _ in range(num_objects)],
        [frozenset({1, 2, rng.randint(3, 6)}) for _ in range(num_objects)],
    )
    live = set(oids)
    reads = 0
    start = time.perf_counter()

    async def writer(adi: AsyncDynamicIndex) -> None:
        for _ in range(batches):
            new = await adi.insert_many(
                [(rng.random(), rng.random()) for _ in range(batch_size)],
                [frozenset({1, 2, rng.randint(3, 6)}) for _ in range(batch_size)],
            )
            live.update(new)
            for oid in rng.sample(sorted(live), min(batch_size // 2, len(live))):
                await adi.delete(oid)
                live.discard(oid)
            await asyncio.sleep(0)

    async def reader(adi: AsyncDynamicIndex, done: asyncio.Event) -> None:
        nonlocal reads
        while not done.is_set():
            snapshot = adi.pin()
            found = snapshot.query(Rect.full(2), [1, 2])
            got = [obj.oid for obj in found]
            if len(got) != len(set(got)):
                raise AssertionError("duplicate oids in a snapshot read")
            if set(got) != set(snapshot.live_oids()):
                raise AssertionError("snapshot read inconsistent with its epoch")
            reads += 1
            await asyncio.sleep(0)

    async def drive() -> int:
        async with AsyncDynamicIndex(index) as adi:
            done = asyncio.Event()
            tasks = [
                asyncio.ensure_future(reader(adi, done)) for _ in range(readers)
            ]
            await writer(adi)
            done.set()
            await asyncio.gather(*tasks)
            return adi.stats()["published_epoch"]

    epoch = asyncio.run(drive())
    elapsed = time.perf_counter() - start
    return {
        "readers": readers,
        "writes": batches,
        "reads": reads,
        "epochs": epoch,
        "live_objects": len(index),
        "elapsed_ms": round(elapsed * 1000.0, 1),
        "violations": 0,  # a violation raises inside the readers
    }


def run_serving_bench(
    quick: bool = False,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """The full (or quick smoke) configuration; returns (fanout rows, mixed)."""
    if quick:
        rows = [
            bench_fanout(300, 20, shards, budget=256, repeats=1)
            for shards in (2, 4)
        ]
        mixed = bench_mixed(num_objects=120, batches=5, batch_size=10)
    else:
        rows = [
            bench_fanout(2000, 80, shards, budget)
            for shards in (2, 4, 8)
            for budget in (None, 512)
        ]
        mixed = bench_mixed()
    return rows, mixed

"""Text-to-keyword mapping: from real documents to the paper's integer docs.

The paper's model takes documents as sets of integers; real systems start
from text.  This module supplies the missing layer: a tokenizer, a
:class:`Vocabulary` with stable integer ids (with stopword and frequency
filtering), and a one-call builder that turns ``(point, text)`` pairs into
an indexable :class:`~repro.dataset.Dataset`.

>>> vocab, data = dataset_from_texts(
...     [(120.0, 8.5), (90.0, 7.0)],
...     ["Pool and free parking", "pool pets parking"],
... )
>>> sorted(vocab.decode(data[0].doc)) == ['free', 'parking', 'pool']
True
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from .dataset import Dataset, make_objects
from .errors import ValidationError

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)*")

#: A minimal English stopword list; callers supply domain lists as needed.
DEFAULT_STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or the to with".split()
)


def tokenize(text: str) -> List[str]:
    """Lowercase word tokens (hyphenated compounds stay together).

    >>> tokenize("Pet-Friendly rooms, FREE parking!")
    ['pet-friendly', 'rooms', 'free', 'parking']
    """
    return _TOKEN_RE.findall(text.lower())


class Vocabulary:
    """Token <-> keyword-id mapping with stable, dense positive ids."""

    def __init__(self, tokens: Sequence[str]):
        if not tokens:
            raise ValidationError("a vocabulary needs at least one token")
        if len(set(tokens)) != len(tokens):
            raise ValidationError("duplicate tokens in vocabulary")
        self._id_of: Dict[str, int] = {
            token: i + 1 for i, token in enumerate(tokens)
        }
        self._token_of: Dict[int, str] = {
            i + 1: token for i, token in enumerate(tokens)
        }

    @classmethod
    def build(
        cls,
        token_lists: Iterable[Sequence[str]],
        min_count: int = 1,
        max_fraction: float = 1.0,
        stopwords: Iterable[str] = DEFAULT_STOPWORDS,
    ) -> "Vocabulary":
        """Build from tokenized documents with frequency filtering.

        ``min_count`` drops rare tokens; ``max_fraction`` drops tokens
        appearing in more than that fraction of documents (near-stopwords);
        ``stopwords`` are always dropped.  Ids are assigned by descending
        document frequency, ties broken alphabetically, so keyword 1 is
        always the most common retained token.
        """
        if not 0.0 < max_fraction <= 1.0:
            raise ValidationError("max_fraction must be in (0, 1]")
        stop = set(stopwords)
        doc_freq: Dict[str, int] = {}
        num_docs = 0
        for tokens in token_lists:
            num_docs += 1
            for token in set(tokens):
                if token not in stop:
                    doc_freq[token] = doc_freq.get(token, 0) + 1
        if num_docs == 0:
            raise ValidationError("no documents supplied")
        kept = [
            token
            for token, freq in doc_freq.items()
            if freq >= min_count and freq <= max_fraction * num_docs
        ]
        if not kept:
            raise ValidationError(
                "filtering removed every token; relax min_count/max_fraction"
            )
        kept.sort(key=lambda t: (-doc_freq[t], t))
        return cls(kept)

    def __len__(self) -> int:
        return len(self._id_of)

    def __contains__(self, token: str) -> bool:
        return token in self._id_of

    def id_of(self, token: str) -> int:
        """Keyword id of ``token`` (raises for unknown tokens)."""
        try:
            return self._id_of[token]
        except KeyError as exc:
            raise ValidationError(f"unknown token {token!r}") from exc

    def token_of(self, keyword: int) -> str:
        """Token of keyword id ``keyword``."""
        try:
            return self._token_of[keyword]
        except KeyError as exc:
            raise ValidationError(f"unknown keyword id {keyword}") from exc

    def encode(self, tokens: Iterable[str]) -> FrozenSet[int]:
        """Keyword-id set of the known tokens (unknown tokens are dropped)."""
        return frozenset(
            self._id_of[token] for token in tokens if token in self._id_of
        )

    def decode(self, keywords: Iterable[int]) -> Set[str]:
        """Tokens of the given keyword ids."""
        return {self.token_of(k) for k in keywords}

    def query_keywords(self, *tokens: str) -> List[int]:
        """Keyword ids for a query; unknown tokens raise (fail loudly)."""
        return [self.id_of(token) for token in tokens]


def dataset_from_texts(
    points: Sequence[Sequence[float]],
    texts: Sequence[str],
    min_count: int = 1,
    max_fraction: float = 1.0,
    stopwords: Iterable[str] = DEFAULT_STOPWORDS,
) -> Tuple[Vocabulary, Dataset]:
    """Tokenize, build a vocabulary, and assemble the Dataset in one call.

    Objects whose documents become empty after filtering get a reserved
    out-of-vocabulary keyword (id ``len(vocab) + 1``) so the Dataset
    invariant (non-empty documents) holds without dropping rows.
    """
    if len(points) != len(texts):
        raise ValidationError(f"{len(points)} points but {len(texts)} texts")
    token_lists = [tokenize(text) for text in texts]
    vocab = Vocabulary.build(
        token_lists,
        min_count=min_count,
        max_fraction=max_fraction,
        stopwords=stopwords,
    )
    oov = len(vocab) + 1
    docs = []
    for tokens in token_lists:
        encoded = set(vocab.encode(tokens))
        docs.append(encoded if encoded else {oov})
    return vocab, Dataset(make_objects(points, docs))

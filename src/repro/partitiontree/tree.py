"""The partition tree (Appendix D.1).

Structurally identical to the kd-tree — a space-partitioning tree with
``|P_u| = O(n / f^level)`` — but with constant fanout ``f >= 2``, convex
cells, and a pluggable :mod:`partition scheme <repro.partitiontree.schemes>`.
Besides serving as the skeleton for the SP-KW/LC-KW transformation, it
answers classic (keyword-free) region reporting queries: the "structured
only" naive solution of §1 for linear-constraint queries.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..costmodel import CostCounter, ensure_counter
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from .cells import ConvexCell
from .schemes import KdBoxScheme, WillardScheme


class PartitionNode:
    """One node of a partition tree."""

    __slots__ = ("cell", "level", "children", "indices", "size")

    def __init__(self, cell, level: int):
        self.cell = cell
        self.level = level
        self.children: List["PartitionNode"] = []
        self.indices: Optional[np.ndarray] = None
        self.size: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


class PartitionTree:
    """Partition tree over ``points`` with a pluggable split scheme."""

    def __init__(
        self,
        points: Sequence[Sequence[float]],
        scheme=None,
        leaf_size: int = 1,
        root_cell=None,
    ):
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ValidationError("points must be a non-empty (n, d) array")
        if leaf_size < 1:
            raise ValidationError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = arr
        self.dim = arr.shape[1]
        self.leaf_size = leaf_size
        if scheme is None:
            scheme = KdBoxScheme()
        self.scheme = scheme
        if root_cell is None:
            lo = arr.min(axis=0) - 1.0
            hi = arr.max(axis=0) + 1.0
            root_cell = Rect(lo, hi)
            if isinstance(scheme, WillardScheme):
                root_cell = ConvexCell.from_rect(root_cell)
        self.root = self._build(np.arange(arr.shape[0]), root_cell, 0)

    # -- construction ------------------------------------------------------------

    def _build(self, indices: np.ndarray, cell, level: int) -> PartitionNode:
        node = PartitionNode(cell, level)
        node.size = int(indices.shape[0])
        if node.size <= self.leaf_size:
            node.indices = indices
            return node
        parts = self.scheme.split(self.points, indices, cell, level)
        live = [(idx, c) for idx, c in parts if idx.shape[0] > 0]
        if len(live) <= 1:
            # The scheme could not divide the points (all coincident, say);
            # store them as a fat leaf rather than recurse forever.
            node.indices = indices
            return node
        node.children = [
            self._build(child_indices, child_cell, level + 1)
            for child_indices, child_cell in live
        ]
        return node

    # -- traversal ---------------------------------------------------------------

    def nodes(self) -> Iterator[PartitionNode]:
        """Yield every node, pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def height(self) -> int:
        """Maximum level over all nodes."""
        return max(node.level for node in self.nodes())

    def subtree_indices(self, node: PartitionNode) -> np.ndarray:
        """All point indices stored under ``node``."""
        if node.is_leaf:
            return node.indices
        parts = [self.subtree_indices(child) for child in node.children]
        return np.concatenate(parts) if parts else np.empty(0, dtype=int)

    # -- classic region reporting (the "structured only" baseline) ----------------

    def region_query(
        self, region, counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Report indices of points inside ``region`` (keyword-free).

        ``region`` is any object of :mod:`repro.geometry.regions`.
        """
        counter = ensure_counter(counter)
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.charge("nodes_visited")
            if not region.intersects(node.cell):
                continue
            if region.covers(node.cell):
                for idx in self.subtree_indices(node):
                    counter.charge("objects_examined")
                    result.append(int(idx))
                continue
            if node.is_leaf:
                for idx in node.indices:
                    counter.charge("objects_examined")
                    if region.contains_point(self.points[idx]):
                        result.append(int(idx))
                continue
            stack.extend(node.children)
        return result

    def count_crossing_nodes(self, region) -> int:
        """Number of nodes whose cells intersect but are not covered by ``region``."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not region.intersects(node.cell) or region.covers(node.cell):
                continue
            count += 1
            stack.extend(node.children)
        return count

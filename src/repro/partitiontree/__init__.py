"""Partition trees: the space-partitioning index of Appendix D.1.

A partition tree stores ``N`` points in a tree of constant fanout whose
nodes carry interior-disjoint convex cells; the paper plugs Chan's optimal
partition tree [13] into the §3 framework to obtain the SP-KW/LC-KW indexes
of Theorem 12.  Chan's construction relies on multilevel cuttings that are
(to our knowledge) unimplemented anywhere; this package provides the same
*interface* with two practical schemes (see DESIGN.md for the substitution
argument):

* :class:`~repro.partitiontree.schemes.KdBoxScheme` — round-robin median
  hyperplane splits with axis-box cells (exact ``O(n^(1-1/d))`` crossing for
  axis-parallel hyperplanes);
* :class:`~repro.partitiontree.schemes.WillardScheme` — Willard-style 4-way
  planar partitions with polygon cells and a genuine ``O(n^(log4 3))``
  crossing bound for arbitrary lines (d = 2 only).
"""

from .cells import ConvexCell
from .schemes import KdBoxScheme, WillardScheme
from .tree import PartitionNode, PartitionTree

__all__ = [
    "ConvexCell",
    "KdBoxScheme",
    "WillardScheme",
    "PartitionNode",
    "PartitionTree",
]

"""Partition schemes: how a node's points and cell are divided among children.

A scheme's :meth:`split` receives the node's point indices, its cell, and its
level, and returns ``(child_indices, child_cell)`` pairs such that

* every index lands in exactly one child,
* the child cells are interior disjoint with the parent cell as union, and
* every child's points lie inside its (closed) cell.

See the package docstring and DESIGN.md for the substitution of Chan's
optimal partition tree by these practical schemes.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ..errors import GeometryError, ValidationError
from ..geometry.halfspaces import HalfSpace
from ..geometry.rectangles import Rect
from .cells import ConvexCell

SplitResult = List[Tuple[np.ndarray, object]]


class KdBoxScheme:
    """Round-robin median hyperplane splits with axis-box (Rect) cells.

    The resulting tree is a kd-tree in disguise; its cells are boxes rather
    than simplices, which the framework permits (it only needs convex,
    interior-disjoint cells).  For axis-parallel query facets the crossing
    number is the classic ``O(n^(1-1/d))``; for oblique facets it is a
    heuristic (see DESIGN.md).
    """

    fanout = 2

    def split(
        self, points: np.ndarray, indices: np.ndarray, cell: Rect, level: int
    ) -> SplitResult:
        if not isinstance(cell, Rect):
            raise ValidationError("KdBoxScheme requires Rect cells")
        dim = points.shape[1]
        axis = level % dim
        mid = indices.shape[0] // 2
        order = np.argpartition(points[indices, axis], mid)
        ordered = indices[order]
        value = float(points[ordered[mid], axis])
        value = min(max(value, cell.lo[axis]), cell.hi[axis])
        left_cell, right_cell = cell.split(axis, value)
        return [(ordered[:mid], left_cell), (ordered[mid:], right_cell)]


class WillardScheme:
    """Willard-style 4-way planar partition (d = 2 only).

    Each node is split by two lines: a median line ``L1`` orthogonal to a
    round-robin axis, and a single second line ``L2`` that simultaneously
    (approximately) bisects both halves — an approximate ham-sandwich cut
    found by scanning a grid of directions.  Because ``L2`` is one line, any
    query line can intersect at most 3 of the 4 child cells, giving the
    classic recurrence ``T(n) = 3 T(n/4) + O(1)`` and an
    ``O(n^(log4 3)) ≈ O(n^0.79)`` crossing bound for arbitrary lines.

    When no direction balances the second half acceptably (degenerate point
    sets), the node falls back to a plain median split into two children.
    """

    fanout = 4

    def __init__(self, num_directions: int = 16, balance_limit: float = 0.8):
        if num_directions < 2:
            raise ValidationError("need at least 2 candidate directions")
        self.balance_limit = balance_limit
        self._directions = [
            (math.cos(math.pi * i / num_directions), math.sin(math.pi * i / num_directions))
            for i in range(num_directions)
        ]

    def split(
        self, points: np.ndarray, indices: np.ndarray, cell: ConvexCell, level: int
    ) -> SplitResult:
        if points.shape[1] != 2:
            raise ValidationError("WillardScheme only supports d = 2")
        axis = level % 2
        order = np.argsort(points[indices, axis], kind="stable")
        ordered = indices[order]
        mid = ordered.shape[0] // 2
        first, second = ordered[:mid], ordered[mid:]
        value = float(points[ordered[mid], axis])
        h_low = HalfSpace.axis_upper(2, axis, value)
        h_high = HalfSpace.axis_lower(2, axis, value)

        line2 = self._ham_sandwich(points, first, second)
        if line2 is None:
            return self._fallback(cell, h_low, h_high, first, second)

        direction, offset = line2
        h2_low = HalfSpace(direction, offset)
        h2_high = h2_low.complement()
        children: SplitResult = []
        halves = [(first, h_low), (second, h_high)]
        for part, h1 in halves:
            if part.shape[0] == 0:
                continue
            proj = points[part] @ np.asarray(direction)
            below = part[proj <= offset]
            above = part[proj > offset]
            for sub, h2 in ((below, h2_low), (above, h2_high)):
                if sub.shape[0] == 0:
                    continue
                try:
                    child_cell = cell.clip(h1).clip(h2)
                except GeometryError:
                    return self._fallback(cell, h_low, h_high, first, second)
                children.append((sub, child_cell))
        if not children:
            return self._fallback(cell, h_low, h_high, first, second)
        return children

    def _ham_sandwich(
        self, points: np.ndarray, first: np.ndarray, second: np.ndarray
    ):
        """Approximate simultaneous bisector of the two index sets.

        Returns ``((dx, dy), offset)`` or ``None`` when every direction
        leaves the second set too imbalanced.
        """
        if first.shape[0] == 0 or second.shape[0] == 0:
            return None
        best = None
        best_score = math.inf
        pts_first = points[first]
        pts_second = points[second]
        for direction in self._directions:
            vec = np.asarray(direction)
            proj_first = pts_first @ vec
            offset = float(np.partition(proj_first, proj_first.shape[0] // 2)[
                proj_first.shape[0] // 2
            ])
            proj_second = pts_second @ vec
            frac = float(np.count_nonzero(proj_second <= offset)) / proj_second.shape[0]
            score = abs(frac - 0.5)
            if score < best_score:
                best_score = score
                best = (direction, offset)
        if best is None or best_score > self.balance_limit - 0.5:
            return None
        return best

    @staticmethod
    def _fallback(
        cell: ConvexCell,
        h_low: HalfSpace,
        h_high: HalfSpace,
        first: np.ndarray,
        second: np.ndarray,
    ) -> SplitResult:
        children: SplitResult = []
        for part, h1 in ((first, h_low), (second, h_high)):
            if part.shape[0] == 0:
                continue
            try:
                children.append((part, cell.clip(h1)))
            except GeometryError:
                children.append((part, cell))
        return children

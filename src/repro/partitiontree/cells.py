"""Convex polytope cells for partition trees.

A cell is stored three ways at once — vertex list, facet halfspaces, and
bounding box — because the query machinery needs all three: vertex lists for
"is the cell covered by the query region" tests, halfspaces + bounding box
for LP-based "does the cell intersect the query region" tests, and the
bounding box alone as a cheap rejection filter.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import GeometryError
from ..geometry.halfspaces import EPS, HalfSpace, rect_to_halfspaces
from ..geometry.rectangles import Rect


class ConvexCell:
    """A bounded convex polytope cell."""

    __slots__ = ("vertices", "halfspaces", "lo", "hi", "dim")

    def __init__(
        self,
        vertices: Sequence[Sequence[float]],
        halfspaces: Sequence[HalfSpace],
    ):
        verts = tuple(tuple(float(c) for c in v) for v in vertices)
        if not verts:
            raise GeometryError("a cell needs at least one vertex")
        self.vertices: Tuple[Tuple[float, ...], ...] = verts
        self.halfspaces: Tuple[HalfSpace, ...] = tuple(halfspaces)
        self.dim = len(verts[0])
        self.lo = tuple(min(v[i] for v in verts) for i in range(self.dim))
        self.hi = tuple(max(v[i] for v in verts) for i in range(self.dim))

    @classmethod
    def from_rect(cls, rect: Rect) -> "ConvexCell":
        """Wrap a bounded rectangle as a convex cell."""
        return cls(rect.vertices(), rect_to_halfspaces(rect.lo, rect.hi))

    def contains_point(self, point: Sequence[float]) -> bool:
        """Closed membership test."""
        return all(h.contains(point) for h in self.halfspaces)

    def boundary_contains(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies on the cell boundary (footnote 7)."""
        if not self.contains_point(point):
            return False
        return any(h.on_boundary(point) for h in self.halfspaces)

    def clip(self, halfspace: HalfSpace) -> "ConvexCell":
        """Intersect a 2-D polygon cell with a halfplane (Sutherland–Hodgman).

        Only implemented for d = 2 (the Willard scheme); box cells in higher
        dimensions are split axis-parallel via :class:`Rect` instead.
        """
        if self.dim != 2:
            raise GeometryError("polygon clipping is only implemented for d = 2")
        verts = _order_polygon(self.vertices)
        clipped: List[Tuple[float, ...]] = []
        n = len(verts)
        for i in range(n):
            current, nxt = verts[i], verts[(i + 1) % n]
            cur_in = halfspace.contains(current)
            nxt_in = halfspace.contains(nxt)
            if cur_in:
                clipped.append(current)
            if cur_in != nxt_in:
                clipped.append(_line_crossing(current, nxt, halfspace))
        if not clipped:
            raise GeometryError("clipping produced an empty cell")
        return ConvexCell(_dedupe(clipped), self.halfspaces + (halfspace,))

    def __repr__(self) -> str:
        return f"ConvexCell(dim={self.dim}, nverts={len(self.vertices)})"


def _line_crossing(
    a: Tuple[float, ...], b: Tuple[float, ...], halfspace: HalfSpace
) -> Tuple[float, ...]:
    """Intersection of segment ``ab`` with the halfplane boundary."""
    va = halfspace.value(a) - halfspace.bound
    vb = halfspace.value(b) - halfspace.bound
    denom = va - vb
    if abs(denom) < 1e-300:
        return a
    t = va / denom
    t = min(max(t, 0.0), 1.0)
    return tuple(a[i] + t * (b[i] - a[i]) for i in range(len(a)))


def _order_polygon(
    vertices: Sequence[Tuple[float, ...]],
) -> List[Tuple[float, ...]]:
    """Order 2-D vertices counter-clockwise around their centroid."""
    import math

    cx = sum(v[0] for v in vertices) / len(vertices)
    cy = sum(v[1] for v in vertices) / len(vertices)
    return sorted(vertices, key=lambda v: math.atan2(v[1] - cy, v[0] - cx))


def _dedupe(vertices: Sequence[Tuple[float, ...]]) -> List[Tuple[float, ...]]:
    """Drop near-duplicate vertices (keeps the polygon well-formed)."""
    result: List[Tuple[float, ...]] = []
    for vert in vertices:
        scale = max(1.0, max(abs(c) for c in vert))
        if not any(
            all(abs(a - b) <= EPS * scale for a, b in zip(vert, prev))
            for prev in result
        ):
            result.append(vert)
    return result

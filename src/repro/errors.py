"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch every library failure with a single ``except`` clause while still
distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ValidationError(ReproError, ValueError):
    """Raised when input data or query parameters are malformed.

    Examples: an object with an empty document, a rectangle whose lower bound
    exceeds its upper bound, a query issuing fewer keywords than the ``k`` an
    index was built for.
    """


class BudgetExceeded(ReproError):
    """Raised internally when an operation budget runs out.

    The nearest-neighbour drivers (Corollaries 4 and 7 of the paper) probe a
    reporting index with a hard operation budget of
    ``O(N^(1-1/k) * t^(1/k))`` units; if the probe does not finish within the
    budget, the candidate count must be at least ``t`` and the probe is
    abandoned.  This exception implements the "terminate the query manually"
    step of the paper's footnote 4.

    The serving layer (:class:`repro.service.QueryEngine`) treats it the same
    way: a strategy that blows its budget is abandoned and the next-cheapest
    strategy takes over, so the exception never escapes to engine callers —
    it appears in the per-query trace as a recorded fallback instead.
    """

    def __init__(self, spent: int, budget: int):
        super().__init__(f"operation budget exceeded: spent {spent} > budget {budget}")
        self.spent = spent
        self.budget = budget


class GeometryError(ReproError):
    """Raised when a geometric computation cannot proceed.

    Examples: vertex enumeration on an empty polytope, triangulating a
    degenerate (lower-dimensional) polytope without a containing box.
    """


class BuildError(ReproError):
    """Raised when an index cannot be constructed from the given dataset."""

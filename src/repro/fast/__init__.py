"""Vectorized numpy execution backend (the cost-model path is the oracle).

See DESIGN.md section 12: :class:`ArrayStore` lays a dataset out as
contiguous numpy arrays, :class:`VectorizedBackend` executes the
keywords-only strategy over it, and the batched filter helpers back the
``backend="vectorized"`` post-filters in ``LcKwIndex`` / ``SrpKwIndex``.
Results are byte-identical to the instrumented scalar path by construction
and by differential test (``tests/fast/test_backend_oracle.py``).
"""

from .arrays import (
    ArrayStore,
    ball_mask,
    halfspace_mask,
    points_array,
    region_mask,
)
from .backend import BACKENDS, ENGINE_BACKENDS, VectorizedBackend, validate_backend

__all__ = [
    "ArrayStore",
    "BACKENDS",
    "ENGINE_BACKENDS",
    "VectorizedBackend",
    "ball_mask",
    "halfspace_mask",
    "points_array",
    "region_mask",
    "validate_backend",
]

"""Contiguous-array data layout for the vectorized execution backend.

The cost-model implementations walk Python objects one at a time; this
module lays the same data out as numpy arrays so the hot loops — posting
-list intersection, rectangle containment, halfspace and ball post-filters —
run as a handful of vectorized passes.

Correctness contract (the oracle contract, DESIGN.md section 12): every
predicate here mirrors its scalar counterpart *operation for operation*, so
a vectorized query returns the byte-identical result set:

* rectangle containment is the same closed ``lo <= p <= hi`` corner
  comparison as :meth:`~repro.geometry.rectangles.Rect.contains_point`;
* halfspace membership accumulates the dot product term by term in axis
  order (matching ``sum(c * x for ...)``'s left-to-right rounding) and uses
  the same relative-tolerance scale as
  :meth:`~repro.geometry.halfspaces.HalfSpace.contains`;
* the ball filter accumulates squared per-axis differences in axis order
  and applies SRP-KW's exact ``1e-9 * max(1.0, r^2)`` tolerance.

Cost contract: charges are *batch-granularity* — one
``charge(category, n)`` per vectorized pass — but the per-category totals
equal the scalar path's unit-at-a-time totals exactly (the intersection
even reproduces the scalar path's short-circuit: a candidate eliminated by
an earlier keyword is never charged a probe for a later one).  Under a
budget the raise/no-raise outcome therefore coincides with the scalar
path's; only the recorded overshoot past the budget can differ, because a
batch charge lands whole.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset
from ..geometry.halfspaces import EPS, HalfSpace
from ..geometry.rectangles import Rect


class ArrayStore:
    """Array mirror of a :class:`~repro.dataset.Dataset`.

    Holds the coordinates as one contiguous ``(n, d)`` float64 block (rows
    in ascending object-id order) and each posting list as a sorted int64
    array.  Built once per dataset and shared by every vectorized executor
    over it.
    """

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        ordered = sorted(dataset.objects, key=lambda obj: obj.oid)
        self.oids = np.array([obj.oid for obj in ordered], dtype=np.int64)
        if ordered:
            self.coords = np.array(
                [obj.point for obj in ordered], dtype=np.float64
            )
        else:
            self.coords = np.zeros((0, dataset.dim or 1), dtype=np.float64)
        postings: Dict[int, List[int]] = {}
        for obj in ordered:
            for word in obj.doc:
                postings.setdefault(word, []).append(obj.oid)
        self.postings: Dict[int, np.ndarray] = {
            word: np.array(sorted(plist), dtype=np.int64)
            for word, plist in postings.items()
        }

    def frequency(self, keyword: int) -> int:
        """``|D(w)|`` (mirrors :meth:`InvertedIndex.frequency`)."""
        plist = self.postings.get(keyword)
        return 0 if plist is None else int(plist.size)

    def rows(self, oids: np.ndarray) -> np.ndarray:
        """Row indexes into :attr:`coords` for known object ids."""
        return np.searchsorted(self.oids, oids)

    # -- vectorized passes ------------------------------------------------------

    def intersect(
        self, keywords: Sequence[int], counter: Optional[CostCounter] = None
    ) -> np.ndarray:
        """``D(w1..wk)`` as a sorted int64 oid array.

        Mirrors :meth:`InvertedIndex.matching_objects` exactly: the same
        shortest-list-first order (stable sort by frequency), the same
        charge totals (one ``objects_examined`` per shortest-list entry, one
        ``structure_probes`` per membership test actually performed — a
        candidate already eliminated by an earlier keyword is never probed
        for a later one), and the same result order (ascending oid).
        """
        counter = ensure_counter(counter)
        words = list(keywords)
        if any(self.postings.get(w) is None for w in words):
            return np.empty(0, dtype=np.int64)
        words.sort(key=self.frequency)
        shortest = self.postings[words[0]]
        counter.charge("objects_examined", int(shortest.size))
        alive = np.ones(shortest.size, dtype=bool)
        for word in words[1:]:
            live = int(alive.sum())
            if live == 0:
                break
            counter.charge("structure_probes", live)
            alive &= np.isin(shortest, self.postings[word], assume_unique=True)
        return shortest[alive]

    def rect_mask(self, oids: np.ndarray, rect: Rect) -> np.ndarray:
        """Closed containment mask over the points with the given oids.

        The batched rank-space containment test: both corner comparisons run
        as whole-column vector predicates over the contiguous coordinate
        block.  Infinite bounds behave exactly as in the scalar test.
        """
        pts = self.coords[self.rows(oids)]
        lo = np.asarray(rect.lo, dtype=np.float64)
        hi = np.asarray(rect.hi, dtype=np.float64)
        return ((pts >= lo) & (pts <= hi)).all(axis=1)


def halfspace_mask(points: np.ndarray, halfspace: HalfSpace) -> np.ndarray:
    """Batched :meth:`HalfSpace.contains` over an ``(n, d)`` point block.

    The dot product and the tolerance scale are accumulated axis by axis in
    the same order as the scalar genexp sums, so every boundary-adjacent
    point classifies identically.
    """
    n = points.shape[0]
    values = np.zeros(n, dtype=np.float64)
    scale = np.zeros(n, dtype=np.float64)
    for axis, coeff in enumerate(halfspace.coeffs):
        term = coeff * points[:, axis]
        values += term
        np.maximum(scale, np.abs(term), out=scale)
    np.maximum(scale, max(abs(halfspace.bound), 1.0), out=scale)
    return values <= halfspace.bound + EPS * scale


def region_mask(
    points: np.ndarray, halfspaces: Sequence[HalfSpace]
) -> np.ndarray:
    """Conjunction of :func:`halfspace_mask` over all constraints.

    An empty constraint list keeps every point (matching the scalar
    ``all(...)`` over an empty sequence).
    """
    mask = np.ones(points.shape[0], dtype=bool)
    for halfspace in halfspaces:
        mask &= halfspace_mask(points, halfspace)
    return mask


def ball_mask(
    points: np.ndarray, center: Sequence[float], radius_squared: float
) -> np.ndarray:
    """Batched SRP-KW exact-distance post-filter.

    Accumulates squared per-axis differences in axis order and applies the
    identical ``1e-9 * max(1.0, r^2)`` relative tolerance as
    :meth:`SrpKwIndex.query_squared`'s scalar loop.
    """
    dist_sq = np.zeros(points.shape[0], dtype=np.float64)
    for axis, coord in enumerate(center):
        diff = points[:, axis] - coord
        dist_sq += diff**2
    return dist_sq <= radius_squared + 1e-9 * max(1.0, radius_squared)


def points_array(objects: Sequence) -> np.ndarray:
    """``(n, d)`` float64 coordinate block for a candidate object list."""
    if not objects:
        return np.zeros((0, 1), dtype=np.float64)
    return np.array([obj.point for obj in objects], dtype=np.float64)

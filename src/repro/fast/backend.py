"""The vectorized execution backend and backend-name validation.

:class:`VectorizedBackend` is a drop-in executor for the keywords-only
strategy (posting-list intersection + geometric post-filter): same
signature, same validation, same result order, same charged cost totals as
:class:`~repro.core.baselines.KeywordsOnlyIndex` — but the hot loops run as
numpy passes over an :class:`~repro.fast.arrays.ArrayStore`.  The cost-model
path stays the correctness oracle: ``tests/fast/test_backend_oracle.py``
pins byte-identical result sets across the differential sweep matrix.

Traced runs emit spans like every other component — one span per vectorized
pass, carrying batch-granularity charges — so the leaf-sum == CostCounter
invariant holds for fast-path queries too.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_nonempty_keywords
from ..errors import ValidationError
from ..geometry.halfspaces import HalfSpace
from ..geometry.rectangles import Rect
from ..trace import span_for
from .arrays import ArrayStore, region_mask

#: Executor backends: the instrumented object-at-a-time reference path and
#: the numpy fast path it is differentially checked against.
BACKENDS = ("cost_model", "vectorized")

#: Engine-level selection adds ``auto``: pick per query from collected
#: selectivity statistics (see ``QueryEngine._resolve_backend``).
ENGINE_BACKENDS = BACKENDS + ("auto",)


def validate_backend(name: str, allow_auto: bool = False) -> str:
    """Validate a backend name; returns it for assignment chaining."""
    allowed = ENGINE_BACKENDS if allow_auto else BACKENDS
    if name not in allowed:
        raise ValidationError(
            f"unknown backend {name!r} (expected one of {allowed})"
        )
    return name


class VectorizedBackend:
    """Numpy executor for intersection + batched geometric post-filters.

    Parameters
    ----------
    dataset:
        The corpus; the executor reports the same
        :class:`~repro.dataset.KeywordObject` instances as the scalar path.
    store:
        An optional pre-built :class:`ArrayStore` to share between
        executors over the same dataset.
    """

    name = "vectorized"

    def __init__(self, dataset: Dataset, store: Optional[ArrayStore] = None):
        self.dataset = dataset
        self.store = store if store is not None else ArrayStore(dataset)

    def query_rect(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Vectorized ``KeywordsOnlyIndex.query_rect``.

        One ``comparisons`` unit per intersection candidate (exactly the
        scalar post-filter's charge), batched into a single charge inside
        the filter span.
        """
        counter = ensure_counter(counter)
        words = validate_nonempty_keywords(keywords)
        with span_for(counter, "intersect", "fast", keywords=len(words)):
            oids = self.store.intersect(words, counter)
        with span_for(counter, "rect-filter", "fast", candidates=int(oids.size)):
            if oids.size:
                counter.charge("comparisons", int(oids.size))
                oids = oids[self.store.rect_mask(oids, rect)]
        return [self.dataset[int(oid)] for oid in oids]

    def query_halfspaces(
        self,
        halfspaces: Sequence[HalfSpace],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Vectorized intersection + halfspace-conjunction post-filter."""
        counter = ensure_counter(counter)
        words = validate_nonempty_keywords(keywords)
        with span_for(counter, "intersect", "fast", keywords=len(words)):
            oids = self.store.intersect(words, counter)
        with span_for(counter, "region-filter", "fast", candidates=int(oids.size)):
            if oids.size:
                counter.charge("comparisons", int(oids.size))
                pts = self.store.coords[self.store.rows(oids)]
                oids = oids[region_mask(pts, halfspaces)]
        return [self.dataset[int(oid)] for oid in oids]

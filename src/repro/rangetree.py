"""A classic 2-D range tree: the textbook structured-only alternative.

§2 notes that dropping the keyword component of every problem leaves
"classical [problems] in computational geometry [that] have been well
understood" [3, 16].  The kd-tree gives ``O(√n + OUT)`` orthogonal range
reporting; the *range tree* trades space for time — ``O(n log n)`` space,
``O(log² n + OUT)`` query — and is the other canonical point on that curve.
It serves here as a second structured-only baseline and as a reference
implementation of the space/time trade-off the paper's Table-1 bounds are
implicitly compared against.

Structure: a balanced BST over x-ranks; every node stores its subtree's
points as a y-sorted array.  A query decomposes the x-interval into
``O(log n)`` canonical subtrees and binary-searches each associated array.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple

from .costmodel import CostCounter, ensure_counter
from .errors import ValidationError
from .geometry.rectangles import Rect


class _Node:
    __slots__ = ("x_lo", "x_hi", "split", "left", "right", "by_y")

    def __init__(self, x_lo: float, x_hi: float):
        self.x_lo = x_lo
        self.x_hi = x_hi
        self.split: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        #: subtree points sorted by (y, index): tuples (y, x, index).
        self.by_y: List[Tuple[float, float, int]] = []


class RangeTree2D:
    """Static 2-D range tree with y-sorted associated arrays."""

    def __init__(self, points: Sequence[Sequence[float]]):
        if not len(points):
            raise ValidationError("a range tree needs at least one point")
        if any(len(p) != 2 for p in points):
            raise ValidationError("RangeTree2D requires 2-D points")
        self.count = len(points)
        # Sort by (x, index) once; build recursively over the sorted order.
        order = sorted(range(self.count), key=lambda i: (points[i][0], i))
        entries = [
            (float(points[i][0]), float(points[i][1]), i) for i in order
        ]
        self.root = self._build(entries)

    def _build(self, entries: List[Tuple[float, float, int]]) -> _Node:
        node = _Node(entries[0][0], entries[-1][0])
        node.by_y = sorted((y, x, i) for x, y, i in entries)
        if len(entries) > 1:
            mid = len(entries) // 2
            node.split = entries[mid][0]
            node.left = self._build(entries[:mid])
            node.right = self._build(entries[mid:])
        return node

    def range_query(
        self, rect: Rect, counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Indices of points inside the closed rectangle ``rect``.

        ``O(log² n + OUT)``: canonical-subtree decomposition on x, binary
        search on y inside each associated array.
        """
        if rect.dim != 2:
            raise ValidationError("query rectangle must be 2-D")
        counter = ensure_counter(counter)
        x_lo, x_hi = rect.lo[0], rect.hi[0]
        y_lo, y_hi = rect.lo[1], rect.hi[1]
        result: List[int] = []

        def report(node: _Node) -> None:
            counter.charge("comparisons", 2)
            start = bisect_left(node.by_y, (y_lo, float("-inf"), -1))
            stop = bisect_right(node.by_y, (y_hi, float("inf"), self.count))
            for idx in range(start, stop):
                counter.charge("objects_examined")
                _y, x, original = node.by_y[idx]
                # x containment guaranteed for canonical nodes; the leaf
                # fringe re-checks below.
                result.append(original)

        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.charge("nodes_visited")
            if node.x_hi < x_lo or x_hi < node.x_lo:
                continue
            if x_lo <= node.x_lo and node.x_hi <= x_hi:
                report(node)
                continue
            if node.left is None:
                # Leaf straddling the boundary: exact check.
                counter.charge("objects_examined")
                y, x, original = node.by_y[0]
                if x_lo <= x <= x_hi and y_lo <= y <= y_hi:
                    result.append(original)
                continue
            stack.append(node.left)
            stack.append(node.right)
        return result

    @property
    def space_units(self) -> int:
        """Total associated-array entries (Θ(n log n))."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += len(node.by_y)
            if node.left is not None:
                stack.append(node.left)
                stack.append(node.right)
        return total

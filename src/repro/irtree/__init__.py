"""The system community's index: an IR-tree, for empirical comparison.

§2 of the paper surveys two decades of spatial-keyword indexes — IR-trees
[42], inverted quadtrees [52], etc. — that are "empirically efficient" but
"do not have interesting theoretical guarantees".  To reproduce that framing
we implement the canonical member of the family:

* :class:`~repro.irtree.rtree.RTree` — an STR bulk-loaded R-tree (the
  spatial substrate), and
* :class:`~repro.irtree.irtree.IrTree` — the R-tree with per-node keyword
  summaries, pruning a subtree when its MBR misses the query range *or* its
  keyword set misses a query keyword.

The E1 benchmark shows exactly the paper's story: on clustered, correlated
("real-looking") data the IR-tree is excellent; on the adversarial
disjoint-keyword instance its pruning never fires and it degrades to Θ(N),
while the paper's index stays at O(N^(1-1/k)).
"""

from .rtree import RTree
from .irtree import IrTree

__all__ = ["RTree", "IrTree"]

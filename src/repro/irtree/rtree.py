"""An STR bulk-loaded R-tree.

Sort-Tile-Recursive (STR) packing: sort entries by the first coordinate,
cut into vertical slabs of ~sqrt(n/B) leaves each, sort each slab by the
second coordinate, pack runs of ``B`` entries per leaf; repeat one level up
until a single root remains.  Bulk loading suits this library — all the
paper's indexes are static — and produces well-clustered MBRs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..errors import ValidationError
from ..geometry.rectangles import Rect


class RTreeNode:
    """One R-tree node: an MBR plus children (internal) or entry ids (leaf)."""

    __slots__ = ("mbr", "children", "entry_ids")

    def __init__(self, mbr: Rect):
        self.mbr = mbr
        self.children: List["RTreeNode"] = []
        self.entry_ids: List[int] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _mbr_of(rects: Sequence[Rect]) -> Rect:
    dim = rects[0].dim
    lo = tuple(min(r.lo[axis] for r in rects) for axis in range(dim))
    hi = tuple(max(r.hi[axis] for r in rects) for axis in range(dim))
    return Rect(lo, hi)


class RTree:
    """Static R-tree over rectangles (points are degenerate rectangles)."""

    def __init__(self, rectangles: Sequence[Rect], fanout: int = 16):
        if not rectangles:
            raise ValidationError("an R-tree needs at least one entry")
        if fanout < 2:
            raise ValidationError(f"fanout must be >= 2, got {fanout}")
        dims = {rect.dim for rect in rectangles}
        if len(dims) != 1:
            raise ValidationError(f"mixed entry dimensionalities: {sorted(dims)}")
        self.fanout = fanout
        self.entries: List[Rect] = list(rectangles)
        self.dim = dims.pop()
        leaves = self._pack_leaves()
        self.root = self._build_up(leaves)

    @classmethod
    def from_points(cls, points: Sequence[Sequence[float]], fanout: int = 16) -> "RTree":
        """Build over points (stored as degenerate rectangles)."""
        rects = [Rect(p, p) for p in points]
        return cls(rects, fanout=fanout)

    # -- STR bulk load -------------------------------------------------------------

    def _pack_leaves(self) -> List[RTreeNode]:
        order = sorted(
            range(len(self.entries)),
            key=lambda i: tuple(
                (self.entries[i].lo[axis] + self.entries[i].hi[axis]) / 2
                for axis in range(self.dim)
            ),
        )
        num_leaves = math.ceil(len(order) / self.fanout)
        if self.dim >= 2:
            slab_count = max(1, math.ceil(math.sqrt(num_leaves)))
            slab_size = math.ceil(len(order) / slab_count)
            pieces = [
                order[i : i + slab_size] for i in range(0, len(order), slab_size)
            ]
            order = []
            for piece in pieces:
                piece.sort(
                    key=lambda i: (
                        (self.entries[i].lo[1] + self.entries[i].hi[1]) / 2
                    )
                )
                order.extend(piece)
        leaves = []
        for start in range(0, len(order), self.fanout):
            ids = order[start : start + self.fanout]
            node = RTreeNode(_mbr_of([self.entries[i] for i in ids]))
            node.entry_ids = ids
            leaves.append(node)
        return leaves

    def _build_up(self, nodes: List[RTreeNode]) -> RTreeNode:
        while len(nodes) > 1:
            nodes.sort(key=lambda n: tuple(n.mbr.lo))
            parents = []
            for start in range(0, len(nodes), self.fanout):
                group = nodes[start : start + self.fanout]
                parent = RTreeNode(_mbr_of([n.mbr for n in group]))
                parent.children = group
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # -- queries -------------------------------------------------------------------

    def range_query(
        self, rect: Rect, counter: Optional[CostCounter] = None
    ) -> List[int]:
        """Ids of entries whose rectangles intersect ``rect``."""
        counter = ensure_counter(counter)
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.charge("nodes_visited")
            if not rect.intersects(node.mbr):
                continue
            if node.is_leaf:
                for entry_id in node.entry_ids:
                    counter.charge("objects_examined")
                    if rect.intersects(self.entries[entry_id]):
                        result.append(entry_id)
            else:
                stack.extend(node.children)
        return result

    def height(self) -> int:
        """Number of levels."""
        node, levels = self.root, 1
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def node_count(self) -> int:
        """Total nodes."""
        count, stack = 0, [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

"""The IR-tree: an R-tree with per-node keyword summaries [42].

Every node carries the set of keywords appearing anywhere in its subtree
(the practical distillation of the IR-tree's per-node inverted file: the
only information the boolean spatial-keyword query needs from it is "does
keyword w occur below here?").  A query prunes a subtree when the MBR
misses the query rectangle or any query keyword is absent from the node's
keyword set.

This is the §2 "system community" competitor: excellent on real-looking
correlated data — co-located objects share keywords, so keyword pruning
fires high in the tree — and Θ(N) on adversarial inputs where every node's
summary contains every keyword (no pruning possible), which is exactly why
the paper's worst-case guarantees matter.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from .rtree import RTree, RTreeNode


class IrTree:
    """Boolean spatial-keyword queries via an R-tree with keyword summaries."""

    def __init__(self, dataset: Dataset, fanout: int = 16):
        self.dataset = dataset
        self._tree = RTree.from_points(
            [obj.point for obj in dataset.objects], fanout=fanout
        )
        # entry id i refers to dataset.objects[i] (RTree.from_points keeps order).
        self._summaries = {}
        self._annotate(self._tree.root)

    def _annotate(self, node: RTreeNode) -> FrozenSet[int]:
        """Compute and cache the subtree keyword union, bottom-up."""
        keywords: Set[int] = set()
        if node.is_leaf:
            for entry_id in node.entry_ids:
                keywords.update(self.dataset.objects[entry_id].doc)
        else:
            for child in node.children:
                keywords.update(self._annotate(child))
        summary = frozenset(keywords)
        self._summaries[id(node)] = summary
        return summary

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Objects inside ``rect`` whose documents contain all ``keywords``."""
        counter = ensure_counter(counter)
        words = tuple(keywords)
        if not words:
            raise ValidationError("need at least one keyword")
        result: List[KeywordObject] = []
        stack = [self._tree.root]
        while stack:
            node = stack.pop()
            counter.charge("nodes_visited")
            if not rect.intersects(node.mbr):
                continue
            summary = self._summaries[id(node)]
            counter.charge("structure_probes", len(words))
            if not summary.issuperset(words):
                continue
            if node.is_leaf:
                for entry_id in node.entry_ids:
                    counter.charge("objects_examined")
                    obj = self.dataset.objects[entry_id]
                    if rect.contains_point(obj.point) and obj.doc.issuperset(words):
                        result.append(obj)
            else:
                stack.extend(node.children)
        return result

    @property
    def input_size(self) -> int:
        """``N``."""
        return self.dataset.total_doc_size

    @property
    def space_units(self) -> int:
        """Nodes plus the total size of the keyword summaries.

        Note the absence of a guarantee: a node summary can be as large as
        the vocabulary, and summed over O(N/B) nodes the space can reach
        Θ(N/B * W) — one of the reasons the IR-tree family has no
        interesting theoretical bounds (§2).
        """
        return self._tree.node_count() + sum(
            len(summary) for summary in self._summaries.values()
        )

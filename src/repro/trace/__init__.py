"""Cost-trace observability: hierarchical spans + a metrics registry.

See :mod:`repro.trace.span` for the span model (exact, timestamps-free
decomposition of :class:`~repro.costmodel.CostCounter` charges) and
:mod:`repro.trace.metrics` for per-engine counters/histograms.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    GLOBAL_REGISTRY,
    MetricCounter,
    MetricGauge,
    MetricHistogram,
    MetricsRegistry,
)
from .span import NULL_SPAN, SELF_SPAN, TraceSpan, Tracer, span_for

__all__ = [
    "DEFAULT_BUCKETS",
    "GLOBAL_REGISTRY",
    "MetricCounter",
    "MetricGauge",
    "MetricHistogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "SELF_SPAN",
    "TraceSpan",
    "Tracer",
    "span_for",
]

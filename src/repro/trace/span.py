"""Hierarchical cost spans: *where* a query spends its RAM-model units.

A flat :class:`~repro.costmodel.CostCounter` verifies cost *totals* against
the paper's bounds; a :class:`TraceSpan` tree additionally attributes every
charged unit to the component that spent it — which planner strategy, which
shard, which recursion level of the index descent.  The design constraints,
in order:

1. **Exactness.**  Every unit charged to a traced counter lands in exactly
   one span, so the span tree is a lossless decomposition of the counter's
   per-category totals (``root.subtree_costs() == counter.counts``, and
   after :meth:`Tracer.finish` the *leaf* spans alone sum to the totals —
   the property the trace-invariant tests enforce).
2. **Zero cost-model impact.**  Recording never charges anything: the same
   query traced and untraced produces identical counter totals.
3. **Near-zero overhead when disabled.**  Untraced counters pay one
   attribute load per charge (``self.tracer is None``); the instrumented
   index code guards every span push behind the same check.
4. **No wall clock.**  Spans carry cost-unit deltas, never timestamps —
   reprolint rule R5 audits this package together with the index packages.

Spans are *keyed*: pushing a span whose ``(name, component)`` already exists
under the current parent re-enters that span and accumulates into it.  A
recursive descent that pushes ``depth=ℓ`` at every visited node therefore
produces one span per level (a chain mirroring the recursion), not one span
per node.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Name of the synthetic leaf that absorbs an internal span's own charges
#: when the tree is finalized (see :meth:`Tracer.finish`).
SELF_SPAN = "(self)"


class TraceSpan:
    """One node of the cost-trace tree.

    Attributes are plain slots (read them directly): ``name`` and
    ``component`` identify the span, ``attrs`` holds small JSON-safe
    annotations, ``costs`` the per-category units charged while this span
    was innermost, and ``children`` the sub-spans in creation order.
    """

    __slots__ = ("name", "component", "attrs", "costs", "children", "_by_key")

    def __init__(self, name: str, component: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.component = component
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.costs: Dict[str, int] = {}
        self.children: List["TraceSpan"] = []
        self._by_key: Dict[Tuple[str, str], "TraceSpan"] = {}

    # -- construction ---------------------------------------------------------

    def child(
        self, name: str, component: str, attrs: Optional[Dict[str, Any]] = None
    ) -> "TraceSpan":
        """Get-or-create the keyed child ``(name, component)``."""
        key = (name, component)
        span = self._by_key.get(key)
        if span is None:
            span = TraceSpan(name, component, attrs)
            self._by_key[key] = span
            self.children.append(span)
        elif attrs:
            span.attrs.update(attrs)
        return span

    def add_cost(self, category: str, units: int) -> None:
        """Accumulate ``units`` of ``category`` into this span's own costs."""
        self.costs[category] = self.costs.get(category, 0) + units

    def graft(self, span: "TraceSpan") -> None:
        """Attach a finished span tree as a child of this span.

        Used by the concurrent fan-out: each shard records into its own
        :class:`Tracer` (tracers are single-stack and must not be shared
        across workers), and the finished per-shard roots are grafted under
        the fan-out span afterwards.  If a child with the same
        ``(name, component)`` key already exists, the grafted span's costs
        and subtrees are merged into it (keyed-span semantics).
        """
        key = (span.name, span.component)
        existing = self._by_key.get(key)
        if existing is None:
            self._by_key[key] = span
            self.children.append(span)
            return
        existing.attrs.update(span.attrs)
        for category, units in span.costs.items():
            existing.add_cost(category, units)
        for child in span.children:
            existing.graft(child)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceSpan":
        """Rebuild a span tree from a :meth:`to_dict` rendering."""
        span = cls(data["name"], data["component"], data.get("attrs") or None)
        span.costs = {
            category: int(units)
            for category, units in (data.get("costs") or {}).items()
        }
        for child_data in data.get("children", ()):
            child = cls.from_dict(child_data)
            span._by_key[(child.name, child.component)] = child
            span.children.append(child)
        return span

    # -- aggregation ----------------------------------------------------------

    @property
    def self_total(self) -> int:
        """Units charged directly to this span (children excluded)."""
        return sum(self.costs.values())

    def subtree_costs(self) -> Dict[str, int]:
        """Per-category units over this span and all descendants."""
        totals = dict(self.costs)
        for span in self.children:
            for category, units in span.subtree_costs().items():
                totals[category] = totals.get(category, 0) + units
        return totals

    def subtree_total(self) -> int:
        """Total units over this span and all descendants."""
        return sum(self.subtree_costs().values())

    def leaves(self) -> List["TraceSpan"]:
        """All childless descendants (including self when childless)."""
        if not self.children:
            return [self]
        found: List[TraceSpan] = []
        for span in self.children:
            found.extend(span.leaves())
        return found

    def leaf_costs(self) -> Dict[str, int]:
        """Per-category units summed over the leaf spans only.

        After :meth:`Tracer.finish` has materialized ``(self)`` leaves, this
        equals :meth:`subtree_costs` exactly — the load-bearing audit
        invariant (leaf costs sum to the counter totals).
        """
        totals: Dict[str, int] = {}
        for leaf in self.leaves():
            for category, units in leaf.costs.items():
                totals[category] = totals.get(category, 0) + units
        return totals

    def depth(self) -> int:
        """Height of this subtree (a childless span has depth 0)."""
        if not self.children:
            return 0
        return 1 + max(span.depth() for span in self.children)

    def find(self, name: str, component: Optional[str] = None) -> Optional["TraceSpan"]:
        """First span (pre-order) matching ``name`` (and ``component``)."""
        for span in self.walk():
            if span.name == name and (component is None or span.component == component):
                return span
        return None

    def walk(self) -> Iterator["TraceSpan"]:
        """Pre-order iteration over this subtree."""
        yield self
        for span in self.children:
            yield from span.walk()

    # -- rendering ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (serialize with ``sort_keys=True``)."""
        return {
            "name": self.name,
            "component": self.component,
            "attrs": dict(self.attrs),
            "costs": dict(self.costs),
            "total": self.subtree_total(),
            "children": [span.to_dict() for span in self.children],
        }

    def render(self) -> str:
        """Human-readable tree (one span per line, box-drawing indents)."""
        lines: List[str] = []
        self._render_into(lines, prefix="", is_last=True, is_root=True)
        return "\n".join(lines)

    def _render_into(
        self, lines: List[str], prefix: str, is_last: bool, is_root: bool = False
    ) -> None:
        parts = [f"{self.name} [{self.component}]", f"total={self.subtree_total()}"]
        if self.costs:
            detail = " ".join(
                f"{category}={units}" for category, units in sorted(self.costs.items())
            )
            parts.append(detail)
        if self.attrs:
            notes = " ".join(
                f"{key}={value}" for key, value in sorted(self.attrs.items())
            )
            parts.append(f"({notes})")
        text = "  ".join(parts)
        if is_root:
            lines.append(text)
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + text)
            child_prefix = prefix + ("   " if is_last else "│  ")
        for index, span in enumerate(self.children):
            span._render_into(lines, child_prefix, index == len(self.children) - 1)


class Tracer:
    """Span-stack recorder a :class:`~repro.costmodel.CostCounter` feeds.

    Attach with ``counter.tracer = tracer``: every subsequent
    ``counter.charge(category, units)`` lands in the innermost open span.
    Open spans with :meth:`span` (context manager) or the explicit
    :meth:`push`/:meth:`pop` pair in recursion hot paths.
    """

    __slots__ = ("root", "_stack", "_finished")

    def __init__(self, name: str = "query", component: str = "trace", **attrs: Any):
        self.root = TraceSpan(name, component, attrs or None)
        self._stack: List[TraceSpan] = [self.root]
        self._finished = False

    @property
    def current(self) -> TraceSpan:
        """The innermost open span (charges accumulate here)."""
        return self._stack[-1]

    def push(
        self, name: str, component: str, attrs: Optional[Dict[str, Any]] = None
    ) -> TraceSpan:
        """Open (or re-enter) the keyed child span of the current span."""
        span = self._stack[-1].child(name, component, attrs)
        self._stack.append(span)
        return span

    def pop(self) -> None:
        """Close the innermost span (the root is never popped)."""
        if len(self._stack) > 1:
            self._stack.pop()

    @contextmanager
    def span(self, name: str, component: str, **attrs: Any):
        """Context-managed :meth:`push`/:meth:`pop` (exception-safe)."""
        opened = self.push(name, component, attrs or None)
        try:
            yield opened
        finally:
            self.pop()

    def record(self, category: str, units: int) -> None:
        """Charge hook called by :meth:`CostCounter.charge`."""
        self._stack[-1].add_cost(category, units)

    def finish(self) -> TraceSpan:
        """Finalize the tree and return the root.

        Every internal span holding direct charges gets a synthetic
        ``(self)`` leaf child absorbing them, so that afterwards the *leaf*
        costs alone sum exactly to the recorded totals.  Idempotent.
        """
        if not self._finished:
            self._finished = True
            for span in list(self.root.walk()):
                if span.children and span.costs:
                    shadow = span.child(SELF_SPAN, span.component)
                    for category, units in span.costs.items():
                        shadow.add_cost(category, units)
                    span.costs = {}
        return self.root


class _NullSpan:
    """Do-nothing context manager for untraced fast paths."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


def span_for(counter, name: str, component: str, **attrs: Any):
    """Span context for ``counter``'s tracer, or a no-op when untraced.

    The single guard the instrumented index code uses: one attribute load
    when tracing is off, a real nested span when it is on.
    """
    tracer = getattr(counter, "tracer", None)
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, component, **attrs)

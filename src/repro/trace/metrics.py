"""Process-level metrics: named counters and histograms with snapshots.

The serving layer's :class:`~repro.service.engine.QueryEngine` owns one
:class:`MetricsRegistry` per engine by default — two engines never share
counters unless a caller passes the same registry to both (the opt-in for
process-wide aggregation; :data:`GLOBAL_REGISTRY` is a ready-made shared
instance).  Everything is JSON-safe and deterministic: snapshots are sorted
by instrument name, and histogram buckets are fixed at registration.

Like the rest of the trace layer, metrics carry *cost units and event
counts*, never wall-clock durations (reprolint R5 audits this package).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ValidationError

#: Default histogram bucket upper bounds: geometric in powers of 4, wide
#: enough for cost-unit distributions across the benchmark sweeps.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(4.0**i for i in range(11))  # 1 .. ~4.2M


class MetricCounter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValidationError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def snapshot(self) -> int:
        return self.value

    def reset(self) -> None:
        self.value = 0


class MetricGauge:
    """A point-in-time float value (structural probe readings, ratios).

    Unlike a counter, a gauge may move in either direction: ``set`` replaces
    the value outright.  Gauges carry *measured structural quantities* —
    crossing-node counts, fanout bounds, space-per-unit ratios — never
    wall-clock readings (reprolint R5 audits this package).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class MetricHistogram:
    """A fixed-bucket histogram of non-negative observations.

    An observation ``v`` lands in the first bucket whose upper bound
    satisfies ``v <= bound``; values above the last bound land in the
    overflow bucket.  Bucket counts are cumulative-free (one count per
    observation), and ``count``/``sum``/``min``/``max`` summarize the raw
    stream.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "overflow", "count", "total", "low", "high")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValidationError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(
                f"histogram {name} bucket bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        # Validate before any mutation: a rejected observation must leave
        # count/sum/min/max untouched, not half-recorded.
        if value < 0:
            raise ValidationError(
                f"histogram {self.name} observations must be >= 0, got {value}"
            )
        self.count += 1
        self.total += value
        self.low = value if self.low is None else min(self.low, value)
        self.high = value if self.high is None else max(self.high, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.overflow += 1

    def merge(self, other: "MetricHistogram") -> None:
        """Fold another histogram's observations into this one.

        Both histograms must have been registered with identical bucket
        bounds — merging differently-bucketed distributions silently
        misattributes counts, so a mismatch raises instead.  The other
        histogram is left untouched.  Used by the sharded exporter to roll
        per-shard registries into one fleet view.
        """
        if self.bounds != other.bounds:
            raise ValidationError(
                f"cannot merge histogram {other.name} into {self.name}: "
                f"bucket bounds differ ({len(other.bounds)} vs {len(self.bounds)})"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.overflow += other.overflow
        self.count += other.count
        self.total += other.total
        if other.low is not None:
            self.low = other.low if self.low is None else min(self.low, other.low)
        if other.high is not None:
            self.high = other.high if self.high is None else max(self.high, other.high)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": {
                # String keys keep the JSON stable; integral bounds render
                # without an exponent (le_1048576, not le_1.04858e+06).
                (f"le_{int(bound)}" if bound.is_integer() else f"le_{bound:g}"): count
                for bound, count in zip(self.bounds, self.bucket_counts)
            },
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.total,
            "min": self.low,
            "max": self.high,
        }

    def reset(self) -> None:
        self.bucket_counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.low = None
        self.high = None


class MetricsRegistry:
    """Named counters + histograms with get-or-create registration.

    ``counter(name)`` / ``histogram(name)`` register on first use and return
    the existing instrument afterwards; :meth:`reset` zeroes every value but
    keeps the registrations (an engine's instrument catalogue survives a
    stats reset); :meth:`snapshot` renders everything JSON-safe, sorted by
    name.
    """

    __slots__ = ("_counters", "_histograms", "_gauges")

    def __init__(self):
        self._counters: Dict[str, MetricCounter] = {}
        self._histograms: Dict[str, MetricHistogram] = {}
        self._gauges: Dict[str, MetricGauge] = {}

    def _check_unregistered(self, name: str, kind: str) -> None:
        for table, other in (
            (self._counters, "counter"),
            (self._histograms, "histogram"),
            (self._gauges, "gauge"),
        ):
            if other != kind and name in table:
                raise ValidationError(f"{name} is already registered as a {other}")

    def counter(self, name: str) -> MetricCounter:
        found = self._counters.get(name)
        if found is None:
            self._check_unregistered(name, "counter")
            found = MetricCounter(name)
            self._counters[name] = found
        return found

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> MetricHistogram:
        found = self._histograms.get(name)
        if found is None:
            self._check_unregistered(name, "histogram")
            found = MetricHistogram(name, buckets)
            self._histograms[name] = found
        return found

    def gauge(self, name: str) -> MetricGauge:
        found = self._gauges.get(name)
        if found is None:
            self._check_unregistered(name, "gauge")
            found = MetricGauge(name)
            self._gauges[name] = found
        return found

    def counter_names(self) -> List[str]:
        return sorted(self._counters)

    def histogram_names(self) -> List[str]:
        return sorted(self._histograms)

    def gauge_names(self) -> List[str]:
        return sorted(self._gauges)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments, JSON-safe, deterministically ordered."""
        return {
            "counters": {
                name: self._counters[name].snapshot()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].snapshot() for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def reset(self) -> None:
        """Zero every instrument; counter/histogram registrations are kept.

        Gauges are *dropped*, not zeroed: a gauge is a point-in-time reading
        (a structural probe value), and a lingering 0.0 in the next snapshot
        would read as a measured zero rather than "not probed yet".
        """
        for instrument in self._counters.values():
            instrument.reset()
        for instrument in self._histograms.values():
            instrument.reset()
        self._gauges.clear()


#: The opt-in process-wide registry: pass it to every engine that should
#: aggregate into one set of process metrics.
GLOBAL_REGISTRY = MetricsRegistry()

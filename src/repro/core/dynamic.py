"""Dynamization of the static indexes (extension; not in the paper).

The paper's indexes are static.  This module adds insertions and deletions
through the classic *logarithmic method* (Bentley–Saxe): maintain static
sub-indexes of doubling sizes; an insertion merges the carry chain of full
buckets into the next empty one (amortized ``O(log n)`` index rebuilds per
insertion); a query fans out over the ``O(log n)`` live buckets, which
multiplies the static query bound by ``O(log n)``.  Deletions are lazy
tombstones with a global rebuild once half the elements are dead, keeping
the structure within a constant factor of its minimal size.

Works for any static index exposing the ``(dataset, k)`` constructor and a
``query(region_args..., keywords, counter, ...)`` method; the concrete
:class:`DynamicOrpKw` wires it to :class:`~repro.core.orp_kw.OrpKwIndex`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from .orp_kw import OrpKwIndex


class _Bucket:
    """One static sub-index over a fixed object snapshot."""

    __slots__ = ("objects", "index")

    def __init__(self, objects: List[KeywordObject], k: int):
        self.objects = objects
        # Re-id objects locally (Dataset requires unique ids; globals may
        # collide after re-insertion) and keep the mapping positional.
        local = [
            KeywordObject(oid=i, point=obj.point, doc=obj.doc)
            for i, obj in enumerate(objects)
        ]
        self.index = OrpKwIndex(Dataset(local), k)

    def query(
        self,
        rect: Rect,
        words: Sequence[int],
        counter: CostCounter,
    ) -> List[KeywordObject]:
        found = self.index.query(rect, words, counter)
        return [self.objects[obj.oid] for obj in found]


class DynamicOrpKw:
    """Insert/delete-capable ORP-KW via the logarithmic method.

    Parameters
    ----------
    k:
        Number of query keywords (fixed, as for the static index).
    dim:
        Point dimensionality (validated on every insert).

    Query time: ``O(log n)`` static queries, i.e.
    ``O(N^(1-1/k)(1+OUT^(1/k)) * log n)``.  Insertion: amortized
    ``O(log n)`` rebuild participations per object.
    """

    def __init__(self, k: int, dim: int):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        if dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        self._buckets: List[Optional[_Bucket]] = []
        self._objects: Dict[int, KeywordObject] = {}
        self._tombstones: Set[int] = set()
        self._next_oid = 0

    # -- updates ---------------------------------------------------------------

    def _coerce_point(self, point: Sequence[float]) -> Tuple[float, ...]:
        """Validate an incoming point *before* any index state changes.

        Rejecting here (rather than relying on :class:`KeywordObject`) keeps
        updates atomic: a bad point cannot burn an object id or leave a bulk
        insert half-applied.  NaN in particular would make every later
        containment test silently inconsistent, so it must never reach a
        bucket.
        """
        coords = tuple(float(c) for c in point)
        if len(coords) != self.dim:
            raise ValidationError(
                f"point is {len(coords)}-dimensional, index is {self.dim}-dimensional"
            )
        for coord in coords:
            if not math.isfinite(coord):
                raise ValidationError(
                    f"point has a non-finite coordinate ({coord})"
                )
        return coords

    def insert(self, point: Sequence[float], doc) -> int:
        """Insert an object; returns its assigned id."""
        coords = self._coerce_point(point)
        oid = self._next_oid
        self._next_oid += 1
        obj = KeywordObject(oid=oid, point=coords, doc=frozenset(doc))
        self._objects[oid] = obj
        self._merge_in([obj])
        return oid

    def insert_many(self, points, docs) -> List[int]:
        """Bulk insert; cheaper than repeated :meth:`insert` for big batches.

        Atomic: every point is validated before the first object is created,
        so a malformed point anywhere in the batch leaves the index unchanged.
        """
        coerced = [self._coerce_point(point) for point in points]
        oids = []
        batch = []
        for coords, doc in zip(coerced, docs):
            oid = self._next_oid
            self._next_oid += 1
            obj = KeywordObject(oid=oid, point=coords, doc=frozenset(doc))
            self._objects[oid] = obj
            batch.append(obj)
            oids.append(oid)
        if batch:
            self._merge_in(batch)
        return oids

    def delete(self, oid: int) -> None:
        """Tombstone an object; physical removal happens at the next rebuild."""
        if oid not in self._objects:
            raise ValidationError(f"unknown object id {oid}")
        if oid in self._tombstones:
            raise ValidationError(f"object {oid} already deleted")
        self._tombstones.add(oid)
        if len(self._tombstones) * 2 >= len(self._objects):
            self._rebuild_all()

    def _merge_in(self, carry: List[KeywordObject]) -> None:
        level = 0
        while True:
            if level == len(self._buckets):
                self._buckets.append(None)
            bucket = self._buckets[level]
            if bucket is None and len(carry) <= (1 << level):
                self._buckets[level] = _Bucket(carry, self.k)
                return
            if bucket is not None:
                carry = carry + bucket.objects
                self._buckets[level] = None
            level += 1

    def _rebuild_all(self) -> None:
        live = [
            obj for oid, obj in self._objects.items() if oid not in self._tombstones
        ]
        self._objects = {obj.oid: obj for obj in live}
        self._tombstones.clear()
        self._buckets = []
        if live:
            self._merge_in(live)

    # -- queries ------------------------------------------------------------------

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches across all live buckets (tombstones filtered)."""
        counter = ensure_counter(counter)
        result: List[KeywordObject] = []
        for bucket in self._buckets:
            if bucket is None:
                continue
            for obj in bucket.query(rect, keywords, counter):
                counter.charge("structure_probes")
                if obj.oid not in self._tombstones:
                    result.append(obj)
        return result

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._objects) - len(self._tombstones)

    @property
    def bucket_sizes(self) -> Tuple[int, ...]:
        """Live bucket sizes, smallest level first (diagnostic)."""
        return tuple(
            len(bucket.objects) if bucket else 0 for bucket in self._buckets
        )

    @property
    def space_units(self) -> int:
        """Sum of the static sub-indexes' stored entries."""
        return sum(
            bucket.index.space_units for bucket in self._buckets if bucket
        )

"""Dynamization of the static ORP-KW index (extension; not in the paper).

The paper's indexes are static.  This module adds insertions and deletions
through the classic *logarithmic method* (Bentley–Saxe): maintain static
sub-indexes of doubling sizes; an insertion merges the carry chain of full
buckets into the next empty one (amortized ``O(log n)`` index rebuilds per
insertion); a query fans out over the ``O(log n)`` live buckets, which
multiplies the static query bound by ``O(log n)``.  Deletions are lazy
tombstones with a compaction rebuild driven by the published tombstone
fraction (the default policy reproduces the classic half-dead rebuild),
keeping the structure within a constant factor of its minimal size.

The machinery — bucket ladder, copy-on-write :class:`Epoch` publication,
tombstone set, gauge-driven compaction, audited maintenance cost — is
generic and lives in :mod:`repro.core.dynamize`; this module is the ORP-KW
wiring (:class:`DynamicOrpKw`) and keeps the original import surface
(``Epoch`` included) for existing callers.

Snapshot isolation
------------------
All reader-visible state lives in one immutable :class:`Epoch` — the bucket
tuple plus the tombstone set — and every mutation (:meth:`DynamicOrpKw.insert`,
:meth:`~DynamicOrpKw.insert_many`, :meth:`~DynamicOrpKw.delete`, and the
internal rebuild) builds its successor state *off to the side* and then
publishes it with a single reference assignment.  A reader pins the current
epoch (:meth:`DynamicOrpKw.snapshot`) and runs entirely against that frozen
object, so it can never observe a half-applied batch, a duplicated object
during a carry merge, or a mid-rebuild empty bucket list — even when a
writer thread races it.  The contract is single-writer/many-readers: writes
must be serialized by the caller (the async serving layer does this with a
writer lock), while any number of readers pin epochs lock-free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..costmodel import CostCounter
from ..dataset import KeywordObject
from ..geometry.rectangles import Rect
from .dynamize import Dynamized, OrpKwAdapter, RectEpoch

#: The ORP-KW epoch type (re-exported so ``repro.core.dynamic.Epoch`` keeps
#: working; the generic machinery lives in :mod:`repro.core.dynamize`).
Epoch = RectEpoch


class DynamicOrpKw(Dynamized):
    """Insert/delete-capable ORP-KW via the logarithmic method.

    Parameters
    ----------
    k:
        Number of query keywords (fixed, as for the static index).
    dim:
        Point dimensionality (validated on every insert).

    Query time: ``O(log n)`` static queries, i.e.
    ``O(N^(1-1/k)(1+OUT^(1/k)) * log n)``.  Insertion: amortized
    ``O(log n)`` rebuild participations per object, each charged to
    :attr:`~repro.core.dynamize.Dynamized.maintenance`.

    Concurrency contract: one writer at a time (callers serialize updates),
    any number of readers.  Readers pin the current :class:`Epoch` via
    :meth:`~repro.core.dynamize.Dynamized.snapshot` (or implicitly through
    :meth:`query`) and never block on — or observe intermediate states of —
    a concurrent mutation.
    """

    epoch_class = RectEpoch

    def __init__(self, k: int, dim: int, metrics=None, policy=None, events=None):
        super().__init__(
            OrpKwAdapter(k), dim, metrics=metrics, policy=policy, events=events
        )
        self.k = k

    # -- queries ------------------------------------------------------------------

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches across all live buckets (tombstones filtered).

        Implicitly pins the current epoch: the whole query runs against one
        consistent snapshot even if a writer publishes mid-flight.
        """
        return self._epoch.query(rect, keywords, counter)

"""Dynamization of the static indexes (extension; not in the paper).

The paper's indexes are static.  This module adds insertions and deletions
through the classic *logarithmic method* (Bentley–Saxe): maintain static
sub-indexes of doubling sizes; an insertion merges the carry chain of full
buckets into the next empty one (amortized ``O(log n)`` index rebuilds per
insertion); a query fans out over the ``O(log n)`` live buckets, which
multiplies the static query bound by ``O(log n)``.  Deletions are lazy
tombstones with a global rebuild once half the elements are dead, keeping
the structure within a constant factor of its minimal size.

Snapshot isolation
------------------
All reader-visible state lives in one immutable :class:`Epoch` — the bucket
tuple plus the tombstone set — and every mutation (:meth:`DynamicOrpKw.insert`,
:meth:`~DynamicOrpKw.insert_many`, :meth:`~DynamicOrpKw.delete`, and the
internal rebuild) builds its successor state *off to the side* and then
publishes it with a single reference assignment.  A reader pins the current
epoch (:meth:`DynamicOrpKw.snapshot`) and runs entirely against that frozen
object, so it can never observe a half-applied batch, a duplicated object
during a carry merge, or a mid-rebuild empty bucket list — even when a
writer thread races it.  The contract is single-writer/many-readers: writes
must be serialized by the caller (the async serving layer does this with a
writer lock), while any number of readers pin epochs lock-free.

Works for any static index exposing the ``(dataset, k)`` constructor and a
``query(region_args..., keywords, counter, ...)`` method; the concrete
:class:`DynamicOrpKw` wires it to :class:`~repro.core.orp_kw.OrpKwIndex`.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from ..trace import span_for
from .orp_kw import OrpKwIndex


class _Bucket:
    """One static sub-index over a fixed object snapshot.

    Buckets are immutable once built: a carry merge constructs *new* buckets
    and leaves the old ones intact, so epochs pinned by concurrent readers
    keep querying the structures they captured.
    """

    __slots__ = ("objects", "index")

    def __init__(self, objects: List[KeywordObject], k: int):
        self.objects = objects
        # Re-id objects locally (Dataset requires unique ids; globals may
        # collide after re-insertion) and keep the mapping positional.
        local = [
            KeywordObject(oid=i, point=obj.point, doc=obj.doc)
            for i, obj in enumerate(objects)
        ]
        self.index = OrpKwIndex(Dataset(local), k)

    def query(
        self,
        rect: Rect,
        words: Sequence[int],
        counter: CostCounter,
    ) -> List[KeywordObject]:
        found = self.index.query(rect, words, counter)
        return [self.objects[obj.oid] for obj in found]

    def live_space_units(self, tombstones: FrozenSet[int]) -> int:
        """Stored entries attributable to this bucket's live objects."""
        dead_local = {
            i for i, obj in enumerate(self.objects) if obj.oid in tombstones
        }
        if not dead_local:
            return self.index.space_units
        return self.index.space_units_excluding(dead_local)


class Epoch:
    """One immutable published state of a :class:`DynamicOrpKw`.

    An epoch is the unit of snapshot isolation: it freezes the bucket tuple
    and the tombstone set together, so every answer derived from it is
    internally consistent.  Epochs are cheap to pin (one attribute read) and
    safe to query from any thread — nothing reachable from an epoch is ever
    mutated after publication.
    """

    __slots__ = ("epoch_id", "buckets", "tombstones", "live_count")

    def __init__(
        self,
        epoch_id: int,
        buckets: Tuple[Optional[_Bucket], ...],
        tombstones: FrozenSet[int],
        live_count: int,
    ):
        self.epoch_id = epoch_id
        self.buckets = buckets
        self.tombstones = tombstones
        self.live_count = live_count

    # -- queries ----------------------------------------------------------------

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches across this epoch's buckets (tombstones filtered)."""
        counter = ensure_counter(counter)
        result: List[KeywordObject] = []
        with span_for(counter, "epoch-scan", "dynamic", epoch=self.epoch_id):
            for bucket in self.buckets:
                if bucket is None:
                    continue
                for obj in bucket.query(rect, keywords, counter):
                    counter.charge("structure_probes")
                    if obj.oid not in self.tombstones:
                        result.append(obj)
        return result

    def live_oids(self) -> FrozenSet[int]:
        """The ids of every live object in this epoch (diagnostic)."""
        return frozenset(
            obj.oid
            for bucket in self.buckets
            if bucket is not None
            for obj in bucket.objects
            if obj.oid not in self.tombstones
        )

    # -- accounting -------------------------------------------------------------

    def __len__(self) -> int:
        return self.live_count

    @property
    def bucket_sizes(self) -> Tuple[int, ...]:
        """Per-level *live* object counts, smallest level first.

        Tombstoned objects are excluded: a physically full bucket whose
        objects are all dead reports 0, so delete-heavy churn cannot inflate
        the occupancy picture between rebuilds.
        """
        sizes = []
        for bucket in self.buckets:
            if bucket is None:
                sizes.append(0)
            elif not self.tombstones:
                sizes.append(len(bucket.objects))
            else:
                sizes.append(
                    sum(
                        1
                        for obj in bucket.objects
                        if obj.oid not in self.tombstones
                    )
                )
        return tuple(sizes)

    @property
    def space_units(self) -> int:
        """Stored entries attributable to *live* objects.

        Between rebuilds the sub-indexes still physically hold tombstoned
        objects, but counting their entries would make space accounting (and
        the near-linear-space audit probes fed by it) drift upward under
        delete-heavy churn even though the live set shrinks.  Per-object
        entries (pivot and materialized-list slots) of dead objects are
        therefore excluded; shared keyword-level structure is counted as
        stored, and the half-dead rebuild policy caps its dead weight at a
        constant factor.
        """
        return sum(
            bucket.live_space_units(self.tombstones)
            for bucket in self.buckets
            if bucket is not None
        )


class DynamicOrpKw:
    """Insert/delete-capable ORP-KW via the logarithmic method.

    Parameters
    ----------
    k:
        Number of query keywords (fixed, as for the static index).
    dim:
        Point dimensionality (validated on every insert).

    Query time: ``O(log n)`` static queries, i.e.
    ``O(N^(1-1/k)(1+OUT^(1/k)) * log n)``.  Insertion: amortized
    ``O(log n)`` rebuild participations per object.

    Concurrency contract: one writer at a time (callers serialize updates),
    any number of readers.  Readers pin the current :class:`Epoch` via
    :meth:`snapshot` (or implicitly through :meth:`query`) and never block
    on — or observe intermediate states of — a concurrent mutation.
    """

    def __init__(self, k: int, dim: int):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        if dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        self.k = k
        self.dim = dim
        #: Writer-side master copy: every object inserted and not yet purged
        #: by a rebuild (tombstoned objects stay here until then).  Readers
        #: never touch it — all read state comes from the published epoch.
        self._objects: Dict[int, KeywordObject] = {}
        self._next_oid = 0
        self._epoch = Epoch(0, (), frozenset(), 0)

    # -- snapshots ---------------------------------------------------------------

    @property
    def epoch(self) -> Epoch:
        """The currently published epoch (advances on every mutation)."""
        return self._epoch

    def snapshot(self) -> Epoch:
        """Pin the current epoch for isolated reads.

        The returned object is immutable: queries against it keep answering
        from the pinned state no matter how many inserts, deletes, or
        rebuilds are published afterwards.
        """
        return self._epoch

    @property
    def _buckets(self) -> Tuple[Optional[_Bucket], ...]:
        # Backward-compatible view of the live bucket list (tests and
        # diagnostics iterate it); the canonical state lives in the epoch.
        return self._epoch.buckets

    # -- updates ---------------------------------------------------------------

    def _coerce_point(self, point: Sequence[float]) -> Tuple[float, ...]:
        """Validate an incoming point *before* any index state changes.

        Rejecting here (rather than relying on :class:`KeywordObject`) keeps
        updates atomic: a bad point cannot burn an object id or leave a bulk
        insert half-applied.  NaN in particular would make every later
        containment test silently inconsistent, so it must never reach a
        bucket.
        """
        coords = tuple(float(c) for c in point)
        if len(coords) != self.dim:
            raise ValidationError(
                f"point is {len(coords)}-dimensional, index is {self.dim}-dimensional"
            )
        for coord in coords:
            if not math.isfinite(coord):
                raise ValidationError(
                    f"point has a non-finite coordinate ({coord})"
                )
        return coords

    def insert(self, point: Sequence[float], doc) -> int:
        """Insert an object; returns its assigned id.

        The new epoch (carry chain fully merged) is published atomically
        after the merge completes; concurrent readers see the index either
        entirely without or entirely with the new object.
        """
        coords = self._coerce_point(point)
        oid = self._next_oid
        obj = KeywordObject(oid=oid, point=coords, doc=frozenset(doc))
        epoch = self._epoch
        buckets = _merged(epoch.buckets, [obj], self.k)
        self._next_oid += 1
        self._objects[oid] = obj
        self._publish(buckets, epoch.tombstones)
        return oid

    def insert_many(self, points, docs) -> List[int]:
        """Bulk insert; cheaper than repeated :meth:`insert` for big batches.

        Atomic twice over: every point is validated before the first object
        is created (a malformed point anywhere in the batch leaves the index
        unchanged), and the whole batch lands in one published epoch (a
        concurrent reader sees none of the batch or all of it, never a
        prefix).
        """
        coerced = [self._coerce_point(point) for point in points]
        oids = []
        batch = []
        next_oid = self._next_oid
        for coords, doc in zip(coerced, docs):
            obj = KeywordObject(oid=next_oid, point=coords, doc=frozenset(doc))
            batch.append(obj)
            oids.append(next_oid)
            next_oid += 1
        if batch:
            epoch = self._epoch
            buckets = _merged(epoch.buckets, batch, self.k)
            self._next_oid = next_oid
            for obj in batch:
                self._objects[obj.oid] = obj
            self._publish(buckets, epoch.tombstones)
        return oids

    def delete(self, oid: int) -> None:
        """Tombstone an object; physical removal happens at the next rebuild.

        Deleting an unknown id or an already-tombstoned id raises
        :class:`~repro.errors.ValidationError` uniformly, with **no** side
        effects on the failing path: no tombstone is recorded, no epoch is
        published, and no rebuild is triggered.
        """
        epoch = self._epoch
        if oid not in self._objects:
            raise ValidationError(f"unknown object id {oid}")
        if oid in epoch.tombstones:
            raise ValidationError(f"object {oid} already deleted")
        tombstones = epoch.tombstones | {oid}
        if len(tombstones) * 2 >= len(self._objects):
            self._rebuild_all(tombstones)
        else:
            self._publish(epoch.buckets, tombstones)

    def _rebuild_all(self, tombstones: FrozenSet[int]) -> None:
        """Purge ``tombstones`` and re-pack the live objects into fresh buckets.

        The rebuild happens entirely off to the side — the previous epoch
        keeps serving readers throughout — and the result is published in a
        single step, so there is no window in which a reader could observe
        an empty (or partially packed) bucket list.
        """
        live = [
            obj for oid, obj in self._objects.items() if oid not in tombstones
        ]
        self._objects = {obj.oid: obj for obj in live}
        buckets: Tuple[Optional[_Bucket], ...] = ()
        if live:
            buckets = _merged((), live, self.k)
        self._publish(buckets, frozenset())

    def _publish(
        self,
        buckets: Sequence[Optional[_Bucket]],
        tombstones: FrozenSet[int],
    ) -> None:
        """Atomically install the successor epoch (one reference assignment)."""
        self._epoch = Epoch(
            self._epoch.epoch_id + 1,
            tuple(buckets),
            frozenset(tombstones),
            len(self._objects) - len(tombstones),
        )

    # -- queries ------------------------------------------------------------------

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches across all live buckets (tombstones filtered).

        Implicitly pins the current epoch: the whole query runs against one
        consistent snapshot even if a writer publishes mid-flight.
        """
        return self._epoch.query(rect, keywords, counter)

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._epoch.live_count

    @property
    def bucket_sizes(self) -> Tuple[int, ...]:
        """Live bucket sizes, smallest level first (diagnostic)."""
        return self._epoch.bucket_sizes

    @property
    def space_units(self) -> int:
        """Stored entries attributable to live objects (see :class:`Epoch`)."""
        return self._epoch.space_units


def _merged(
    buckets: Sequence[Optional[_Bucket]],
    carry: List[KeywordObject],
    k: int,
) -> Tuple[Optional[_Bucket], ...]:
    """The logarithmic-method carry merge, as a pure function.

    Returns a new bucket tuple with ``carry`` folded in; the input buckets
    are never mutated (merged-away levels are dropped from the *copy*), so
    epochs holding the old tuple stay valid while the new sub-index builds.
    """
    new: List[Optional[_Bucket]] = list(buckets)
    level = 0
    while True:
        if level == len(new):
            new.append(None)
        bucket = new[level]
        if bucket is None and len(carry) <= (1 << level):
            new[level] = _Bucket(carry, k)
            return tuple(new)
        if bucket is not None:
            carry = carry + bucket.objects
            new[level] = None
        level += 1

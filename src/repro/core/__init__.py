"""The paper's primary contribution: keyword-aware geometric indexes.

* :mod:`repro.core.transform` — the §3 four-step framework, generic over any
  space-partitioning tree;
* :mod:`repro.core.orp_kw` — Theorem 1 (ORP-KW, d ≤ 2);
* :mod:`repro.core.dim_reduction` — Theorem 2 / Lemma 11 (ORP-KW, d ≥ 3);
* :mod:`repro.core.lc_kw` — Theorems 5 and 12 (LC-KW / SP-KW);
* :mod:`repro.core.rr_kw` — Corollary 3 (RR-KW);
* :mod:`repro.core.nn_linf` — Corollary 4 (L∞ nearest neighbour);
* :mod:`repro.core.srp_kw` — Corollary 6 (spherical range reporting);
* :mod:`repro.core.nn_l2` — Corollary 7 (L2 nearest neighbour);
* :mod:`repro.core.baselines` — the two naive solutions of §1 for every
  problem.
"""

from .orp_kw import OrpKwIndex
from .dim_reduction import DimReductionOrpKw
from .lc_kw import LcKwIndex, SpKwIndex
from .rr_kw import RrKwIndex
from .nn_linf import LinfNnIndex
from .srp_kw import SrpKwIndex
from .nn_l2 import L2NnIndex
from .multi_k import MultiKOrpIndex
from .dynamize import (
    Dynamized,
    DynamicKeywordsOnly,
    DynamicLcKw,
    DynamicMultiKOrp,
    DynamicSrpKw,
    GaugeCompactionPolicy,
)

__all__ = [
    "MultiKOrpIndex",
    "Dynamized",
    "DynamicKeywordsOnly",
    "DynamicLcKw",
    "DynamicMultiKOrp",
    "DynamicSrpKw",
    "GaugeCompactionPolicy",
    "OrpKwIndex",
    "DimReductionOrpKw",
    "LcKwIndex",
    "SpKwIndex",
    "RrKwIndex",
    "LinfNnIndex",
    "SrpKwIndex",
    "L2NnIndex",
]

"""Generic Bentley–Saxe dynamization for any static Table-1 index.

The paper's indexes are static.  :mod:`repro.core.dynamic` introduced the
classic *logarithmic method* (Bentley–Saxe) for ORP-KW; this module extracts
that machinery into a reusable layer so every Table-1 family gains inserts
and deletes through the same audited mechanism:

* a **geometric bucket ladder** — static sub-indexes of doubling capacities;
  an insertion merges the carry chain of full buckets into the next empty
  one (amortized ``O(log n)`` rebuild participations per object);
* **copy-on-write epoch publication** — all reader-visible state (bucket
  tuple, tombstone set, live count, maintenance-cost snapshot) lives in one
  immutable :class:`Epoch`, published with a single reference assignment, so
  readers pin a consistent view lock-free while a writer mutates;
* **lazy tombstone deletes** with compaction driven by the published
  ``probe_*`` gauges of a :class:`~repro.trace.MetricsRegistry` rather than
  a hard-coded ratio (:class:`GaugeCompactionPolicy`; the default threshold
  reproduces the classic half-dead rebuild exactly);
* **audited maintenance cost** — every carry-merge and compaction rebuild
  charges a dedicated :class:`~repro.costmodel.CostCounter`
  (:attr:`Dynamized.maintenance`), in the same RAM-model categories the
  query path uses, and each epoch carries a snapshot of the cumulative
  total, so amortized update cost is fitted and gated by the audit
  subsystem exactly like query cost (the ``CHURN`` scorecard row).

A family plugs in through an :class:`IndexAdapter`: how to build a static
sub-index over a bucket's objects, how to run one family-specific query
against it, and how to count the live stored entries.  The concrete
dynamized classes at the bottom of this module cover the remaining Table-1
structures (:class:`DynamicKeywordsOnly`, :class:`DynamicLcKw`,
:class:`DynamicSrpKw`, :class:`DynamicMultiKOrp`);
:class:`~repro.core.dynamic.DynamicOrpKw` is the ORP-KW wiring and keeps
its original module for backward compatibility.

Concurrency contract (unchanged from :mod:`repro.core.dynamic`): one writer
at a time — callers serialize mutations — and any number of readers, each
pinning the current epoch lock-free via :meth:`Dynamized.snapshot`.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject
from ..errors import ValidationError
from ..trace import MetricsRegistry, span_for

#: Gauge names the writer publishes after every mutation (``probe_`` prefix
#: mirrors :func:`repro.audit.probes.register` so engine stats surface them).
GAUGE_TOMBSTONE_FRACTION = "probe_dynamize_tombstone_fraction"
GAUGE_LIVE_BUCKETS = "probe_dynamize_live_buckets"
GAUGE_LIVE_COUNT = "probe_dynamize_live_count"
GAUGE_MAINTENANCE_TOTAL = "probe_dynamize_maintenance_total"


class IndexAdapter:
    """How one static index family participates in the bucket ladder.

    Adapters are small, stateless-per-bucket plug-ins: :meth:`build`
    constructs the family's static index over a bucket's (re-idded)
    dataset, :meth:`query` runs one query — ``args`` is the family-specific
    argument tuple, *without* the counter — and :meth:`live_space_units`
    counts stored entries attributable to live objects.
    """

    #: Human-readable family tag (span/diagnostic labels).
    name = "index"

    def build(self, dataset: Dataset):
        raise NotImplementedError

    def query(self, index, args: Tuple, counter: CostCounter) -> List[KeywordObject]:
        raise NotImplementedError

    def live_space_units(self, index, dead_local: FrozenSet[int]) -> int:
        """Stored entries excluding ``dead_local`` (local ids) when the
        family can attribute per-object entries; physical space otherwise.

        Only ORP-KW exposes ``space_units_excluding`` today — families
        without it report physical space, which the half-dead compaction
        still caps at a constant factor of the live set's.
        """
        if not dead_local:
            return index.space_units
        excluding = getattr(index, "space_units_excluding", None)
        if excluding is not None:
            return excluding(dead_local)
        return index.space_units


class _Bucket:
    """One static sub-index over a fixed object snapshot.

    Buckets are immutable once built: a carry merge constructs *new* buckets
    and leaves the old ones intact, so epochs pinned by concurrent readers
    keep querying the structures they captured.
    """

    __slots__ = ("objects", "index", "adapter")

    def __init__(self, objects: List[KeywordObject], adapter: IndexAdapter):
        self.objects = objects
        # Re-id objects locally (Dataset requires unique ids; globals may
        # collide after re-insertion) and keep the mapping positional.
        local = [
            KeywordObject(oid=i, point=obj.point, doc=obj.doc)
            for i, obj in enumerate(objects)
        ]
        self.index = adapter.build(Dataset(local))
        self.adapter = adapter

    def query(self, *args) -> List[KeywordObject]:
        """Family-specific query; the last positional argument is the counter."""
        found = self.adapter.query(self.index, args[:-1], args[-1])
        return [self.objects[obj.oid] for obj in found]

    def live_space_units(self, tombstones: FrozenSet[int]) -> int:
        """Stored entries attributable to this bucket's live objects."""
        dead_local = frozenset(
            i for i, obj in enumerate(self.objects) if obj.oid in tombstones
        )
        return self.adapter.live_space_units(self.index, dead_local)


class Epoch:
    """One immutable published state of a :class:`Dynamized` index.

    An epoch is the unit of snapshot isolation: it freezes the bucket tuple
    and the tombstone set together, so every answer derived from it is
    internally consistent.  Epochs are cheap to pin (one attribute read) and
    safe to query from any thread — nothing reachable from an epoch is ever
    mutated after publication.  ``maintenance`` is the cumulative
    maintenance-cost snapshot at publication time (monotone across epochs).

    Subclasses add the family-specific ``query(...)`` signature; the shared
    bucket fan-out lives in :meth:`run`.
    """

    __slots__ = ("epoch_id", "buckets", "tombstones", "live_count", "maintenance")

    def __init__(
        self,
        epoch_id: int,
        buckets: Tuple[Optional[_Bucket], ...],
        tombstones: FrozenSet[int],
        live_count: int,
        maintenance: Optional[Dict[str, int]] = None,
    ):
        self.epoch_id = epoch_id
        self.buckets = buckets
        self.tombstones = tombstones
        self.live_count = live_count
        self.maintenance = dict(maintenance) if maintenance else {"total": 0}

    # -- queries ----------------------------------------------------------------

    def run(
        self, args: Tuple, counter: Optional[CostCounter] = None
    ) -> List[KeywordObject]:
        """Report matches across this epoch's buckets (tombstones filtered)."""
        counter = ensure_counter(counter)
        result: List[KeywordObject] = []
        with span_for(counter, "epoch-scan", "dynamic", epoch=self.epoch_id):
            for bucket in self.buckets:
                if bucket is None:
                    continue
                for obj in bucket.query(*args, counter):
                    counter.charge("structure_probes")
                    if obj.oid not in self.tombstones:
                        result.append(obj)
        return result

    def live_oids(self) -> FrozenSet[int]:
        """The ids of every live object in this epoch (diagnostic)."""
        return frozenset(
            obj.oid
            for bucket in self.buckets
            if bucket is not None
            for obj in bucket.objects
            if obj.oid not in self.tombstones
        )

    # -- accounting -------------------------------------------------------------

    def __len__(self) -> int:
        return self.live_count

    @property
    def bucket_sizes(self) -> Tuple[int, ...]:
        """Per-level *live* object counts, smallest level first.

        Tombstoned objects are excluded: a physically full bucket whose
        objects are all dead reports 0, so delete-heavy churn cannot inflate
        the occupancy picture between rebuilds.
        """
        sizes = []
        for bucket in self.buckets:
            if bucket is None:
                sizes.append(0)
            elif not self.tombstones:
                sizes.append(len(bucket.objects))
            else:
                sizes.append(
                    sum(
                        1
                        for obj in bucket.objects
                        if obj.oid not in self.tombstones
                    )
                )
        return tuple(sizes)

    @property
    def space_units(self) -> int:
        """Stored entries attributable to *live* objects.

        Between rebuilds the sub-indexes still physically hold tombstoned
        objects, but counting their entries would make space accounting (and
        the near-linear-space audit probes fed by it) drift upward under
        delete-heavy churn even though the live set shrinks.  Families that
        can attribute per-object entries exclude dead ones; the half-dead
        compaction policy caps the remaining dead weight at a constant
        factor either way.
        """
        return sum(
            bucket.live_space_units(self.tombstones)
            for bucket in self.buckets
            if bucket is not None
        )

    @property
    def input_size(self) -> int:
        """The paper's ``N`` over the live set: ``Σ |e.Doc|``."""
        return sum(
            len(obj.doc)
            for bucket in self.buckets
            if bucket is not None
            for obj in bucket.objects
            if obj.oid not in self.tombstones
        )


class RectEpoch(Epoch):
    """Epoch whose family answers orthogonal-range (rectangle) queries."""

    __slots__ = ()

    def query(
        self,
        rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        return self.run((rect, keywords), counter)


class HalfspaceEpoch(Epoch):
    """Epoch whose family answers linear-constraint (halfspace) queries."""

    __slots__ = ()

    def query(
        self,
        constraints,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        return self.run((constraints, keywords), counter)


class BallEpoch(Epoch):
    """Epoch whose family answers spherical-range (center, radius) queries."""

    __slots__ = ()

    def query(
        self,
        center,
        radius: float,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        return self.run((center, radius, keywords), counter)


class GaugeCompactionPolicy:
    """Compaction trigger read from published ``probe_*`` gauges.

    The writer publishes the prospective tombstone fraction into its
    :class:`~repro.trace.MetricsRegistry` before every delete decision; the
    policy reads the gauge back and votes.  Operators can therefore retune
    (or replace) compaction centrally through the same registry the
    structural probes feed, instead of recompiling a hard-coded ratio.  The
    default ``threshold=0.5`` reproduces the classic Bentley–Saxe half-dead
    rebuild exactly.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        gauge: str = GAUGE_TOMBSTONE_FRACTION,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValidationError(
                f"compaction threshold must be in (0, 1], got {threshold}"
            )
        self.threshold = threshold
        self.gauge = gauge

    def should_compact(self, metrics: MetricsRegistry) -> bool:
        return metrics.gauge(self.gauge).value >= self.threshold


class Dynamized:
    """Insert/delete capability for any adapted static index.

    Parameters
    ----------
    adapter:
        The family plug-in (build/query/space for one static index class).
    dim:
        Point dimensionality (validated on every insert).
    metrics:
        Registry receiving the writer's ``probe_dynamize_*`` gauges (and
        feeding the compaction policy); private by default.
    policy:
        Compaction trigger; defaults to :class:`GaugeCompactionPolicy` with
        the classic half-dead threshold.
    events:
        A :class:`~repro.telemetry.EventLog` receiving ``epoch_publish``,
        ``carry_merge``, and ``compaction`` events; ``None`` (the default)
        disables emission.  Share the serving stack's log for one total
        event order across queries and maintenance.

    Query time: ``O(log n)`` static queries.  Insertion: amortized
    ``O(log n)`` rebuild participations per object, every one charged to
    :attr:`maintenance`.  Concurrency: single writer, many lock-free
    readers pinning epochs via :meth:`snapshot`.
    """

    #: The family-specific :class:`Epoch` subclass this index publishes.
    epoch_class = RectEpoch

    def __init__(
        self,
        adapter: IndexAdapter,
        dim: int,
        metrics: Optional[MetricsRegistry] = None,
        policy: Optional[GaugeCompactionPolicy] = None,
        events=None,
    ):
        if dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        self.adapter = adapter
        self.dim = dim
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.policy = policy if policy is not None else GaugeCompactionPolicy()
        self._events = events
        #: Cumulative maintenance cost: every carry-merge and compaction
        #: rebuild charges here, in the standard RAM-model categories
        #: (``objects_examined`` per rebuild participation, ``nodes_visited``
        #: per sub-index build), so amortized update cost is audited with the
        #: same machinery as query cost.
        self.maintenance = CostCounter()
        #: Writer-side master copy: every object inserted and not yet purged
        #: by a compaction (tombstoned objects stay here until then).
        #: Readers never touch it — all read state comes from the epoch.
        self._objects: Dict[int, KeywordObject] = {}
        self._next_oid = 0
        self._epoch = self.epoch_class(0, (), frozenset(), 0)

    # -- snapshots ---------------------------------------------------------------

    @property
    def epoch(self) -> Epoch:
        """The currently published epoch (advances on every mutation)."""
        return self._epoch

    def snapshot(self) -> Epoch:
        """Pin the current epoch for isolated reads.

        The returned object is immutable: queries against it keep answering
        from the pinned state no matter how many inserts, deletes, or
        compactions are published afterwards.
        """
        return self._epoch

    def attach_events(self, events) -> None:
        """Attach (or detach with ``None``) a telemetry event log."""
        self._events = events

    @property
    def _buckets(self) -> Tuple[Optional[_Bucket], ...]:
        # Backward-compatible view of the live bucket list (tests and
        # diagnostics iterate it); the canonical state lives in the epoch.
        return self._epoch.buckets

    # -- updates ---------------------------------------------------------------

    def _coerce_point(self, point: Sequence[float]) -> Tuple[float, ...]:
        """Validate an incoming point *before* any index state changes.

        Rejecting here (rather than relying on :class:`KeywordObject`) keeps
        updates atomic: a bad point cannot burn an object id or leave a bulk
        insert half-applied.  NaN in particular would make every later
        containment test silently inconsistent, so it must never reach a
        bucket.
        """
        coords = tuple(float(c) for c in point)
        if len(coords) != self.dim:
            raise ValidationError(
                f"point is {len(coords)}-dimensional, index is {self.dim}-dimensional"
            )
        for coord in coords:
            if not math.isfinite(coord):
                raise ValidationError(
                    f"point has a non-finite coordinate ({coord})"
                )
        return coords

    def insert(self, point: Sequence[float], doc) -> int:
        """Insert an object; returns its assigned id.

        The new epoch (carry chain fully merged) is published atomically
        after the merge completes; concurrent readers see the index either
        entirely without or entirely with the new object.
        """
        coords = self._coerce_point(point)
        oid = self._next_oid
        obj = KeywordObject(oid=oid, point=coords, doc=frozenset(doc))
        epoch = self._epoch
        buckets = self._merged(epoch.buckets, [obj])
        self._next_oid += 1
        self._objects[oid] = obj
        self._publish(buckets, epoch.tombstones)
        self._meter()
        return oid

    def insert_many(self, points, docs) -> List[int]:
        """Bulk insert; cheaper than repeated :meth:`insert` for big batches.

        Atomic twice over: every point is validated before the first object
        is created (a malformed point anywhere in the batch leaves the index
        unchanged), and the whole batch lands in one published epoch (a
        concurrent reader sees none of the batch or all of it, never a
        prefix).
        """
        coerced = [self._coerce_point(point) for point in points]
        oids = []
        batch = []
        next_oid = self._next_oid
        for coords, doc in zip(coerced, docs):
            obj = KeywordObject(oid=next_oid, point=coords, doc=frozenset(doc))
            batch.append(obj)
            oids.append(next_oid)
            next_oid += 1
        if batch:
            epoch = self._epoch
            buckets = self._merged(epoch.buckets, batch)
            self._next_oid = next_oid
            for obj in batch:
                self._objects[obj.oid] = obj
            self._publish(buckets, epoch.tombstones)
            self._meter()
        return oids

    def delete(self, oid: int) -> None:
        """Tombstone an object; physical removal happens at compaction.

        Deleting an unknown id or an already-tombstoned id raises
        :class:`~repro.errors.ValidationError` uniformly, with **no** side
        effects on the failing path: no tombstone is recorded, no epoch is
        published, and no compaction is triggered.

        Compaction is gauge-driven: the prospective tombstone fraction is
        published to :attr:`metrics` and the :attr:`policy` reads it back to
        vote (the default reproduces the classic half-dead rebuild).
        """
        epoch = self._epoch
        if oid not in self._objects:
            raise ValidationError(f"unknown object id {oid}")
        if oid in epoch.tombstones:
            raise ValidationError(f"object {oid} already deleted")
        tombstones = epoch.tombstones | {oid}
        self.metrics.gauge(GAUGE_TOMBSTONE_FRACTION).set(
            len(tombstones) / len(self._objects)
        )
        if self.policy.should_compact(self.metrics):
            self._rebuild_all(tombstones)
        else:
            self._publish(epoch.buckets, tombstones)
        self._meter()

    def compact(self) -> None:
        """Purge tombstones and re-pack the live set now (one new epoch).

        The gauge-driven policy normally decides this; ``compact()`` is the
        operator override (e.g. before a snapshot-heavy read phase).
        """
        self._rebuild_all(self._epoch.tombstones)
        self._meter()

    def _rebuild_all(self, tombstones: FrozenSet[int]) -> None:
        """Purge ``tombstones`` and re-pack the live objects into fresh buckets.

        The rebuild happens entirely off to the side — the previous epoch
        keeps serving readers throughout — and the result is published in a
        single step, so there is no window in which a reader could observe
        an empty (or partially packed) bucket list.
        """
        live = [
            obj for oid, obj in self._objects.items() if oid not in tombstones
        ]
        self._objects = {obj.oid: obj for obj in live}
        events = getattr(self, "_events", None)
        if events is not None:
            events.emit(
                "compaction",
                family=self.adapter.name,
                purged=len(tombstones),
                live=len(live),
            )
        buckets: Tuple[Optional[_Bucket], ...] = ()
        if live:
            buckets = self._merged((), live)
        self._publish(buckets, frozenset())

    def _publish(
        self,
        buckets: Sequence[Optional[_Bucket]],
        tombstones: FrozenSet[int],
    ) -> None:
        """Atomically install the successor epoch (one reference assignment)."""
        self._epoch = self.epoch_class(
            self._epoch.epoch_id + 1,
            tuple(buckets),
            frozenset(tombstones),
            len(self._objects) - len(tombstones),
            self.maintenance.snapshot(),
        )
        # getattr: instances unpickled from pre-telemetry snapshots lack
        # the attribute until their next construction-time wiring.
        events = getattr(self, "_events", None)
        if events is not None:
            epoch = self._epoch
            events.emit(
                "epoch_publish",
                epoch=epoch.epoch_id,
                live=epoch.live_count,
                tombstones=len(epoch.tombstones),
                buckets=sum(1 for b in epoch.buckets if b is not None),
            )

    def _meter(self) -> None:
        """Publish the writer's post-mutation gauges (read back by policies,
        surfaced through engine/serving ``stats()`` like any other probe)."""
        epoch = self._epoch
        total = max(len(self._objects), 1)
        self.metrics.gauge(GAUGE_TOMBSTONE_FRACTION).set(
            len(epoch.tombstones) / total
        )
        self.metrics.gauge(GAUGE_LIVE_BUCKETS).set(
            sum(1 for bucket in epoch.buckets if bucket is not None)
        )
        self.metrics.gauge(GAUGE_LIVE_COUNT).set(epoch.live_count)
        self.metrics.gauge(GAUGE_MAINTENANCE_TOTAL).set(self.maintenance.total)

    # -- maintenance ------------------------------------------------------------

    def _merged(
        self,
        buckets: Sequence[Optional[_Bucket]],
        carry: List[KeywordObject],
    ) -> Tuple[Optional[_Bucket], ...]:
        """The logarithmic-method carry merge, charged to :attr:`maintenance`.

        Returns a new bucket tuple with ``carry`` folded in; the input
        buckets are never mutated (merged-away levels are dropped from the
        *copy*), so epochs holding the old tuple stay valid while the new
        sub-index builds.
        """
        counter = self.maintenance
        incoming = len(carry)
        with span_for(counter, "carry-merge", "dynamize", carry=incoming):
            new: List[Optional[_Bucket]] = list(buckets)
            level = 0
            while True:
                if level == len(new):
                    new.append(None)
                bucket = new[level]
                if bucket is None and len(carry) <= (1 << level):
                    new[level] = self._build_bucket(carry)
                    events = getattr(self, "_events", None)
                    if events is not None:
                        events.emit(
                            "carry_merge",
                            family=self.adapter.name,
                            carry=incoming,
                            merged=len(carry),
                            level=level,
                        )
                    return tuple(new)
                if bucket is not None:
                    carry = carry + bucket.objects
                    new[level] = None
                level += 1

    def _build_bucket(self, objects: List[KeywordObject]) -> _Bucket:
        """Build one static sub-index, charging each rebuild participation.

        ``objects_examined`` counts one unit per object packed into the new
        sub-index — summed over a workload this is exactly the Bentley–Saxe
        "rebuild participations" quantity whose amortized ``O(log n)`` per
        insertion the CHURN audit row fits and gates.
        """
        counter = self.maintenance
        counter.charge("nodes_visited")
        counter.charge("objects_examined", len(objects))
        return _Bucket(objects, self.adapter)

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._epoch.live_count

    @property
    def bucket_sizes(self) -> Tuple[int, ...]:
        """Live bucket sizes, smallest level first (diagnostic)."""
        return self._epoch.bucket_sizes

    @property
    def space_units(self) -> int:
        """Stored entries attributable to live objects (see :class:`Epoch`)."""
        return self._epoch.space_units

    @property
    def input_size(self) -> int:
        """The paper's ``N`` over the live set (space probes divide by it)."""
        return self._epoch.input_size


# -- family adapters -----------------------------------------------------------


class OrpKwAdapter(IndexAdapter):
    """Theorem-1 ORP-KW sub-indexes (rect + exactly-k keywords)."""

    name = "orp_kw"

    def __init__(self, k: int):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        self.k = k

    def build(self, dataset: Dataset):
        from .orp_kw import OrpKwIndex

        return OrpKwIndex(dataset, self.k)

    def query(self, index, args, counter):
        rect, keywords = args
        return index.query(rect, keywords, counter)


class KeywordsOnlyAdapter(IndexAdapter):
    """Keywords-only baseline sub-indexes (posting-list scan + rect filter)."""

    name = "keywords_only"

    def build(self, dataset: Dataset):
        from .baselines import KeywordsOnlyIndex

        return KeywordsOnlyIndex(dataset)

    def query(self, index, args, counter):
        rect, keywords = args
        return index.query_rect(rect, keywords, counter)


class LcKwAdapter(IndexAdapter):
    """Theorem-5 LC-KW sub-indexes (halfspace constraints + k keywords)."""

    name = "lc_kw"

    def __init__(self, k: int):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        self.k = k

    def build(self, dataset: Dataset):
        from .lc_kw import LcKwIndex

        return LcKwIndex(dataset, self.k)

    def query(self, index, args, counter):
        constraints, keywords = args
        return index.query(constraints, keywords, counter)


class SrpKwAdapter(IndexAdapter):
    """Corollary-6 SRP-KW sub-indexes (L2 ball + k keywords)."""

    name = "srp_kw"

    def __init__(self, k: int):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        self.k = k

    def build(self, dataset: Dataset):
        from .srp_kw import SrpKwIndex

        return SrpKwIndex(dataset, self.k)

    def query(self, index, args, counter):
        center, radius, keywords = args
        return index.query(center, radius, keywords, counter)


class MultiKOrpAdapter(IndexAdapter):
    """Multi-k ORP-KW sub-indexes (rect + 1..max_k keywords)."""

    name = "multi_k_orp"

    def __init__(self, max_k: int):
        if max_k < 1:
            raise ValidationError(f"max_k must be >= 1, got {max_k}")
        self.max_k = max_k

    def build(self, dataset: Dataset):
        from .multi_k import MultiKOrpIndex

        return MultiKOrpIndex(dataset, max_k=self.max_k)

    def query(self, index, args, counter):
        rect, keywords = args
        return index.query(rect, keywords, counter)


# -- concrete dynamized Table-1 indexes ----------------------------------------


class DynamicKeywordsOnly(Dynamized):
    """Insert/delete-capable keywords-only baseline (rect queries, any k)."""

    epoch_class = RectEpoch

    def __init__(self, dim: int, metrics=None, policy=None, events=None):
        super().__init__(
            KeywordsOnlyAdapter(), dim, metrics=metrics, policy=policy,
            events=events,
        )

    def query(
        self,
        rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches across all live buckets (tombstones filtered)."""
        return self._epoch.query(rect, keywords, counter)


class DynamicLcKw(Dynamized):
    """Insert/delete-capable LC-KW (halfspace constraints, exactly k words)."""

    epoch_class = HalfspaceEpoch

    def __init__(self, k: int, dim: int, metrics=None, policy=None, events=None):
        super().__init__(
            LcKwAdapter(k), dim, metrics=metrics, policy=policy, events=events
        )
        self.k = k

    def query(
        self,
        constraints,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches across all live buckets (tombstones filtered)."""
        return self._epoch.query(constraints, keywords, counter)


class DynamicSrpKw(Dynamized):
    """Insert/delete-capable SRP-KW (L2 ball, exactly k words)."""

    epoch_class = BallEpoch

    def __init__(self, k: int, dim: int, metrics=None, policy=None, events=None):
        super().__init__(
            SrpKwAdapter(k), dim, metrics=metrics, policy=policy, events=events
        )
        self.k = k

    def query(
        self,
        center,
        radius: float,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches across all live buckets (tombstones filtered)."""
        return self._epoch.query(center, radius, keywords, counter)


class DynamicMultiKOrp(Dynamized):
    """Insert/delete-capable multi-k ORP-KW (rect, 1..max_k words)."""

    epoch_class = RectEpoch

    def __init__(self, dim: int, max_k: int = 4, metrics=None, policy=None, events=None):
        super().__init__(
            MultiKOrpAdapter(max_k), dim, metrics=metrics, policy=policy,
            events=events,
        )
        self.max_k = max_k

    def query(
        self,
        rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Report matches across all live buckets (tombstones filtered)."""
        return self._epoch.query(rect, keywords, counter)

"""The two naive solutions of §1, for every problem in the paper.

* **Structured only** — answer the geometric predicate with a classic index
  (kd-tree range/region reporting), then discard candidates whose documents
  miss a keyword.  Cost grows with the *geometric* selectivity.
* **Keywords only** — intersect posting lists (inverted index), then discard
  candidates failing the geometric predicate.  Cost grows with the shortest
  *posting list*.

Either can be ``Θ(N)`` while reporting nothing, which is the drawback the
paper's indexes eliminate.  The benchmark harness runs these against every
index to reproduce the crossovers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..costmodel import CostCounter, ensure_counter
from ..dataset import (
    Dataset,
    KeywordObject,
    RectangleObject,
    validate_nonempty_keywords,
)
from ..geometry.halfspaces import HalfSpace
from ..geometry.rectangles import Rect
from ..geometry.regions import ConvexRegion
from ..kdtree import KdTree
from ..ksi.inverted import InvertedIndex


class StructuredOnlyIndex:
    """kd-tree region reporting + document post-filter."""

    def __init__(self, dataset: Dataset, leaf_size: int = 8):
        self.dataset = dataset
        # A kd-tree needs at least one point; an empty dataset simply has no
        # tree and every query reports nothing (after the usual validation).
        self._tree = (
            KdTree([obj.point for obj in dataset.objects], leaf_size=leaf_size)
            if dataset.objects
            else None
        )

    def query_rect(
        self, rect: Rect, keywords: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[KeywordObject]:
        """ORP-KW the naive way: range query, then keyword filter."""
        counter = ensure_counter(counter)
        if self._tree is None:
            validate_nonempty_keywords(keywords)
            return []
        hits = self._tree.range_query(rect, counter)
        return self._filter(hits, keywords, counter)

    def query_region(
        self, region, keywords: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[KeywordObject]:
        """LC/SP/SRP-KW the naive way: region query, then keyword filter."""
        counter = ensure_counter(counter)
        if self._tree is None:
            validate_nonempty_keywords(keywords)
            return []
        hits = self._tree.region_query(region, counter)
        return self._filter(hits, keywords, counter)

    def query_constraints(
        self,
        constraints: Sequence[HalfSpace],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """LC-KW via a conjunction of halfspaces."""
        return self.query_region(ConvexRegion(constraints), keywords, counter)

    def _filter(
        self, hits: Sequence[int], keywords: Sequence[int], counter: CostCounter
    ) -> List[KeywordObject]:
        words = tuple(validate_nonempty_keywords(keywords))
        result = []
        for idx in hits:
            counter.charge("structure_probes", len(words))
            obj = self.dataset.objects[idx]
            if obj.doc.issuperset(words):
                result.append(obj)
        return result


class KeywordsOnlyIndex:
    """Inverted-index intersection + geometric post-filter.

    ``backend="vectorized"`` routes rectangle and halfspace-conjunction
    queries through the numpy fast path (:mod:`repro.fast`): identical
    results and charged cost totals, batched execution.  The cost-model
    path remains the oracle (``tests/fast/test_backend_oracle.py``);
    predicate queries with an arbitrary callable always run scalar.
    """

    def __init__(
        self,
        dataset: Dataset,
        inverted: Optional[InvertedIndex] = None,
        backend: str = "cost_model",
    ):
        from ..fast import validate_backend

        self.dataset = dataset
        self._inverted = inverted if inverted is not None else InvertedIndex(dataset)
        self.backend = validate_backend(backend)
        self._fast = None

    def __getstate__(self):
        # The array mirror is derived state: rebuild on demand after
        # unpickling instead of bloating index files with numpy blocks.
        state = dict(self.__dict__)
        state["_fast"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Indexes pickled before the vectorized backend existed.
        self.__dict__.setdefault("backend", "cost_model")
        self.__dict__.setdefault("_fast", None)

    def _fast_backend(self):
        if self._fast is None:
            from ..fast import VectorizedBackend

            self._fast = VectorizedBackend(self.dataset)
        return self._fast

    def query_rect(
        self, rect: Rect, keywords: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[KeywordObject]:
        if self.backend == "vectorized":
            return self._fast_backend().query_rect(rect, keywords, counter)
        return self.query_predicate(rect.contains_point, keywords, counter)

    def query_region(
        self, region, keywords: Sequence[int], counter: Optional[CostCounter] = None
    ) -> List[KeywordObject]:
        if self.backend == "vectorized" and isinstance(region, ConvexRegion):
            return self._fast_backend().query_halfspaces(
                region.halfspaces, keywords, counter
            )
        return self.query_predicate(region.contains_point, keywords, counter)

    def query_constraints(
        self,
        constraints: Sequence[HalfSpace],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        region = ConvexRegion(constraints)
        return self.query_region(region, keywords, counter)

    def query_predicate(
        self,
        predicate: Callable[[Tuple[float, ...]], bool],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        counter = ensure_counter(counter)
        matches = self._inverted.matching_objects(keywords, counter)
        result: List[KeywordObject] = []
        for obj in matches:
            counter.charge("comparisons")
            if predicate(obj.point):
                result.append(obj)
        return result

    def nearest(
        self,
        q: Sequence[float],
        t: int,
        keywords: Sequence[int],
        distance: Callable[[Sequence[float], Sequence[float]], float],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """t nearest matches under ``distance``: intersect then sort."""
        counter = ensure_counter(counter)
        matches = self._inverted.matching_objects(keywords, counter)
        counter.charge("comparisons", len(matches))
        matches.sort(key=lambda obj: (distance(q, obj.point), obj.oid))
        return matches[:t]


class ScanAllNn:
    """Full-scan t-nearest-neighbour with keyword filter.

    The "structured only" extreme for nearest-neighbour problems: examine
    every object in distance order.  Θ(|D|) per query, always.
    """

    def __init__(self, dataset: Dataset):
        self.dataset = dataset

    def nearest(
        self,
        q: Sequence[float],
        t: int,
        keywords: Sequence[int],
        distance: Callable[[Sequence[float], Sequence[float]], float],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        counter = ensure_counter(counter)
        words = tuple(validate_nonempty_keywords(keywords))
        scored = []
        for obj in self.dataset.objects:
            counter.charge("objects_examined")
            if obj.doc.issuperset(words):
                scored.append((distance(q, obj.point), obj.oid, obj))
        scored.sort()
        return [obj for _dist, _oid, obj in scored[:t]]


class NaiveRectangleIndex:
    """Both naive solutions for RR-KW (rectangle data).

    ``structured`` scans all rectangles testing intersection; ``keywords``
    intersects posting lists then tests intersection.  (A classic interval /
    R-tree would sharpen the structured constants but not its Θ(candidates)
    behaviour, which is what the benchmarks compare against.)
    """

    def __init__(self, rectangles: Sequence[RectangleObject]):
        self.rectangles = list(rectangles)
        self._postings = {}
        for i, rect_obj in enumerate(self.rectangles):
            for word in rect_obj.doc:
                self._postings.setdefault(word, []).append(i)

    def query_structured(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[RectangleObject]:
        counter = ensure_counter(counter)
        words = tuple(validate_nonempty_keywords(keywords))
        result = []
        for rect_obj in self.rectangles:
            counter.charge("objects_examined")
            if rect_obj.intersects(lo, hi) and rect_obj.doc.issuperset(words):
                result.append(rect_obj)
        return result

    def query_keywords(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[RectangleObject]:
        counter = ensure_counter(counter)
        words = sorted(
            validate_nonempty_keywords(keywords),
            key=lambda w: len(self._postings.get(w, ())),
        )
        shortest = self._postings.get(words[0], ())
        rest = words[1:]
        result = []
        for idx in shortest:
            counter.charge("objects_examined")
            rect_obj = self.rectangles[idx]
            if all(w in rect_obj.doc for w in rest) and rect_obj.intersects(lo, hi):
                result.append(rect_obj)
        return result


def linf_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """L∞ distance (footnote 2)."""
    return max(abs(x - y) for x, y in zip(a, b))


def l2_distance_squared(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance (exact on integer inputs)."""
    return sum((x - y) ** 2 for x, y in zip(a, b))

"""RR-KW: rectangle reporting with keywords (Corollary 3).

A rectangle ``[a1,b1] x ... x [ad,bd]`` intersects the query rectangle
``[x1,y1] x ... x [xd,yd]`` iff the 2d-dimensional corner point
``(a1, b1, ..., ad, bd)`` lies in the 2d-rectangle
``(-inf, y1] x [x1, inf) x ... x (-inf, yd] x [xd, inf)`` (Appendix F).  So
RR-KW is answered by a 2d-dimensional ORP-KW index: the kd-tree index
(Theorem 1) when ``d = 1``, the dimension-reduction index (Theorem 2)
otherwise.

``d = 1`` is keyword search over *temporal* documents (each document carries
a lifespan interval); ``d >= 2`` covers geographic entities stored as
minimum bounding rectangles.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..costmodel import CostCounter
from ..dataset import Dataset, KeywordObject, RectangleObject
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from .dim_reduction import DimReductionOrpKw
from .orp_kw import OrpKwIndex

_INF = math.inf


class RrKwIndex:
    """The Corollary-3 index for rectangle reporting with keywords."""

    def __init__(self, rectangles: Sequence[RectangleObject], k: int):
        if not rectangles:
            raise ValidationError("RR-KW needs at least one rectangle")
        dims = {rect.dim for rect in rectangles}
        if len(dims) != 1:
            raise ValidationError(f"mixed rectangle dimensionalities: {sorted(dims)}")
        self.dim = dims.pop()
        self.k = k
        self.rectangles = list(rectangles)
        self._by_oid = {rect.oid: rect for rect in self.rectangles}
        if len(self._by_oid) != len(self.rectangles):
            raise ValidationError("duplicate rectangle ids")

        corner_objects = [
            KeywordObject(oid=rect.oid, point=_corner_point(rect), doc=rect.doc)
            for rect in self.rectangles
        ]
        corner_dataset = Dataset(corner_objects)
        if corner_dataset.dim <= 2:
            self._index = OrpKwIndex(corner_dataset, k)
        else:
            self._index = DimReductionOrpKw(corner_dataset, k)

    def query(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
    ) -> List[RectangleObject]:
        """Report rectangles intersecting ``[lo, hi]`` with all keywords."""
        if len(lo) != self.dim or len(hi) != self.dim:
            raise ValidationError(
                f"query corners must be {self.dim}-dimensional"
            )
        corner_lo: List[float] = []
        corner_hi: List[float] = []
        for axis in range(self.dim):
            # a_axis <= hi[axis]  and  b_axis >= lo[axis]
            corner_lo.extend((-_INF, float(lo[axis])))
            corner_hi.extend((float(hi[axis]), _INF))
        found = self._index.query(
            Rect(corner_lo, corner_hi), keywords, counter, max_report=max_report
        )
        return [self._by_oid[obj.oid] for obj in found]

    @property
    def input_size(self) -> int:
        """``N``."""
        return self._index.input_size

    @property
    def space_units(self) -> int:
        """Stored entries across the whole structure."""
        return self._index.space_units


def _corner_point(rect: RectangleObject):
    point: List[float] = []
    for axis in range(rect.dim):
        point.extend((rect.lo[axis], rect.hi[axis]))
    return tuple(point)

"""Candidate radii for the L∞ nearest-neighbour binary search (Corollary 4).

For a query point ``q``, a *candidate radius* is the coordinate difference
``|q[j] - e[j]|`` between ``q`` and some object ``e`` on some dimension
``j`` — the L∞ distance from ``q`` to its t-th closest match is always one of
these ``d * |D|`` values.  The binary search of Corollary 4 needs, per query,

* ``count_within(q, r)`` — how many candidate radii are ``<= r`` (a membership
  count the search uses to know when it has isolated a single candidate), and
* ``successor(q, r)`` — the smallest candidate radius strictly greater than
  ``r`` (the exact snap at the end of the search),

both in ``O(d log |D|)`` time via per-dimension sorted coordinate arrays —
the "d binary search trees, each created on the coordinates of a different
dimension" of the paper's proof.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence

import numpy as np

from ..costmodel import CostCounter, ensure_counter
from ..errors import ValidationError


class CandidateRadii:
    """Per-dimension sorted coordinate arrays for candidate-radius queries."""

    def __init__(self, points: Sequence[Sequence[float]]):
        if not len(points):
            raise ValidationError("candidate radii need at least one point")
        arr = np.asarray(points, dtype=float)
        self.dim = arr.shape[1]
        self.count = arr.shape[0]
        self._sorted: List[np.ndarray] = [
            np.sort(arr[:, axis]) for axis in range(self.dim)
        ]

    def count_within(
        self, q: Sequence[float], radius: float, counter: Optional[CostCounter] = None
    ) -> int:
        """Number of (object, dimension) pairs with ``|q[j] - e[j]| <= radius``."""
        counter = ensure_counter(counter)
        total = 0
        for axis in range(self.dim):
            coords = self._sorted[axis]
            left = bisect_left(coords, q[axis] - radius)
            right = bisect_right(coords, q[axis] + radius)
            counter.charge("comparisons", 2)
            total += right - left
        return total

    def successor(
        self, q: Sequence[float], radius: float, counter: Optional[CostCounter] = None
    ) -> Optional[float]:
        """Smallest candidate radius strictly greater than ``radius``.

        Returns ``None`` when no candidate exceeds ``radius``.
        """
        counter = ensure_counter(counter)
        best = math.inf
        for axis in range(self.dim):
            coords = self._sorted[axis]
            center = q[axis]
            # Candidates on this axis are |center - c|; the successor comes
            # from the first coordinate beyond center + radius (right side)
            # or the last one before center - radius (left side).
            right = bisect_right(coords, center + radius)
            counter.charge("comparisons", 2)
            if right < len(coords):
                best = min(best, float(coords[right] - center))
            left = bisect_left(coords, center - radius)
            if left > 0:
                best = min(best, float(center - coords[left - 1]))
        return None if math.isinf(best) else best

    def max_radius(self, q: Sequence[float]) -> float:
        """Largest candidate radius (the L∞ ball of this radius covers D)."""
        best = 0.0
        for axis in range(self.dim):
            coords = self._sorted[axis]
            best = max(best, abs(q[axis] - float(coords[0])), abs(q[axis] - float(coords[-1])))
        return best

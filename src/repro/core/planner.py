"""A hybrid query planner: choose between the naives and the fused index.

§1 frames three ways to answer a keyword+range query: structured only,
keywords only, or a fused index.  The paper proves the fused index's
worst-case superiority — but on easy queries the naives' constants can win
(a three-object posting list beats any tree walk).  A production system
therefore *plans*: estimate each strategy's cost from cheap statistics and
run the cheapest.

Estimates used (all O(k + log n) per query):

* keywords-only ≈ the shortest posting-list length;
* structured-only ≈ ``|D| * sel(q)``, with the rectangle selectivity
  ``sel(q)`` estimated on a fixed random sample of the points;
* fused ≈ ``N^(1-1/k) * (1 + est_OUT^(1/k))`` with
  ``est_OUT ≈ sel(q) * shortest posting * (second posting / |D|)`` — the
  independence heuristic classic to query optimizers.

The planner never affects correctness (all three strategies are exact);
mis-estimates only cost time, and the E-P1 benchmark measures how close the
planner lands to the per-query optimum.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_nonempty_keywords
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from ..ksi.inverted import InvertedIndex
from ..trace import span_for
from .baselines import KeywordsOnlyIndex, StructuredOnlyIndex
from .orp_kw import OrpKwIndex

STRATEGIES = ("fused", "keywords_only", "structured_only")


class HybridPlanner:
    """Cost-based routing between the three §1 strategies."""

    def __init__(
        self,
        dataset: Dataset,
        k: int,
        sample_size: int = 256,
        seed: int = 0,
        fused_index: Optional[OrpKwIndex] = None,
        inverted: Optional[InvertedIndex] = None,
        structured: Optional[StructuredOnlyIndex] = None,
        keywords_index: Optional[KeywordsOnlyIndex] = None,
        backend: str = "cost_model",
        fast_backend=None,
    ):
        """The optional ``fused_index`` / ``inverted`` / ``structured`` /
        ``keywords_index`` parameters let a caller that already built those
        structures (e.g. :class:`repro.service.QueryEngine`, which keeps one
        planner per ``k``) share them instead of paying for duplicates.

        ``backend="vectorized"`` executes the keywords-only strategy through
        the numpy fast path (:mod:`repro.fast`) — same results, same charged
        cost, batched execution; ``fast_backend`` shares an already-built
        :class:`~repro.fast.VectorizedBackend` the same way the index
        parameters do.
        """
        from ..fast import validate_backend

        if sample_size < 1:
            raise ValidationError("sample_size must be >= 1")
        self.dataset = dataset
        self.k = k
        self.backend = validate_backend(backend)
        self._fast = fast_backend
        # The fused index cannot be built over zero objects; an empty dataset
        # gets a fused-less planner whose every strategy reports nothing.
        if fused_index is not None:
            self._fused: Optional[OrpKwIndex] = fused_index
        elif dataset.objects:
            self._fused = OrpKwIndex(dataset, k)
        else:
            self._fused = None
        self._structured = (
            structured if structured is not None else StructuredOnlyIndex(dataset)
        )
        self._keywords = (
            keywords_index if keywords_index is not None else KeywordsOnlyIndex(dataset)
        )
        self._inverted = inverted if inverted is not None else InvertedIndex(dataset)
        rng = random.Random(seed)
        population = [obj.point for obj in dataset.objects]
        count = min(sample_size, len(population))
        self._sample = rng.sample(population, count)
        self.last_plan: Optional[Dict[str, float]] = None

    def __getstate__(self):
        # The array mirror is derived state: rebuild on demand after
        # unpickling instead of bloating index files with numpy blocks.
        state = dict(self.__dict__)
        state["_fast"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Planners pickled before the vectorized backend existed.
        self.__dict__.setdefault("backend", "cost_model")
        self.__dict__.setdefault("_fast", None)

    def _run_keywords(
        self, rect: Rect, keywords: Sequence[int], counter: CostCounter
    ) -> List[KeywordObject]:
        """Execute the keywords-only strategy on the configured backend."""
        if self.backend == "vectorized" and self.dataset.objects:
            if self._fast is None:
                from ..fast import VectorizedBackend

                self._fast = VectorizedBackend(self.dataset)
            return self._fast.query_rect(rect, keywords, counter)
        return self._keywords.query_rect(rect, keywords, counter)

    # -- estimation -----------------------------------------------------------

    def _selectivity(self, rect: Rect) -> float:
        if not self._sample:
            return 0.0
        hits = sum(1 for p in self._sample if rect.contains_point(p))
        return hits / len(self._sample)

    def estimate(self, rect: Rect, keywords: Sequence[int]) -> Dict[str, float]:
        """Per-strategy cost estimates (cost-model units)."""
        words = validate_nonempty_keywords(keywords)
        postings = sorted(self._inverted.frequency(w) for w in words)
        shortest = postings[0] if postings else 0
        second = postings[1] if len(postings) > 1 else shortest
        n = self.dataset.total_doc_size
        count = len(self.dataset)
        sel = self._selectivity(rect)
        est_out = sel * shortest * (second / max(count, 1))
        fused = n ** (1.0 - 1.0 / self.k) * (1.0 + est_out ** (1.0 / self.k))
        return {
            "keywords_only": float(shortest),
            "structured_only": max(sel * count, 1.0),
            "fused": fused,
            "est_out": est_out,
            "selectivity": sel,
        }

    def choose(self, rect: Rect, keywords: Sequence[int]) -> str:
        """Name of the naive strategy with the smallest estimate.

        This is the *fallback* choice — :meth:`query` races the fused index
        against it under a budget, so the fused index is preferred whenever
        it can finish within the best naive estimate.
        """
        estimates = self.estimate(rect, keywords)
        choice = min(
            ("keywords_only", "structured_only"), key=lambda s: estimates[s]
        )
        self.last_plan = dict(estimates, fallback=choice)
        return choice

    def strategies_by_cost(self, rect: Rect, keywords: Sequence[int]) -> List[str]:
        """All three strategies, cheapest estimate first.

        The serving layer's fallback chain: try each in turn under the
        remaining budget.  Ties break toward the fused index (its estimate is
        a worst-case bound, the naives' are expectations).
        """
        estimates = self.estimate(rect, keywords)
        order = sorted(
            STRATEGIES, key=lambda s: (estimates[s], STRATEGIES.index(s))
        )
        self.last_plan = dict(estimates, fallback=order[0])
        return order

    # -- execution ----------------------------------------------------------------

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Budgeted race: fused first, best naive as the fallback.

        The fused index runs under a hard budget equal to the cheapest naive
        estimate (plus slack); if it exceeds the budget — which can only
        happen on queries where a naive is genuinely competitive — the
        cheapest naive finishes the job.  Total cost is therefore at most
        ``~2x`` the best naive on every query while keeping the fused
        index's polynomial wins intact.  Always exact.
        """
        from ..errors import BudgetExceeded

        counter = ensure_counter(counter)
        fallback = self.choose(rect, keywords)
        if self._fused is not None:
            naive_estimate = self.last_plan[fallback]
            budget = int(naive_estimate) + 32
            probe = CostCounter(budget=budget)
            probe.tracer = counter.tracer
            with span_for(counter, "fused", "planner", budget=budget):
                try:
                    result = self._fused.query(rect, keywords, counter=probe)
                    counter.merge(probe)
                    self.last_plan["choice"] = "fused"
                    return result
                except BudgetExceeded:
                    counter.merge(probe)
        self.last_plan["choice"] = fallback
        with span_for(counter, fallback, "planner"):
            if fallback == "keywords_only":
                return self._run_keywords(rect, keywords, counter)
            return self._structured.query_rect(rect, keywords, counter)

    def query_with(
        self,
        strategy: str,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Run a specific strategy (for planner-quality measurements)."""
        if strategy not in STRATEGIES:
            raise ValidationError(f"unknown strategy {strategy!r}")
        counter = ensure_counter(counter)
        with span_for(counter, strategy, "planner"):
            if strategy == "fused":
                if self._fused is None:
                    validate_nonempty_keywords(keywords)
                    return []
                return self._fused.query(rect, keywords, counter)
            if strategy == "keywords_only":
                return self._run_keywords(rect, keywords, counter)
            return self._structured.query_rect(rect, keywords, counter)

    @property
    def space_units(self) -> int:
        """Fused index + baselines + the sample."""
        fused = self._fused.space_units if self._fused is not None else 0
        return fused + self._inverted.space_units + len(self._sample)

"""Large/small keyword machinery (§3.2).

At every node ``u`` of the space-partitioning tree, with
``N_u = Σ_{e in D_act_u} |e.Doc|``, a keyword ``w`` is

* **large** at ``u`` if ``|D_act_u(w)| >= N_u^(1-1/k)``, and
* **small** otherwise.

Since ``Σ_w |D_act_u(w)| = N_u``, at most ``N_u^(1/k)`` keywords are large.
``D_act_u(w)`` is *materialized* (stored explicitly) iff ``w`` is small at
``u`` but large at every proper ancestor — each (object, keyword) pair then
appears in at most one materialized list, which is what keeps the total
space linear (Appendix B).

The paper's k-dimensional emptiness bit array over large-keyword
combinations is realized as a hash set of the non-empty combinations
(see DESIGN.md): probing stays O(1) expected, and the stored combinations
are enumerated directly from the documents.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..dataset import KeywordObject


def node_weight(objects: Iterable[KeywordObject]) -> int:
    """``N_u``: total document size of the active set (equation (6))."""
    return sum(len(obj.doc) for obj in objects)


def large_small_split(
    objects: Sequence[KeywordObject],
    candidates: Set[int],
    weight: int,
    k: int,
) -> Tuple[Set[int], Dict[int, List[KeywordObject]]]:
    """Classify candidate keywords at a node.

    Parameters
    ----------
    objects:
        The node's active set ``D_act_u``.
    candidates:
        Keywords large at every proper ancestor (only these can still be
        queried at or below the node).
    weight:
        ``N_u`` (precomputed by the caller).
    k:
        The index's fixed number of query keywords.

    Returns
    -------
    (large, materialized):
        ``large`` — candidate keywords with ``|D_act_u(w)| >= N_u^(1-1/k)``;
        ``materialized`` — for each candidate that is small *and present*,
        the explicit object list ``D_act_u(w)``.
    """
    lists: Dict[int, List[KeywordObject]] = {}
    for obj in objects:
        for word in obj.doc:
            if word in candidates:
                lists.setdefault(word, []).append(obj)
    if weight <= 0:
        # Empty node: the paper allows at most N_u^(1/k) = 0 large keywords,
        # but the old float threshold 0.0 classified every present keyword
        # as large.  With a weight consistent with ``objects`` the lists are
        # empty anyway; an inconsistent caller still gets the honest answer
        # (everything small, hence materialized).
        return set(), lists
    large: Set[int] = set()
    materialized: Dict[int, List[KeywordObject]] = {}
    weight_power = weight ** (k - 1)
    for word, members in lists.items():
        # Exact integer form of |D_act_u(w)| >= N_u^(1-1/k): raising both
        # sides to the k-th power avoids the float ``weight ** (1 - 1/k)``,
        # whose rounding can flip the boundary (e.g. N_u = 8, k = 3: the
        # float threshold is 4.000000000000001, so a 4-member list — exactly
        # at the paper's threshold — was misclassified as small).
        if len(members) ** k >= weight_power:
            large.add(word)
        else:
            materialized[word] = members
    return large, materialized


def nonempty_combinations(
    objects: Iterable[KeywordObject], large: Set[int], k: int
) -> Set[Tuple[int, ...]]:
    """Sorted k-tuples of ``large`` keywords sharing at least one object.

    This is the content of the paper's per-child emptiness table: the tuple
    ``(w1 < w2 < ... < wk)`` is present iff
    ``D_act_v(w1) ∩ ... ∩ D_act_v(wk)`` is non-empty for the child ``v``
    whose active set is ``objects``.
    """
    combos: Set[Tuple[int, ...]] = set()
    for obj in objects:
        present = sorted(large.intersection(obj.doc))
        if len(present) >= k:
            combos.update(combinations(present, k))
    return combos

"""ORP-KW: orthogonal range reporting with keywords (Theorem 1).

Given a d-rectangle ``q`` and keywords ``w1..wk``, report every object of
``D`` inside ``q`` whose document contains all ``k`` keywords.  For
``d <= 2`` the index uses ``O(N)`` space and answers a query in
``O(N^(1-1/k) * (1 + OUT^(1/k)))`` time.

Construction = the four framework steps of §3:

1. a kd-tree over the *verbose* point set;
2. active/pivot distribution and large/small keyword classification;
3. the covered/crossing query walk;
4. rank-space reduction to remove the general-position assumption (§3.4).

The class also accepts ``d >= 3`` for the §3.5 remark's ablation: the same
construction works but the crossing sensitivity degrades to
``O(N^(1-1/max{k,d}))`` — Theorem 2's dimension-reduction index
(:class:`~repro.core.dim_reduction.DimReductionOrpKw`) is the right tool
there.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..costmodel import CostCounter
from ..dataset import Dataset, KeywordObject, validate_query_keywords
from ..errors import ValidationError
from ..geometry.rank_space import RankSpaceMap
from ..geometry.rectangles import Rect
from ..geometry.regions import RectRegion
from ..kdtree import KdTree
from .transform import KeywordTransform, QueryStats, verbose_points


class OrpKwIndex:
    """The Theorem-1 index for orthogonal range reporting with keywords."""

    def __init__(self, dataset: Dataset, k: int, threshold_scale: float = 1.0):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        self.dataset = dataset
        self.k = k
        self.dim = dataset.dim

        # Step 4 first (rank space): gives every object distinct integer
        # coordinates on every axis, i.e. general position for free.
        self._rank_map = RankSpaceMap([obj.point for obj in dataset.objects])
        self._rank_objects: List[KeywordObject] = [
            KeywordObject(
                oid=i,
                point=tuple(float(c) for c in self._rank_map.to_rank_point(i)),
                doc=obj.doc,
            )
            for i, obj in enumerate(dataset.objects)
        ]
        self._originals: List[KeywordObject] = list(dataset.objects)

        # Step 1: kd-tree on the verbose set, with a root cell strictly
        # enclosing all rank coordinates (so no data point lies on the root
        # boundary, mirroring the paper's root cell R^d).
        count = len(self._rank_objects)
        root_cell = Rect((-1.0,) * self.dim, (float(count),) * self.dim)
        tree = KdTree(
            verbose_points(self._rank_objects), leaf_size=1, root_cell=root_cell
        )

        # Steps 2 + 3 live in the generic transform.
        self._transform = KeywordTransform(
            self._rank_objects, tree, k, threshold_scale=threshold_scale,
            component="orp_kw",
        )

    # -- queries ---------------------------------------------------------------------

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
        stats: Optional[QueryStats] = None,
    ) -> List[KeywordObject]:
        """Report ``q ∩ D(w1..wk)`` for the d-rectangle ``q = rect``.

        The rectangle is given in *original* coordinates; the O(log N)
        rank-space conversion of §3.4 happens internally.
        """
        if rect.dim != self.dim:
            raise ValidationError(
                f"query rectangle is {rect.dim}-dimensional, data is {self.dim}-dimensional"
            )
        words = validate_query_keywords(keywords, self.k)
        rank_rect = self._rank_map.rect_to_rank(rect, counter)
        found = self._transform.query(
            RectRegion(rank_rect), words, counter, max_report, stats
        )
        return [self._originals[obj.oid] for obj in found]

    def is_empty(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        budget_factor: float = 16.0,
    ) -> bool:
        """Emptiness query in ``O(N^(1-1/k))`` (the paper's footnote 4).

        Run the reporting query under a hard budget of
        ``budget_factor * N^(1-1/k)`` cost units and with ``max_report=1``;
        if it reports an object, the answer is non-empty; if it exhausts the
        budget without finishing, the answer must also be non-empty (an
        empty-output query always terminates within ``O(N^(1-1/k))``).
        """
        from ..errors import BudgetExceeded

        budget = int(
            budget_factor * (8 + self.input_size ** (1.0 - 1.0 / self.k))
        )
        probe = CostCounter(budget=budget)
        try:
            found = self.query(rect, keywords, counter=probe, max_report=1)
            verdict = not found
        except BudgetExceeded:
            verdict = False
        if counter is not None:
            counter.merge(probe)
        return verdict

    # -- introspection -----------------------------------------------------------------

    @property
    def input_size(self) -> int:
        """``N`` (total document size)."""
        return self._transform.input_size

    @property
    def space_units(self) -> int:
        """Stored entries across the whole structure."""
        return self._transform.space_units

    def space_units_excluding(self, dead) -> int:
        """Stored entries minus the per-object entries of ``dead`` ids.

        ``dead`` holds object ids from this index's build dataset (for the
        dynamized wrapper these are bucket-local positions).  Shared
        keyword-level structure stays counted; see
        :meth:`KeywordTransform.space_units_excluding`.
        """
        return self._transform.space_units_excluding(dead)

    def max_pivot_size(self) -> int:
        """Largest internal pivot set (should be O(1) in rank space)."""
        return self._transform.max_pivot_size()

    def explain(self, rect: Rect, keywords: Sequence[int]) -> QueryStats:
        """Run the query collecting a structural breakdown.

        Returns a :class:`~repro.core.transform.QueryStats` whose
        :meth:`~repro.core.transform.QueryStats.describe` renders a
        human-readable account of where the query spent its time — pivot
        scans, materialized scans, and the two pruning mechanisms.
        """
        stats = QueryStats()
        self.query(rect, keywords, stats=stats)
        return stats

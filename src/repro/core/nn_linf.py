"""L∞NN-KW: t nearest neighbours under L∞ with keywords (Corollary 4).

The driver of Appendix F: the smallest radius ``r*`` whose L∞ ball
``B(q, r*)`` holds at least ``t`` keyword matches is always a *candidate
radius* (a per-dimension coordinate difference).  Binary-search the candidate
radii, deciding each probe with a **budgeted** ORP-KW query: if the
reporting query on ``B(q, r)`` does not finish within
``O(N^(1-1/k) * t^(1/k))`` cost units, the ball must contain at least ``t``
matches and the probe is cut short (the paper's footnote 4).

The probe budget is a constant multiple of the theoretical bound; on the
off-chance the constant is too tight for a particular instance (the final
report then yields fewer than ``t`` objects), the driver doubles the budget
and retries — preserving both correctness and the asymptotic cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_query_keywords
from ..errors import BudgetExceeded, ValidationError
from ..geometry.rectangles import Rect
from ..trace import span_for
from .baselines import linf_distance
from .orp_kw import OrpKwIndex
from .selection import CandidateRadii


class LinfNnIndex:
    """The Corollary-4 index for L∞ nearest neighbours with keywords."""

    def __init__(
        self,
        dataset: Dataset,
        k: int,
        budget_factor: float = 16.0,
        backend: str = "auto",
    ):
        if budget_factor <= 0:
            raise ValidationError("budget_factor must be positive")
        if backend not in ("auto", "kd", "dimred"):
            raise ValidationError(f"unknown backend {backend!r}")
        self.dataset = dataset
        self.k = k
        self.dim = dataset.dim
        self.budget_factor = budget_factor
        # Corollary 4 holds in any dimension; for d >= 3 the right substrate
        # is Theorem 2's dimension-reduction index (the kd route degrades to
        # the §3.5 remark's bound).
        if backend == "auto":
            backend = "dimred" if dataset.dim >= 3 else "kd"
        if backend == "dimred":
            from .dim_reduction import DimReductionOrpKw

            self._index = DimReductionOrpKw(dataset, k)
        else:
            self._index = OrpKwIndex(dataset, k)
        self._radii = CandidateRadii([obj.point for obj in dataset.objects])

    # -- queries -----------------------------------------------------------------

    def query(
        self,
        q: Sequence[float],
        t: int,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Return (up to) ``t`` keyword matches closest to ``q`` under L∞."""
        if len(q) != self.dim:
            raise ValidationError(f"query point must be {self.dim}-dimensional")
        if t < 1:
            raise ValidationError(f"t must be >= 1, got {t}")
        words = validate_query_keywords(keywords, self.k)
        counter = ensure_counter(counter)

        budget = self._probe_budget(t)
        while True:
            radius, verified_hi, fewer_than_t = self._search_radius(
                q, t, words, budget, counter
            )
            matches = self._collect(q, radius, words, t, fewer_than_t, budget, counter)
            if matches is None and radius < verified_hi:
                # The exact candidate snap can under-shoot by one float ulp;
                # the bisection's upper end was probe-verified to hold >= t.
                matches = self._collect(
                    q, verified_hi, words, t, fewer_than_t, budget, counter
                )
            if matches is not None:
                return matches
            budget *= 2  # constant was too tight for this instance; retry

    def query_approx_l2(
        self,
        q: Sequence[float],
        t: int,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Approximate L2 nearest neighbours via the L∞ index.

        §1.1 under Corollary 4: "the L∞ distance between any two points is a
        constant-factor approximation of their L2 distance"
        (``L∞ <= L2 <= sqrt(d) * L∞``), so the L∞ answer set is a
        ``sqrt(d)``-approximate L2 answer set at the same query cost.  The
        returned matches are re-ranked by true L2 distance.
        """
        found = self.query(q, t, keywords, counter)
        found.sort(
            key=lambda obj: (
                sum((a - b) ** 2 for a, b in zip(q, obj.point)),
                obj.oid,
            )
        )
        return found

    # -- internals ------------------------------------------------------------------

    def _probe_budget(self, t: int) -> int:
        n = self._index.input_size
        bound = n ** (1.0 - 1.0 / self.k) * t ** (1.0 / self.k)
        return int(self.budget_factor * (bound + 8))

    def _ball(self, q: Sequence[float], radius: float) -> Rect:
        # Inflate by a relative epsilon: reconstructing a ball boundary as
        # q +- |q - e| can miss the defining point e by one rounding ulp.
        # The inflation can only *add* candidates at distance radius(1+eps),
        # which the final sort-by-true-distance step filters back out.
        eps = 1e-12 * max(1.0, radius, max(abs(c) for c in q))
        slack = radius + eps
        return Rect(
            tuple(c - slack for c in q), tuple(c + slack for c in q)
        )

    def _ball_has_t(
        self,
        q: Sequence[float],
        radius: float,
        words,
        t: int,
        budget: int,
        counter: CostCounter,
    ) -> bool:
        """Budgeted probe: does ``B(q, radius)`` hold >= t keyword matches?"""
        probe = CostCounter(budget=budget)
        probe.tracer = counter.tracer
        with span_for(counter, "probe", "nn_linf"):
            try:
                found = self._index.query(
                    self._ball(q, radius), words, counter=probe, max_report=t
                )
                verdict = len(found) >= t
            except BudgetExceeded:
                verdict = True  # could not finish in time => at least t matches
        counter.merge(probe)
        return verdict

    def _search_radius(
        self,
        q: Sequence[float],
        t: int,
        words,
        budget: int,
        counter: CostCounter,
    ):
        """Binary search for the smallest candidate radius with >= t matches.

        Returns ``(radius, verified_hi, fewer_than_t)``: ``verified_hi`` is
        the smallest radius a probe has *positively confirmed* to hold >= t
        matches (the fallback if the exact candidate snap under-shoots);
        ``fewer_than_t`` is set when even the all-covering ball holds fewer
        than ``t`` matches.
        """
        lo = 0.0
        hi = self._radii.max_radius(q)
        if self._ball_has_t(q, 0.0, words, t, budget, counter):
            return 0.0, 0.0, False
        if not self._ball_has_t(q, hi, words, t, budget, counter):
            return hi, hi, True  # fewer than t matches exist in all of D
        # Invariant: P(lo) is False, P(hi) is True; shrink until (lo, hi]
        # contains a single candidate radius.
        while self._radii.count_within(q, hi, counter) - self._radii.count_within(
            q, lo, counter
        ) > 1:
            mid = (lo + hi) / 2.0
            if mid <= lo or mid >= hi:
                break  # float exhaustion; snap below
            if self._ball_has_t(q, mid, words, t, budget, counter):
                hi = mid
            else:
                lo = mid
        remaining = self._radii.count_within(q, hi, counter) - self._radii.count_within(
            q, lo, counter
        )
        if remaining == 1:
            successor = self._radii.successor(q, lo, counter)
            if successor is not None:
                return min(hi, successor), hi, False
        # Float exhaustion without isolating a single candidate (coincident
        # candidate values): fall back to the verified upper end.
        return hi, hi, False

    def _collect(
        self,
        q: Sequence[float],
        radius: float,
        words,
        t: int,
        fewer_than_t: bool,
        budget: int,
        counter: CostCounter,
    ) -> Optional[List[KeywordObject]]:
        """Final report on the ball; ``None`` signals a budget retry."""
        probe = CostCounter(budget=budget * 4)
        probe.tracer = counter.tracer
        with span_for(counter, "collect", "nn_linf"):
            try:
                found = self._index.query(self._ball(q, radius), words, counter=probe)
            except BudgetExceeded:
                counter.merge(probe)
                return None
        counter.merge(probe)
        if len(found) < t and not fewer_than_t:
            # A budgeted probe over-declared and the search stopped at a ball
            # that is too small; retry with a doubled budget.
            return None
        found.sort(key=lambda obj: (linf_distance(q, obj.point), obj.oid))
        return found[:t]

    @property
    def input_size(self) -> int:
        """``N``."""
        return self._index.input_size

    @property
    def space_units(self) -> int:
        """Stored entries across the whole structure."""
        return self._index.space_units

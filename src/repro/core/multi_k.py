"""Serving queries with a *varying* number of keywords.

Every index in the paper fixes ``k`` at construction ("Fix an integer
k >= 2") — the large/small threshold ``N_u^(1-1/k)`` depends on it.  A
deployed system, however, receives queries with one, two, or five keywords.
:class:`MultiKOrpIndex` is the practical wrapper: one Theorem-1 index per
``k`` in ``2..max_k`` plus an inverted index for ``k = 1`` (where scanning
the posting list *is* optimal: the list is exactly the answer candidate
set), and per-query routing.

Space: ``O(N * (max_k - 1))`` — a constant blow-up for constant ``max_k``,
which matches the paper's standing assumption that ``k = O(1)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from ..ksi.inverted import InvertedIndex
from .orp_kw import OrpKwIndex


class MultiKOrpIndex:
    """ORP-KW for any keyword count in ``1..max_k``."""

    def __init__(self, dataset: Dataset, max_k: int = 4):
        if max_k < 1:
            raise ValidationError(f"max_k must be >= 1, got {max_k}")
        self.dataset = dataset
        self.max_k = max_k
        self._inverted = InvertedIndex(dataset)
        self._by_k: Dict[int, OrpKwIndex] = {
            k: OrpKwIndex(dataset, k=k) for k in range(2, max_k + 1)
        }

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Route to the per-``k`` index matching ``len(keywords)``."""
        counter = ensure_counter(counter)
        words = list(dict.fromkeys(keywords))  # dedupe, keep order
        if not words:
            raise ValidationError("need at least one keyword")
        if len(words) > self.max_k:
            raise ValidationError(
                f"{len(words)} distinct keywords exceed max_k={self.max_k}"
            )
        if len(words) == 1:
            matches = self._inverted.matching_objects(words, counter)
            # Each containment test is a RAM-model step the Table-1
            # benchmarks measure; leaving it un-charged under-counts the
            # k = 1 route by exactly |D(w)| comparisons.
            result = []
            for obj in matches:
                counter.charge("comparisons")
                if rect.contains_point(obj.point):
                    result.append(obj)
            return result
        return self._by_k[len(words)].query(rect, words, counter)

    # -- component access (used by the serving layer) --------------------------

    @property
    def inverted(self) -> InvertedIndex:
        """The shared inverted index (the ``k = 1`` route)."""
        return self._inverted

    def fused_for(self, k: int) -> OrpKwIndex:
        """The Theorem-1 index serving exactly ``k`` keywords (``k >= 2``)."""
        if k not in self._by_k:
            raise ValidationError(
                f"no fused index for k={k} (this index serves k in 2..{self.max_k})"
            )
        return self._by_k[k]

    @property
    def input_size(self) -> int:
        """``N``."""
        return self.dataset.total_doc_size

    @property
    def space_units(self) -> int:
        """Sum over the per-k structures (O(N) each)."""
        return self._inverted.space_units + sum(
            index.space_units for index in self._by_k.values()
        )

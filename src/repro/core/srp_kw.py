"""SRP-KW: spherical range reporting with keywords (Corollary 6).

Lift each data point ``p in R^d`` to ``p' = (p, |p|^2) in R^{d+1}``; a query
ball of center ``c`` and radius ``r`` becomes a single halfspace in the
lifted space (see :mod:`repro.geometry.lifting`).  SRP-KW is thus LC-KW with
one linear constraint in ``d + 1`` dimensions, answered by the Theorem-5
index.  An exact distance post-filter guards against the float tolerance of
the halfspace test on the ball's boundary.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_query_keywords
from ..errors import ValidationError
from ..geometry.lifting import lift_point, lift_sphere_squared
from ..geometry.regions import ConvexRegion
from ..trace import span_for
from .lc_kw import SpKwIndex


class SrpKwIndex:
    """The Corollary-6 index for spherical range reporting with keywords."""

    def __init__(self, dataset: Dataset, k: int, scheme=None, backend: str = "cost_model"):
        from ..fast import validate_backend

        self.dataset = dataset
        self.k = k
        self.dim = dataset.dim
        lifted = [
            KeywordObject(oid=obj.oid, point=lift_point(obj.point), doc=obj.doc)
            for obj in dataset.objects
        ]
        self._originals = {obj.oid: obj for obj in dataset.objects}
        self._sp = SpKwIndex(Dataset(lifted), k, scheme=scheme)
        #: ``"vectorized"`` batches the exact distance post-filter
        #: (:func:`repro.fast.ball_mask`): same axis-order accumulation and
        #: tolerance as the scalar loop, identical results.
        self.backend = validate_backend(backend)

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Indexes pickled before the vectorized backend existed.
        self.__dict__.setdefault("backend", "cost_model")

    def query(
        self,
        center: Sequence[float],
        radius: float,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
    ) -> List[KeywordObject]:
        """Report keyword matches within L2 distance ``radius`` of ``center``."""
        if radius < 0:
            raise ValidationError("radius must be non-negative")
        return self.query_squared(
            center, float(radius) ** 2, keywords, counter, max_report
        )

    def query_squared(
        self,
        center: Sequence[float],
        radius_squared: float,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
    ) -> List[KeywordObject]:
        """Same as :meth:`query` but parameterized by ``radius^2``.

        The L2NN driver (Corollary 7) binary-searches squared radii, which
        remain exact integers on integer inputs.
        """
        if len(center) != self.dim:
            raise ValidationError(f"query center must be {self.dim}-dimensional")
        if radius_squared < 0:
            raise ValidationError("radius must be non-negative")
        words = validate_query_keywords(keywords, self.k)
        halfspace = lift_sphere_squared(center, radius_squared)
        counter = ensure_counter(counter)
        with span_for(counter, "lifted-query", "srp_kw"):
            found = self._sp.query_region(
                ConvexRegion([halfspace]), words, counter, max_report
            )
            result = []
            if self.backend == "vectorized" and found:
                from ..fast import ball_mask, points_array

                counter.charge("comparisons", len(found))
                originals = [self._originals[lifted_obj.oid] for lifted_obj in found]
                mask = ball_mask(points_array(originals), center, radius_squared)
                for obj, ok in zip(originals, mask):
                    if ok:
                        result.append(obj)
            else:
                for lifted_obj in found:
                    counter.charge("comparisons")
                    obj = self._originals[lifted_obj.oid]
                    dist_sq = sum((a - b) ** 2 for a, b in zip(obj.point, center))
                    if dist_sq <= radius_squared + 1e-9 * max(1.0, radius_squared):
                        result.append(obj)
        return result

    def is_empty(
        self,
        center: Sequence[float],
        radius: float,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        budget_factor: float = 16.0,
    ) -> bool:
        """Budgeted emptiness (footnote 4): is the ball free of matches?"""
        from ..costmodel import CostCounter as _Counter
        from ..errors import BudgetExceeded

        exponent = 1.0 - 1.0 / max(self.k, self.dim + 1)
        budget = int(budget_factor * (8 + self.input_size**exponent))
        probe = _Counter(budget=budget)
        try:
            found = self.query(center, radius, keywords, counter=probe, max_report=1)
            verdict = not found
        except BudgetExceeded:
            verdict = False
        if counter is not None:
            counter.merge(probe)
        return verdict

    @property
    def input_size(self) -> int:
        """``N``."""
        return self._sp.input_size

    @property
    def space_units(self) -> int:
        """Stored entries across the whole structure."""
        return self._sp.space_units

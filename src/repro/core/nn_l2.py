"""L2NN-KW: t nearest neighbours under L2 with keywords (Corollary 7).

As in the paper, the input points live in ``N^d`` (``O(log N)``-bit
integers), so every pairwise *squared* distance is an exact integer in a
polynomial range; the smallest squared radius whose ball holds at least
``t`` keyword matches is found by plain integer binary search with budgeted
SRP-KW probes — ``O(log N)`` probes total, each costing the Corollary-6
query bound at ``OUT <= t``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_query_keywords
from ..errors import BudgetExceeded, ValidationError
from ..trace import span_for
from .baselines import l2_distance_squared
from .srp_kw import SrpKwIndex


class L2NnIndex:
    """The Corollary-7 index for L2 nearest neighbours with keywords."""

    def __init__(
        self,
        dataset: Dataset,
        k: int,
        scheme=None,
        budget_factor: float = 16.0,
    ):
        for obj in dataset.objects:
            for coord in obj.point:
                if coord != int(coord):
                    raise ValidationError(
                        "L2NN-KW requires integer coordinates (the paper's N^d); "
                        f"object {obj.oid} has {obj.point}"
                    )
        self.dataset = dataset
        self.k = k
        self.dim = dataset.dim
        self.budget_factor = budget_factor
        self._srp = SrpKwIndex(dataset, k, scheme=scheme)
        points = [obj.point for obj in dataset.objects]
        self._coord_lo = tuple(min(p[i] for p in points) for i in range(self.dim))
        self._coord_hi = tuple(max(p[i] for p in points) for i in range(self.dim))

    def query(
        self,
        q: Sequence[float],
        t: int,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
    ) -> List[KeywordObject]:
        """Return (up to) ``t`` keyword matches closest to ``q`` under L2."""
        if len(q) != self.dim:
            raise ValidationError(f"query point must be {self.dim}-dimensional")
        if t < 1:
            raise ValidationError(f"t must be >= 1, got {t}")
        if any(c != int(c) for c in q):
            raise ValidationError("L2NN-KW query points must be integral")
        words = validate_query_keywords(keywords, self.k)
        counter = ensure_counter(counter)

        budget = self._probe_budget(t)
        while True:
            radius_sq, fewer_than_t = self._search_radius(q, t, words, budget, counter)
            matches = self._collect(q, radius_sq, words, t, fewer_than_t, budget, counter)
            if matches is not None:
                return matches
            budget *= 2

    # -- internals ----------------------------------------------------------------

    def _probe_budget(self, t: int) -> int:
        n = self._srp.input_size
        bound = n ** (1.0 - 1.0 / self.k) * t ** (1.0 / self.k)
        return int(self.budget_factor * (bound + 8))

    def _ball_has_t(
        self,
        q: Sequence[float],
        radius_sq: int,
        words,
        t: int,
        budget: int,
        counter: CostCounter,
    ) -> bool:
        probe = CostCounter(budget=budget)
        probe.tracer = counter.tracer
        with span_for(counter, "probe", "nn_l2"):
            try:
                found = self._srp.query_squared(
                    q, float(radius_sq), words, counter=probe, max_report=t
                )
                verdict = len(found) >= t
            except BudgetExceeded:
                verdict = True
        counter.merge(probe)
        return verdict

    def _max_radius_squared(self, q: Sequence[float]) -> int:
        """Upper bound on any data point's squared distance from ``q``.

        Computed from the per-dimension coordinate extremes so the search
        never scans the dataset.
        """
        total = 0
        for axis in range(self.dim):
            span = max(abs(q[axis] - self._coord_lo[axis]), abs(q[axis] - self._coord_hi[axis]))
            total += int(span) ** 2 + 2 * int(span) + 1
        return total

    def _search_radius(
        self,
        q: Sequence[float],
        t: int,
        words,
        budget: int,
        counter: CostCounter,
    ):
        """Integer binary search over squared radii.

        The candidate space is ``[0, max pairwise squared distance]`` — a
        ``N^{O(1)}`` range, so ``O(log N)`` probes suffice.
        """
        hi = self._max_radius_squared(q)
        counter.charge("comparisons", int(math.log2(max(hi, 2))))
        if self._ball_has_t(q, 0, words, t, budget, counter):
            return 0, False
        if not self._ball_has_t(q, hi, words, t, budget, counter):
            return hi, True
        lo = 0  # P(lo) False, P(hi) True
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._ball_has_t(q, mid, words, t, budget, counter):
                hi = mid
            else:
                lo = mid
        return hi, False

    def _collect(
        self,
        q: Sequence[float],
        radius_sq: int,
        words,
        t: int,
        fewer_than_t: bool,
        budget: int,
        counter: CostCounter,
    ) -> Optional[List[KeywordObject]]:
        probe = CostCounter(budget=budget * 4)
        probe.tracer = counter.tracer
        with span_for(counter, "collect", "nn_l2"):
            try:
                found = self._srp.query_squared(
                    q, float(radius_sq), words, counter=probe
                )
            except BudgetExceeded:
                counter.merge(probe)
                return None
        counter.merge(probe)
        if len(found) < t and not fewer_than_t:
            return None
        found.sort(key=lambda obj: (l2_distance_squared(q, obj.point), obj.oid))
        return found[:t]

    @property
    def input_size(self) -> int:
        """``N``."""
        return self._srp.input_size

    @property
    def space_units(self) -> int:
        """Stored entries across the whole structure."""
        return self._srp.space_units

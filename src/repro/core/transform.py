"""The index-transformation framework of §3, generic over the tree.

The paper's "primary technical contribution is a generic framework" that
converts a *space-partitioning* geometry index into one that also supports
keyword predicates.  This module is that framework, parameterized by the
underlying tree (kd-tree for Theorem 1, partition tree for Theorem 12):

Step 1 — the caller supplies a space-partitioning tree built on the
*verbose set* ``P`` (every object replicated ``|e.Doc|`` times), so that
``N_u <= |P_u|`` holds at every node.

Step 2 — objects are distributed over the tree: an object in a node's
active set is *pushed down* into the child whose cell interior contains it;
objects landing on a child-cell boundary join the node's *pivot set*.
Keywords are classified large/small per node and small keywords'
active lists are materialized (see :mod:`repro.core.keywords`).

Step 3 — queries descend from the root: pivot sets are scanned at every
visited node; descent continues into a child only when all ``k`` query
keywords are large, their combination is non-empty in the child, and the
query region intersects the child's cell.  When some keyword is small, its
materialized list is scanned and the descent stops.

Step 4 — general position is the caller's responsibility (rank space for
ORP-KW, §3.4; index-order tie-breaking inside the tree builders otherwise).

The framework stops *storing* structure below any node where fewer than
``k`` keywords are large: no query can descend past such a node (a query
needs ``k`` distinct large keywords to continue), so children, emptiness
tables and deeper materialized lists would be dead weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple  # noqa: F401

from ..costmodel import CostCounter, ensure_counter
from ..dataset import KeywordObject
from ..geometry.rectangles import Rect
from .keywords import large_small_split, node_weight, nonempty_combinations


def _interior_contains(cell, point: Sequence[float]) -> bool:
    """Open (interior) membership of ``point`` in ``cell``."""
    if isinstance(cell, Rect):
        return cell.interior_contains(point)
    return all(h.strictly_contains(point) for h in cell.halfspaces)


class _SearchDone(Exception):
    """Internal: raised to unwind once ``max_report`` results are collected."""


class TransformNode:
    """A node of the transformed index (mirrors a prefix of the tree)."""

    __slots__ = (
        "cell",
        "level",
        "weight",
        "children",
        "pivot",
        "large",
        "combos",
        "materialized",
    )

    def __init__(self, cell, level: int, weight: int):
        self.cell = cell
        self.level = level
        #: the paper's N_u.
        self.weight = weight
        self.children: List["TransformNode"] = []
        #: the pivot set D_pvt_u (objects stored at this node).
        self.pivot: List[KeywordObject] = []
        #: keywords large at this node.
        self.large: Set[int] = set()
        #: per-child non-empty k-combination tables.
        self.combos: List[Set[Tuple[int, ...]]] = []
        #: materialized small-keyword lists D_act_u(w).
        self.materialized: Dict[int, List[KeywordObject]] = {}

    @property
    def is_terminal(self) -> bool:
        return not self.children


@dataclass
class QueryStats:
    """Optional per-query structural statistics (for the F1/F2 benches and
    the ``explain`` facility).

    ``crossing_leaf_power_sum`` is the paper's crossing sensitivity summand
    ``Σ N_z^(1-1/k)`` over the crossing leaves of the query tree (eq. (7)).
    """

    covered_nodes: int = 0
    crossing_nodes: int = 0
    crossing_leaf_power_sum: float = 0.0
    visited_levels: List[int] = field(default_factory=list)
    #: nodes where the query took the small-keyword materialized-scan branch.
    materialized_scans: int = 0
    #: objects read from materialized lists.
    materialized_objects: int = 0
    #: objects read from pivot sets.
    pivot_objects: int = 0
    #: child descents skipped because the k-combination was empty.
    combo_rejections: int = 0
    #: child descents skipped because the cell missed the query region.
    cell_rejections: int = 0

    def per_level_counts(self) -> Dict[int, int]:
        """Visited-node histogram keyed by tree level."""
        histogram: Dict[int, int] = {}
        for level in self.visited_levels:
            histogram[level] = histogram.get(level, 0) + 1
        return histogram

    def describe(self) -> str:
        """Human-readable multi-line explanation of where the query went."""
        lines = [
            f"visited nodes       : {len(self.visited_levels)} "
            f"(covered {self.covered_nodes}, crossing {self.crossing_nodes})",
            f"pivot objects read  : {self.pivot_objects}",
            f"materialized scans  : {self.materialized_scans} "
            f"({self.materialized_objects} objects)",
            f"descents pruned     : {self.combo_rejections} by emptiness "
            f"tables, {self.cell_rejections} by geometry",
            f"crossing power sum  : {self.crossing_leaf_power_sum:.1f} "
            f"(Lemma 10 quantity)",
        ]
        histogram = self.per_level_counts()
        if histogram:
            spread = ", ".join(
                f"L{level}:{count}" for level, count in sorted(histogram.items())
            )
            lines.append(f"nodes per level     : {spread}")
        return "\n".join(lines)


class KeywordTransform:
    """Keyword-aware index built from a space-partitioning tree.

    Parameters
    ----------
    objects:
        The dataset ``D``.
    tree:
        A built :class:`~repro.kdtree.tree.KdTree` or
        :class:`~repro.partitiontree.tree.PartitionTree` over the verbose
        point set of ``objects`` (callers use :func:`verbose_points`).
    k:
        Fixed number of query keywords (``>= 2``).
    threshold_scale:
        Multiplier applied to the large/small threshold ``N_u^(1-1/k)``.
        The paper's choice is ``1.0``; other values exist only for the A2
        ablation benchmark.
    component:
        Label used for this index's spans when the query counter carries a
        :class:`~repro.trace.Tracer` (``"orp_kw"`` for the kd-tree route,
        ``"sp_kw"`` for the partition-tree route).
    """

    def __init__(
        self,
        objects: Sequence[KeywordObject],
        tree,
        k: int,
        threshold_scale: float = 1.0,
        component: str = "transform",
    ):
        self.k = k
        self.component = component
        self.objects = list(objects)
        self.tree = tree
        self.threshold_scale = threshold_scale
        self.input_size = node_weight(self.objects)
        candidates = set()
        for obj in self.objects:
            candidates.update(obj.doc)
        self.root = self._build(tree.root, self.objects, candidates)

    # -- construction (§3.2) ------------------------------------------------------

    def _build(
        self,
        tree_node,
        active: List[KeywordObject],
        candidates: Set[int],
    ) -> TransformNode:
        weight = node_weight(active)
        node = TransformNode(tree_node.cell, tree_node.level, weight)

        if tree_node.is_leaf or not active:
            # True leaf: the pivot set is the whole active set.
            node.pivot = active
            return node

        # Distribute: push each object into the unique child whose cell
        # interior contains it; boundary objects become pivots.
        child_cells = [child.cell for child in tree_node.children]
        buckets: List[List[KeywordObject]] = [[] for _ in child_cells]
        for obj in active:
            placed = False
            for child_idx, cell in enumerate(child_cells):
                if _interior_contains(cell, obj.point):
                    buckets[child_idx].append(obj)
                    placed = True
                    break
            if not placed:
                node.pivot.append(obj)

        large, materialized = self._classify(active, candidates, weight)
        node.large = large
        node.materialized = materialized

        if len(large) < self.k:
            # No query can descend (it would need k distinct large keywords);
            # everything below is covered by the materialized lists.
            return node

        for child_tree_node, bucket in zip(tree_node.children, buckets):
            child = self._build(child_tree_node, bucket, set(large))
            node.children.append(child)
            node.combos.append(nonempty_combinations(bucket, large, self.k))
        return node

    def _classify(
        self,
        active: Sequence[KeywordObject],
        candidates: Set[int],
        weight: int,
    ) -> Tuple[Set[int], Dict[int, List[KeywordObject]]]:
        if self.threshold_scale == 1.0:
            return large_small_split(active, candidates, weight, self.k)
        # Ablation path: rescale the threshold by pretending the weight is
        # (scale * N_u^(1-1/k))^(k/(k-1)).
        effective = (
            self.threshold_scale * weight ** (1.0 - 1.0 / self.k)
        ) ** (self.k / (self.k - 1.0))
        return large_small_split(active, candidates, max(int(effective), 1), self.k)

    # -- queries (§3.3) -------------------------------------------------------------

    def query(
        self,
        region,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
        stats: Optional[QueryStats] = None,
    ) -> List[KeywordObject]:
        """Report every object in ``region`` whose document has all keywords.

        ``region`` is any object from :mod:`repro.geometry.regions` with the
        same dimensionality as the data.  ``max_report`` stops the search
        once that many results are found (used by the budgeted NN probes).
        May raise :class:`~repro.errors.BudgetExceeded` if ``counter`` has a
        budget.
        """
        counter = ensure_counter(counter)
        words = tuple(keywords)
        result: List[KeywordObject] = []
        try:
            self._visit(self.root, region, words, result, counter, max_report, stats)
        except _SearchDone:
            pass
        return result

    def _visit(
        self,
        node: TransformNode,
        region,
        words: Tuple[int, ...],
        result: List[KeywordObject],
        counter: CostCounter,
        max_report: Optional[int],
        stats: Optional[QueryStats],
    ) -> None:
        # Depth-keyed span: all nodes visited at this level (under the same
        # ancestor chain) aggregate into one span, so the span tree is a
        # chain mirroring the recursion depth, not one span per node.  The
        # None-guard keeps the untraced hot path at a single attribute load.
        tracer = counter.tracer
        if tracer is None:
            self._visit_node(node, region, words, result, counter, max_report, stats)
            return
        tracer.push(f"depth={node.level}", self.component)
        try:
            self._visit_node(node, region, words, result, counter, max_report, stats)
        finally:
            tracer.pop()

    def _visit_node(
        self,
        node: TransformNode,
        region,
        words: Tuple[int, ...],
        result: List[KeywordObject],
        counter: CostCounter,
        max_report: Optional[int],
        stats: Optional[QueryStats],
    ) -> None:
        counter.charge("nodes_visited")
        if stats is not None:
            stats.visited_levels.append(node.level)
            if region.covers(node.cell):
                stats.covered_nodes += 1
            else:
                stats.crossing_nodes += 1
                if node.is_terminal or not all(w in node.large for w in words):
                    exponent = 1.0 - 1.0 / self.k
                    stats.crossing_leaf_power_sum += node.weight ** exponent

        if not node.is_terminal or node.materialized:
            counter.charge("structure_probes", len(words))
            small = next((w for w in words if w not in node.large), None)
            if small is not None:
                # D_act_u(small) covers every relevant object at or below u —
                # including u's own pivots — so scan it *instead of* the pivot
                # set (scanning both would double-report pivot objects).
                if stats is not None:
                    stats.materialized_scans += 1
                    stats.materialized_objects += len(node.materialized.get(small, ()))
                for obj in node.materialized.get(small, ()):
                    counter.charge("objects_examined")
                    if region.contains_point(obj.point) and obj.doc.issuperset(words):
                        self._report(obj, result, max_report)
                return

        if stats is not None:
            stats.pivot_objects += len(node.pivot)
        for obj in node.pivot:
            counter.charge("objects_examined")
            if region.contains_point(obj.point) and obj.doc.issuperset(words):
                self._report(obj, result, max_report)

        key = tuple(sorted(words))
        for child, combos in zip(node.children, node.combos):
            counter.charge("structure_probes")
            if key not in combos:
                if stats is not None:
                    stats.combo_rejections += 1
                continue
            if not region.intersects(child.cell):
                if stats is not None:
                    stats.cell_rejections += 1
                continue
            self._visit(child, region, words, result, counter, max_report, stats)

    @staticmethod
    def _report(
        obj: KeywordObject, result: List[KeywordObject], max_report: Optional[int]
    ) -> None:
        result.append(obj)
        if max_report is not None and len(result) >= max_report:
            raise _SearchDone

    # -- introspection -----------------------------------------------------------------

    @property
    def space_units(self) -> int:
        """Stored entries: pivots, large sets, combos, materialized lists, nodes."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1 + len(node.pivot) + len(node.large)
            total += sum(len(c) for c in node.combos)
            total += sum(len(lst) for lst in node.materialized.values())
            stack.extend(node.children)
        return total

    def space_units_excluding(self, dead) -> int:
        """Stored entries as :attr:`space_units`, minus ``dead`` objects' own.

        ``dead`` is a set of object ids from this transform's build dataset.
        Pivot and materialized-list slots belong to a single object and are
        skipped when that object is dead; node, large-set, and combination
        entries are keyword-level structure shared by live and dead objects
        alike and stay counted.  The dynamized wrapper uses this to report
        live-object space between tombstone rebuilds.
        """
        if not dead:
            return self.space_units
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1 + len(node.large)
            total += sum(1 for obj in node.pivot if obj.oid not in dead)
            total += sum(len(c) for c in node.combos)
            total += sum(
                sum(1 for obj in lst if obj.oid not in dead)
                for lst in node.materialized.values()
            )
            stack.extend(node.children)
        return total

    def node_count(self) -> int:
        """Number of transform nodes actually stored."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def max_pivot_size(self) -> int:
        """Largest pivot set over internal nodes (general-position check)."""
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.is_terminal:
                best = max(best, len(node.pivot))
            stack.extend(node.children)
        return best


def verbose_points(objects: Sequence[KeywordObject]) -> List[Tuple[float, ...]]:
    """The verbose set ``P`` of §3.2: ``|e.Doc|`` copies of each object's point.

    The tree is built on these points so that every node's active document
    mass ``N_u`` is dominated by its subtree size ``|P_u|``, which is what
    turns tree balance into the ``N_u = O(N / 2^level)`` decay the analysis
    needs.
    """
    points: List[Tuple[float, ...]] = []
    for obj in objects:
        points.extend([obj.point] * len(obj.doc))
    return points

"""SP-KW and LC-KW: simplex / linear-constraint reporting with keywords.

Theorem 12 (Appendix D) converts a partition tree into an SP-KW index via
the same four framework steps as Theorem 1, replacing the kd-tree with a
partition tree and rectangles with simplices.  Theorem 5 then answers an
LC-KW query (``s = O(1)`` linear constraints) by decomposing its feasible
polyhedron — clipped to a box enclosing all data — into ``O(1)`` simplices
and issuing one SP-KW query per simplex.

The partition scheme is pluggable (see DESIGN.md for the substitution of
Chan's optimal partition tree): the default box scheme gives exact
guarantees for axis-parallel facets and practical behaviour for oblique
ones; the Willard scheme (d = 2) restores a provable crossing bound for
arbitrary lines at a weaker exponent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_query_keywords
from ..errors import ValidationError
from ..geometry.halfspaces import HalfSpace
from ..geometry.rectangles import Rect
from ..geometry.regions import ConvexRegion, EverythingRegion
from ..geometry.simplex import Simplex
from ..geometry.triangulate import decompose_polytope
from ..geometry.polytope import polytope_from_constraints
from ..partitiontree import ConvexCell, PartitionTree, WillardScheme
from ..trace import span_for
from .transform import KeywordTransform, QueryStats, verbose_points


class SpKwIndex:
    """Theorem 12: simplex reporting with keywords."""

    def __init__(self, dataset: Dataset, k: int, scheme=None):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        self.dataset = dataset
        self.k = k
        self.dim = dataset.dim
        self._originals = list(dataset.objects)

        points = [obj.point for obj in dataset.objects]
        lo = tuple(min(p[i] for p in points) - 1.0 for i in range(self.dim))
        hi = tuple(max(p[i] for p in points) + 1.0 for i in range(self.dim))
        root_cell = Rect(lo, hi)
        if isinstance(scheme, WillardScheme):
            root_cell = ConvexCell.from_rect(root_cell)
        tree = PartitionTree(
            verbose_points(dataset.objects),
            scheme=scheme,
            leaf_size=1,
            root_cell=root_cell,
        )
        self._transform = KeywordTransform(
            dataset.objects, tree, k, component="sp_kw"
        )
        self.data_lo, self.data_hi = lo, hi

    def query_simplex(
        self,
        simplex: Simplex,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
        stats: Optional[QueryStats] = None,
    ) -> List[KeywordObject]:
        """Report ``q ∩ D(w1..wk)`` for the d-simplex ``q``."""
        words = validate_query_keywords(keywords, self.k)
        region = ConvexRegion.from_simplex(simplex)
        return self._transform.query(region, words, counter, max_report, stats)

    def query_region(
        self,
        region: ConvexRegion,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
        stats: Optional[QueryStats] = None,
    ) -> List[KeywordObject]:
        """Report matches inside an arbitrary convex halfspace-intersection.

        A convex region with ``c`` facets is itself a valid query range for
        the framework (the covered/crossing analysis only uses convexity and
        the constant facet count), so single-region queries skip the simplex
        decomposition entirely.
        """
        words = validate_query_keywords(keywords, self.k)
        return self._transform.query(region, words, counter, max_report, stats)

    @property
    def input_size(self) -> int:
        """``N``."""
        return self._transform.input_size

    @property
    def space_units(self) -> int:
        """Stored entries across the whole structure."""
        return self._transform.space_units


class LcKwIndex:
    """Theorem 5: linear-conjunction reporting with keywords.

    A thin driver over :class:`SpKwIndex`: clip the constraint polyhedron to
    an enclosing data box, triangulate, query each simplex, deduplicate (the
    simplices share facets), and apply the exact constraint filter.
    """

    def __init__(self, dataset: Dataset, k: int, scheme=None, backend: str = "cost_model"):
        from ..fast import validate_backend

        self._sp = SpKwIndex(dataset, k, scheme=scheme)
        self.dataset = dataset
        self.k = k
        self.dim = dataset.dim
        #: ``"vectorized"`` batches the exact constraint post-filter
        #: (:func:`repro.fast.region_mask`): same predicate term order, same
        #: per-candidate ``comparisons`` charge, identical results.
        self.backend = validate_backend(backend)

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Indexes pickled before the vectorized backend existed.
        self.__dict__.setdefault("backend", "cost_model")

    def query(
        self,
        constraints: Sequence[HalfSpace],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
    ) -> List[KeywordObject]:
        """Report every object satisfying all ``constraints`` and keywords."""
        words = validate_query_keywords(keywords, self.k)
        for constraint in constraints:
            if constraint.dim != self.dim:
                raise ValidationError(
                    f"constraint is {constraint.dim}-dimensional, data is "
                    f"{self.dim}-dimensional"
                )
        counter = ensure_counter(counter)
        if len(constraints) <= 1:
            # A single halfspace (or no constraint at all) is already a
            # convex query region; no decomposition needed.
            region = (
                ConvexRegion(constraints)
                if constraints
                else EverythingRegion(self.dim)
            )
            with span_for(counter, "region", "lc_kw"):
                found = self._sp.query_region(region, words, counter, max_report)
                result = []
                if self.backend == "vectorized" and found:
                    counter.charge("comparisons", len(found))
                    for obj, ok in zip(found, self._batch_satisfies(found, constraints)):
                        if ok:
                            result.append(obj)
                else:
                    for obj in found:
                        counter.charge("comparisons")
                        if self._satisfies(obj, constraints):
                            result.append(obj)
            return result

        polytope = polytope_from_constraints(
            constraints, self._sp.data_lo, self._sp.data_hi
        )
        simplices = decompose_polytope(polytope)
        seen = set()
        result: List[KeywordObject] = []
        for index, simplex in enumerate(simplices):
            remaining = None if max_report is None else max_report - len(result)
            if remaining is not None and remaining <= 0:
                break
            with span_for(counter, f"simplex-{index}", "lc_kw"):
                found = self._sp.query_simplex(
                    simplex, words, counter, max_report=remaining
                )
                if self.backend == "vectorized" and found:
                    counter.charge("comparisons", len(found))
                    for obj, ok in zip(found, self._batch_satisfies(found, constraints)):
                        if obj.oid not in seen and ok:
                            seen.add(obj.oid)
                            result.append(obj)
                else:
                    for obj in found:
                        counter.charge("comparisons")
                        if obj.oid not in seen and self._satisfies(obj, constraints):
                            seen.add(obj.oid)
                            result.append(obj)
        return result

    def is_empty(
        self,
        constraints: Sequence[HalfSpace],
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        budget_factor: float = 16.0,
    ) -> bool:
        """Emptiness query via the budgeted-probe trick (footnote 4)."""
        from ..errors import BudgetExceeded

        exponent = 1.0 - 1.0 / max(self.k, self.dim)
        budget = int(budget_factor * (8 + self.input_size**exponent))
        probe = CostCounter(budget=budget)
        try:
            found = self.query(constraints, keywords, counter=probe, max_report=1)
            verdict = not found
        except BudgetExceeded:
            verdict = False
        if counter is not None:
            counter.merge(probe)
        return verdict

    @staticmethod
    def _satisfies(obj: KeywordObject, constraints: Sequence[HalfSpace]) -> bool:
        return all(h.contains(obj.point) for h in constraints)

    @staticmethod
    def _batch_satisfies(found: Sequence[KeywordObject], constraints):
        """Vectorized :meth:`_satisfies` over a candidate list (bool mask)."""
        from ..fast import points_array, region_mask

        return region_mask(points_array(found), constraints)

    @property
    def input_size(self) -> int:
        """``N``."""
        return self._sp.input_size

    @property
    def space_units(self) -> int:
        """Stored entries across the whole structure."""
        return self._sp.space_units

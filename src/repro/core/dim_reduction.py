"""ORP-KW in d >= 3 dimensions: the dimension-reduction technique of §4.

Theorem 2 / Lemma 11: given a (d-1)-dimensional ORP-KW index with query time
``O(N^(1-1/k) (1 + OUT^(1/k)))``, one can build a d-dimensional index that
pays only an extra ``O(log log N)`` factor in space and nothing in query
time.  The construction:

* a tree ``T`` over the x-dimension whose node at level ``ℓ`` performs an
  *f-balanced cut* with fanout ``f_u = 2 * 2^(k^ℓ)`` (equation (10)) —
  consecutive weight-balanced groups separated by single pivot objects;
* the doubly-exponential fanout makes ``T`` only ``O(log log N)`` deep
  (Proposition 1) and bounds every fanout by ``O(N^(1-1/k))``
  (Proposition 3);
* every node stores a (d-1)-dimensional secondary ORP-KW index on its
  active set with the x-dimension dropped.

A query splits the visited nodes into *type-1* (x-range ``σ(u)`` contained in
the query's x-interval → answered wholly by the secondary index) and
*type-2* (partial overlap → scan the pivot set, recurse); each level has at
most two type-2 nodes (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..costmodel import CostCounter, ensure_counter
from ..dataset import Dataset, KeywordObject, validate_query_keywords
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from .orp_kw import OrpKwIndex


@dataclass
class DrStats:
    """Per-query structural statistics for the F2 benchmark."""

    type1_per_level: Dict[int, int] = field(default_factory=dict)
    type2_per_level: Dict[int, int] = field(default_factory=dict)

    def record(self, level: int, is_type1: bool) -> None:
        table = self.type1_per_level if is_type1 else self.type2_per_level
        table[level] = table.get(level, 0) + 1

    @property
    def type1_nodes(self) -> int:
        return sum(self.type1_per_level.values())

    @property
    def type2_nodes(self) -> int:
        return sum(self.type2_per_level.values())


class _DrNode:
    """A node of the balanced-cut tree."""

    __slots__ = ("level", "fanout", "sigma", "pivot", "children", "secondary", "weight")

    def __init__(self, level: int, fanout: int, sigma: Tuple[float, float], weight: int):
        self.level = level
        self.fanout = fanout  # the paper's f_u
        self.sigma = sigma  # tightest x-interval of the active set
        self.pivot: List[KeywordObject] = []
        self.children: List["_DrNode"] = []
        self.secondary = None  # (d-1)-dimensional index on the active set
        self.weight = weight

    @property
    def is_leaf(self) -> bool:
        return not self.children


class DimReductionOrpKw:
    """The Theorem-2 ORP-KW index for ``d >= 3``."""

    def __init__(self, dataset: Dataset, k: int):
        if k < 2:
            raise ValidationError(f"k must be >= 2, got {k}")
        if dataset.dim < 3:
            raise ValidationError(
                f"dimension-reduction index needs d >= 3 (got d={dataset.dim}); "
                "use OrpKwIndex for d <= 2"
            )
        self.dataset = dataset
        self.k = k
        self.dim = dataset.dim
        self.input_size = dataset.total_doc_size
        self._originals = {obj.oid: obj for obj in dataset.objects}
        self.root = self._build(list(dataset.objects), 0)

    # -- construction -----------------------------------------------------------

    def _fanout(self, level: int) -> int:
        """Equation (10): ``f_u = 2 * 2^(k^level)`` (capped to stay finite)."""
        exponent = min(self.k ** level, 60)
        return 2 * (2 ** exponent)

    def _build(self, active: List[KeywordObject], level: int) -> _DrNode:
        weight = Dataset.weight(active)
        xs = [obj.point[0] for obj in active]
        node = _DrNode(level, self._fanout(level), (min(xs), max(xs)), weight)

        # f-balanced cut (footnote 13): scan in x-order, greedily pack groups
        # of weight <= weight/f, separated by single pivot objects.
        ordered = sorted(active, key=lambda obj: (obj.point[0], obj.oid))
        cap = weight / node.fanout
        groups: List[List[KeywordObject]] = []
        current: List[KeywordObject] = []
        current_weight = 0
        for obj in ordered:
            if current_weight + len(obj.doc) <= cap:
                current.append(obj)
                current_weight += len(obj.doc)
            else:
                # Each separator closes a group with group+separator weight
                # strictly above weight/f, so at most f-1 separators occur
                # before the remaining mass fits in the final group.
                groups.append(current)
                node.pivot.append(obj)  # the separator e*_i
                current = []
                current_weight = 0
        groups.append(current)

        node.secondary = self._make_secondary(active)
        for group in groups:
            if group:
                node.children.append(self._build(group, level + 1))
        return node

    def _make_secondary(self, active: Sequence[KeywordObject]):
        """The (d-1)-dimensional ORP-KW index on ``active`` minus the x-axis."""
        projected = [
            KeywordObject(oid=obj.oid, point=obj.point[1:], doc=obj.doc)
            for obj in active
        ]
        sub = Dataset(projected)
        if sub.dim >= 3:
            return DimReductionOrpKw(sub, self.k)
        return OrpKwIndex(sub, self.k)

    # -- queries ------------------------------------------------------------------

    def query(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        max_report: Optional[int] = None,
        stats: Optional[DrStats] = None,
    ) -> List[KeywordObject]:
        """Report ``q ∩ D(w1..wk)`` for the d-rectangle ``rect``."""
        if rect.dim != self.dim:
            raise ValidationError(
                f"query rectangle is {rect.dim}-dimensional, data is {self.dim}-dimensional"
            )
        words = validate_query_keywords(keywords, self.k)
        counter = ensure_counter(counter)
        result: List[KeywordObject] = []
        self._visit(self.root, rect, words, result, counter, max_report, stats)
        return [self._originals[obj.oid] for obj in result]

    def _visit(
        self,
        node: _DrNode,
        rect: Rect,
        words: Tuple[int, ...],
        result: List[KeywordObject],
        counter: CostCounter,
        max_report: Optional[int],
        stats: Optional[DrStats],
    ) -> None:
        tracer = counter.tracer
        if tracer is None:
            self._visit_node(node, rect, words, result, counter, max_report, stats)
            return
        # One aggregated span per balanced-cut level; the x-level prefix keeps
        # these distinct from the depth=… spans of nested secondary indexes.
        tracer.push(f"x-level={node.level}", "dim_reduction")
        try:
            self._visit_node(node, rect, words, result, counter, max_report, stats)
        finally:
            tracer.pop()

    def _visit_node(
        self,
        node: _DrNode,
        rect: Rect,
        words: Tuple[int, ...],
        result: List[KeywordObject],
        counter: CostCounter,
        max_report: Optional[int],
        stats: Optional[DrStats],
    ) -> None:
        if max_report is not None and len(result) >= max_report:
            return
        counter.charge("nodes_visited")
        q_lo, q_hi = rect.lo[0], rect.hi[0]
        s_lo, s_hi = node.sigma

        if q_lo <= s_lo and s_hi <= q_hi:
            # Type 1: x-range swallowed; the secondary index answers exactly.
            if stats is not None:
                stats.record(node.level, is_type1=True)
            sub_rect = Rect(rect.lo[1:], rect.hi[1:])
            remaining = None if max_report is None else max_report - len(result)
            found = node.secondary.query(
                sub_rect, words, counter, max_report=remaining
            )
            result.extend(found)
            return

        # Type 2: partial overlap; scan pivots and recurse into overlapping
        # children.
        if stats is not None:
            stats.record(node.level, is_type1=False)
        for obj in node.pivot:
            counter.charge("objects_examined")
            if rect.contains_point(obj.point) and obj.doc.issuperset(words):
                result.append(obj)
                if max_report is not None and len(result) >= max_report:
                    return
        for child in node.children:
            c_lo, c_hi = child.sigma
            counter.charge("comparisons")
            if c_lo <= q_hi and q_lo <= c_hi:
                self._visit(child, rect, words, result, counter, max_report, stats)
                if max_report is not None and len(result) >= max_report:
                    return

    def is_empty(
        self,
        rect: Rect,
        keywords: Sequence[int],
        counter: Optional[CostCounter] = None,
        budget_factor: float = 16.0,
    ) -> bool:
        """Budgeted emptiness (footnote 4) on the d >= 3 index."""
        from ..errors import BudgetExceeded

        budget = int(budget_factor * (8 + self.input_size ** (1.0 - 1.0 / self.k)))
        probe = CostCounter(budget=budget)
        try:
            found = self.query(rect, keywords, counter=probe, max_report=1)
            verdict = not found
        except BudgetExceeded:
            verdict = False
        if counter is not None:
            counter.merge(probe)
        return verdict

    # -- introspection ---------------------------------------------------------------

    @property
    def space_units(self) -> int:
        """Stored entries including all nested secondary structures."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1 + len(node.pivot)
            if node.secondary is not None:
                total += node.secondary.space_units
            stack.extend(node.children)
        return total

    def height(self) -> int:
        """Levels of the balanced-cut tree (should be O(log log N))."""

        def depth(node: _DrNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(depth(c) for c in node.children)

        return depth(self.root)

    def per_level_counts(
        self,
        rect: Optional[Rect] = None,
        keywords: Sequence[int] = (1, 2),
    ) -> Dict[str, Dict[int, int]]:
        """Per-level structural counts of the balanced-cut tree.

        Always reports ``nodes`` (node count per level).  With a query
        rectangle, additionally runs one stats-collecting query and reports
        ``type1``/``type2`` — the Figure-2 split, whose per-level type-2
        counts Propositions 1-3 bound by two.
        """
        nodes: Dict[int, int] = {}
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes[node.level] = nodes.get(node.level, 0) + 1
            stack.extend(node.children)
        counts: Dict[str, Dict[int, int]] = {"nodes": nodes}
        if rect is not None:
            stats = DrStats()
            self.query(rect, keywords, stats=stats)
            counts["type1"] = dict(stats.type1_per_level)
            counts["type2"] = dict(stats.type2_per_level)
        return counts

    def max_fanout(self) -> int:
        """Largest realized fanout (Proposition 3: O(N^(1-1/k)))."""
        best = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            best = max(best, len(node.children) + len(node.pivot))
            stack.extend(node.children)
        return best

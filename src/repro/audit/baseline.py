"""BENCH file persistence: schema-versioned, deterministic audit baselines.

One ``BENCH_<row>.json`` per audited Table-1 row lives at the repository
root (row ``T1.1`` → ``BENCH_T1_1.json``).  The committed copies are the
*baselines* the CI gate compares fresh runs against; ``audit run`` rewrites
them.

Determinism contract: ``sort_keys=True``, floats rounded to a fixed
precision, no timestamps, no environment capture — two runs with the same
mode and seed serialize byte-identically (reprolint R5 keeps wall clock out
of this package).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ValidationError
from .sweeps import SCHEMA_VERSION

#: Decimal places kept for every float in a serialized report.
FLOAT_DIGITS = 6


def bench_filename(row: str) -> str:
    """``T1.1`` → ``BENCH_T1_1.json`` (dots are awkward in artifact globs)."""
    return f"BENCH_{row.replace('.', '_')}.json"


def bench_path(directory, row: str) -> pathlib.Path:
    return pathlib.Path(directory) / bench_filename(row)


def round_floats(value: Any, digits: int = FLOAT_DIGITS) -> Any:
    """Recursively round floats so serialization is platform-stable."""
    if isinstance(value, float):
        rounded = round(value, digits)
        # JSON renders -0.0 as "-0.0"; normalize away the sign of zero.
        return 0.0 if rounded == 0 else rounded
    if isinstance(value, dict):
        return {key: round_floats(val, digits) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [round_floats(item, digits) for item in value]
    return value


def serialize_report(report: Dict[str, Any]) -> str:
    return json.dumps(round_floats(report), indent=2, sort_keys=True) + "\n"


def write_report(report: Dict[str, Any], directory) -> pathlib.Path:
    path = bench_path(directory, report["row"])
    path.write_text(serialize_report(report))
    return path


def write_reports(
    reports: Dict[str, Dict[str, Any]], directory
) -> List[pathlib.Path]:
    return [write_report(report, directory) for report in reports.values()]


def load_report(directory, row: str) -> Optional[Dict[str, Any]]:
    """The committed baseline for ``row``, or ``None`` when absent."""
    path = bench_path(directory, row)
    if not path.exists():
        return None
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: corrupt baseline ({exc})") from exc
    if not isinstance(report, dict):
        raise ValidationError(f"{path}: baseline must be a JSON object")
    return report


def check_schema(report: Dict[str, Any], source: str) -> None:
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"{source}: schema_version {version!r} != supported {SCHEMA_VERSION} "
            "— regenerate with `python -m repro.cli audit run`"
        )


def load_baselines(
    directory, rows: Sequence[str]
) -> Dict[str, Optional[Dict[str, Any]]]:
    """Baselines for ``rows`` (``None`` entries mark missing files)."""
    found: Dict[str, Optional[Dict[str, Any]]] = {}
    for row in rows:
        report = load_report(directory, row)
        if report is not None:
            check_schema(report, str(bench_path(directory, row)))
        found[row] = report
    return found

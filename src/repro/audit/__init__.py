"""Scaling-law audit subsystem (see DESIGN.md §10).

Continuously verifies the paper's claims — the Table-1 complexity rows and
the Figure-1/Figure-2 structural bounds — instead of trusting them:

* :mod:`~repro.audit.sweeps` runs seeded sweeps over ``N``/``OUT``/``t``
  for every audited Table-1 family and is the shared measurement hook for
  the benchmark suite;
* :mod:`~repro.audit.fit` fits log-log exponents with bootstrap CIs;
* :mod:`~repro.audit.predictions` declares, per Table-1 row, the predicted
  exponents and their slack/tolerance bands;
* :mod:`~repro.audit.probes` snapshots structural health (kd crossing,
  dimension-reduction levels/fanout, partition crossing, space) and mirrors
  it into :class:`~repro.trace.MetricsRegistry` gauges;
* :mod:`~repro.audit.baseline` persists schema-versioned, deterministic
  ``BENCH_<row>.json`` files at the repo root;
* :mod:`~repro.audit.gate` compares a fresh run against the committed
  baselines (the CI complexity-regression gate);
* :mod:`~repro.audit.scorecard` renders the box-drawing summary table.

CLI: ``python -m repro.cli audit run | gate | scorecard``.
"""

from .baseline import (
    bench_filename,
    bench_path,
    load_baselines,
    load_report,
    serialize_report,
    write_report,
    write_reports,
)
from .fit import ExponentFit, fit_exponent
from .gate import GateCheck, GateResult, compare_reports, render_gate, run_gate
from .predictions import TABLE1, ExponentPrediction, RowPrediction, require_row
from .probes import (
    StructuralReport,
    dim_reduction_report,
    engine_reports,
    kd_crossing_report,
    partition_crossing_report,
    register,
    register_all,
    space_report,
)
from .scorecard import render_scorecard
from .sweeps import (
    AUDITED_ROWS,
    DEFAULT_SEED,
    MODES,
    SCHEMA_VERSION,
    measure_query,
    run_row,
    run_rows,
)

__all__ = [
    "AUDITED_ROWS",
    "DEFAULT_SEED",
    "ExponentFit",
    "ExponentPrediction",
    "GateCheck",
    "GateResult",
    "MODES",
    "RowPrediction",
    "SCHEMA_VERSION",
    "StructuralReport",
    "TABLE1",
    "bench_filename",
    "bench_path",
    "compare_reports",
    "dim_reduction_report",
    "engine_reports",
    "fit_exponent",
    "kd_crossing_report",
    "load_baselines",
    "load_report",
    "measure_query",
    "partition_crossing_report",
    "register",
    "register_all",
    "render_gate",
    "render_scorecard",
    "require_row",
    "run_gate",
    "run_row",
    "run_rows",
    "serialize_report",
    "space_report",
    "write_report",
    "write_reports",
]

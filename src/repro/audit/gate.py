"""The complexity-regression gate: fresh run vs committed baselines.

For every gated exponent declared in :mod:`repro.audit.predictions`, the
gate refits from a fresh seeded sweep and compares against the committed
``BENCH_<row>.json`` baseline:

* ``|fresh - baseline| <= tolerance`` — the drift band.  A cost-accounting
  regression that bends ``N^(1-1/k)`` toward ``N`` moves the fitted slope by
  ~``1/k``, far outside every band, while seed noise and quick-mode sweeps
  stay inside.
* every fresh structural probe must be within its bound (``ok``), and a
  probe that was ``ok`` in the baseline must not have regressed.

Exit codes: 0 all checks pass, 1 regression detected, 2 missing/invalid
baselines (run ``audit run`` and commit the BENCH files first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..trace import MetricsRegistry
from .baseline import bench_filename, load_baselines, write_report
from .predictions import require_row
from .sweeps import DEFAULT_SEED, run_row


@dataclass(frozen=True)
class GateCheck:
    """One gate comparison, JSON-safe."""

    row: str
    kind: str  #: "exponent" | "structural"
    name: str  #: "<sweep>/<category>" or the probe name
    baseline: Optional[float]
    fresh: Optional[float]
    tolerance: Optional[float]
    ok: bool
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "row": self.row,
            "kind": self.kind,
            "name": self.name,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "detail": self.detail,
        }


def _fit_slope(report: Dict[str, Any], sweep: str, category: str) -> Optional[float]:
    fit = report.get("fits", {}).get(sweep, {}).get(category)
    if fit is None:
        return None
    return float(fit["slope"])


def compare_reports(
    baseline: Dict[str, Any], fresh: Dict[str, Any]
) -> List[GateCheck]:
    """All gate checks for one row (declared exponents + structural probes)."""
    row = fresh["row"]
    prediction = require_row(row)
    checks: List[GateCheck] = []
    for exponent in prediction.exponents:
        name = f"{exponent.sweep}/{exponent.category}"
        base_slope = _fit_slope(baseline, exponent.sweep, exponent.category)
        fresh_slope = _fit_slope(fresh, exponent.sweep, exponent.category)
        if base_slope is None or fresh_slope is None:
            checks.append(
                GateCheck(
                    row=row, kind="exponent", name=name,
                    baseline=base_slope, fresh=fresh_slope,
                    tolerance=exponent.tolerance, ok=False,
                    detail="fit missing from baseline or fresh run",
                )
            )
            continue
        drift = abs(fresh_slope - base_slope)
        checks.append(
            GateCheck(
                row=row, kind="exponent", name=name,
                baseline=base_slope, fresh=fresh_slope,
                tolerance=exponent.tolerance,
                ok=drift <= exponent.tolerance,
                detail=f"drift {drift:.3f} vs band ±{exponent.tolerance:g} "
                f"(Table-1 predicts {exponent.predicted:g})",
            )
        )

    baseline_ok = {
        probe.get("probe"): bool(probe.get("ok"))
        for probe in baseline.get("structural", [])
    }
    for probe in fresh.get("structural", []):
        name = probe["probe"]
        fresh_ok = bool(probe.get("ok"))
        was_ok = baseline_ok.get(name, True)
        checks.append(
            GateCheck(
                row=row, kind="structural", name=name,
                baseline=1.0 if was_ok else 0.0,
                fresh=1.0 if fresh_ok else 0.0,
                tolerance=None,
                ok=fresh_ok or not was_ok,
                detail=probe.get("notes", ""),
            )
        )
    return checks


@dataclass
class GateResult:
    """Outcome of a whole gate run."""

    checks: List[GateCheck]
    missing: List[str]  #: rows whose baseline file is absent
    fresh: Dict[str, Dict[str, Any]]  #: the fresh reports, per row

    @property
    def failed(self) -> List[GateCheck]:
        return [check for check in self.checks if not check.ok]

    @property
    def exit_code(self) -> int:
        if self.missing:
            return 2
        return 1 if self.failed else 0


def run_gate(
    directory,
    rows: Sequence[str],
    mode: str = "quick",
    seed: int = DEFAULT_SEED,
    registry: Optional[MetricsRegistry] = None,
    export_dir=None,
    log: Optional[Callable[[str], None]] = None,
) -> GateResult:
    """Run fresh sweeps for ``rows`` and gate them against ``directory``.

    ``export_dir`` (optional) receives the fresh reports as BENCH files —
    CI uploads these as the run artifact.
    """
    emit = log if log is not None else (lambda _line: None)
    baselines = load_baselines(directory, rows)
    missing = [row for row in rows if baselines[row] is None]
    for row in missing:
        emit(f"missing baseline: {bench_filename(row)} (run `audit run` first)")
    checks: List[GateCheck] = []
    fresh_reports: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        if baselines[row] is None:
            continue
        emit(f"gating {row} ({mode} mode)")
        fresh = run_row(row, mode=mode, seed=seed, registry=registry)
        fresh_reports[row] = fresh
        if export_dir is not None:
            write_report(fresh, export_dir)
        checks.extend(compare_reports(baselines[row], fresh))
    return GateResult(checks=checks, missing=missing, fresh=fresh_reports)


def render_gate(result: GateResult) -> str:
    """Plain-text gate summary (one line per check, worst first)."""
    lines: List[str] = []
    for row in result.missing:
        lines.append(f"MISSING  {row}: no committed {bench_filename(row)}")
    ordered = sorted(result.checks, key=lambda c: (c.ok, c.row, c.kind, c.name))
    for check in ordered:
        status = "ok  " if check.ok else "FAIL"
        if check.kind == "exponent":
            lines.append(
                f"{status} {check.row} {check.name}: baseline "
                f"{check.baseline:.3f} -> fresh {check.fresh:.3f} "
                f"(±{check.tolerance:g})"
                if check.baseline is not None and check.fresh is not None
                else f"{status} {check.row} {check.name}: {check.detail}"
            )
        else:
            lines.append(
                f"{status} {check.row} probe {check.name}: "
                f"{'within bounds' if check.fresh else 'BOUND VIOLATED'}"
            )
    passed = len(result.checks) - len(result.failed)
    lines.append(
        f"gate: {passed}/{len(result.checks)} checks passed, "
        f"{len(result.missing)} baseline(s) missing -> exit {result.exit_code}"
    )
    return "\n".join(lines)

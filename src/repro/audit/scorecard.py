"""Box-drawing Table-1 scorecard: predicted vs fitted exponents at a glance.

Renders one line per gated exponent — the Table-1 prediction, the fitted
slope with its bootstrap 95% CI, and a verdict — plus a structural-probe
section.  Table 1 states *upper bounds*, so the verdict is one-sided:
``fitted <= predicted + slack`` (see :mod:`repro.audit.predictions`).  A
fitted exponent below the prediction means the structure beats its bound on
that instance family and passes; baseline drift is the gate's job.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .predictions import require_row

_PASS = "pass"
_FAIL = "FAIL"


def _verdict(fitted: float, predicted: float, slack: float) -> str:
    return _PASS if fitted <= predicted + slack else _FAIL


def _box_table(header: Sequence[str], rows: List[Sequence[str]]) -> List[str]:
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]

    def line(left: str, mid: str, right: str) -> str:
        return left + mid.join("─" * (w + 2) for w in widths) + right

    def render(cells: Sequence[str]) -> str:
        return "│" + "│".join(
            f" {str(c).ljust(w)} " for c, w in zip(cells, widths)
        ) + "│"

    out = [line("┌", "┬", "┐"), render(header), line("├", "┼", "┤")]
    out.extend(render(r) for r in rows)
    out.append(line("└", "┴", "┘"))
    return out


def render_scorecard(reports: Dict[str, Dict[str, Any]]) -> str:
    """The scorecard for a set of row reports (fresh or committed)."""
    exponent_rows: List[Sequence[str]] = []
    probe_rows: List[Sequence[str]] = []
    for row_id in sorted(reports):
        report = reports[row_id]
        prediction = require_row(row_id)
        for exponent in prediction.exponents:
            fit = (
                report.get("fits", {})
                .get(exponent.sweep, {})
                .get(exponent.category)
            )
            if fit is None:
                exponent_rows.append(
                    (row_id, exponent.sweep, exponent.category,
                     exponent.parameter, f"{exponent.predicted:.3f}",
                     "—", "—", "missing")
                )
                continue
            slope = float(fit["slope"])
            exponent_rows.append(
                (
                    row_id,
                    exponent.sweep,
                    exponent.category,
                    exponent.parameter,
                    f"{exponent.predicted:.3f}",
                    f"{slope:.3f}",
                    f"[{float(fit['ci_low']):.3f}, {float(fit['ci_high']):.3f}]",
                    _verdict(slope, exponent.predicted, exponent.slack),
                )
            )
        for probe in report.get("structural", []):
            bounds = probe.get("bounds", {})
            values = probe.get("values", {})
            # Show the tightest value/bound pair as the headline number.
            headline = ""
            for key in sorted(bounds):
                if key in values and bounds[key]:
                    headline = (
                        f"{key}={values[key]:g} ≤ {float(bounds[key]):.4g}"
                    )
                    break
            probe_rows.append(
                (row_id, probe["probe"], headline,
                 _PASS if probe.get("ok") else _FAIL)
            )

    lines: List[str] = ["Table-1 scaling-law scorecard"]
    lines += _box_table(
        ("row", "sweep", "category", "vs", "predicted", "fitted",
         "95% CI", "verdict"),
        exponent_rows,
    )
    if probe_rows:
        lines.append("")
        lines.append("Structural health (Lemma 10, Propositions 1-3, space)")
        lines += _box_table(
            ("row", "probe", "headline check", "verdict"), probe_rows
        )
    modes = sorted({r.get("mode", "?") for r in reports.values()})
    seeds = sorted({r.get("seed", "?") for r in reports.values()})
    lines.append("")
    lines.append(
        f"mode={','.join(map(str, modes))} seed={','.join(map(str, seeds))}; "
        "verdict = fitted ≤ predicted + slack, one-sided upper-bound check "
        "(see repro/audit/predictions.py); drift gating vs baselines is "
        "`audit gate`"
    )
    return "\n".join(lines)

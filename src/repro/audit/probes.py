"""Structural health probes: Figures 1-2 quantities, measured at build time.

The paper's structural lemmas are properties of the *built* index, not of
any particular query:

* Lemma 10 / Figure 1 — the kd-tree's crossing tree for a line has
  ``O(sqrt N)`` nodes (more generally ``O(N^(1-1/d))``);
* Propositions 1-3 / Figure 2 — the dimension-reduction tree has
  ``O(log log N)`` levels, every fanout is ``O(N^(1-1/k))``, and a query
  meets at most two type-2 nodes per level;
* the partition tree inherits the kd-style ``O(N^(1-1/d))`` crossing bound
  for axis-parallel ranges (Appendix D.1);
* every Table-1 structure is near-linear in space.

Each probe measures its quantity on a concrete structure, compares it to the
bound with an **explicit constant**, and returns a :class:`StructuralReport`
— a JSON-safe verdict that the audit runner persists into ``BENCH_*.json``
and :func:`register` mirrors into a :class:`~repro.trace.MetricsRegistry`
as gauges (so `QueryEngine.stats()['metrics']` exposes them).

All randomized probes take explicit seeds (reprolint R6).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..geometry.rectangles import Rect
from ..kdtree.tree import KdTree
from ..partitiontree.tree import PartitionTree
from ..trace import MetricsRegistry

#: Explicit constant for the Lemma-10 / kd-crossing bound checks.
CROSSING_CONSTANT = 16.0
#: Explicit constant for the Proposition-3 fanout bound (matches the F2 bench).
FANOUT_CONSTANT = 8.0
#: Extra levels allowed over ``log2 log2 N`` (Proposition 1, small-N slack).
HEIGHT_SLACK = 3
#: Per-level type-2 ceiling (Figure 2).
TYPE2_PER_LEVEL = 2


@dataclass
class StructuralReport:
    """One probe's measured values, the bounds they were checked against,
    and the verdict."""

    probe: str
    values: Dict[str, float] = field(default_factory=dict)
    bounds: Dict[str, float] = field(default_factory=dict)
    ok: bool = True
    notes: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "probe": self.probe,
            "values": {k: self.values[k] for k in sorted(self.values)},
            "bounds": {k: self.bounds[k] for k in sorted(self.bounds)},
            "ok": self.ok,
            "notes": self.notes,
        }


def register(
    report: StructuralReport, registry: MetricsRegistry, prefix: str = "probe"
) -> None:
    """Mirror a report into ``registry`` as gauges.

    Every measured value lands in ``<prefix>_<probe>_<key>``; the verdict in
    ``<prefix>_<probe>_ok`` (1.0 = within bounds).
    """
    for key in sorted(report.values):
        registry.gauge(f"{prefix}_{report.probe}_{key}").set(report.values[key])
    registry.gauge(f"{prefix}_{report.probe}_ok").set(1.0 if report.ok else 0.0)


# -- Figure 1: kd-tree crossing sensitivity ------------------------------------


def _axis_lines(cell: Rect, axis: int, count: int) -> List[Rect]:
    """Degenerate rectangles: ``count`` axis-parallel cuts through ``cell``."""
    lines = []
    lo, hi = cell.lo[axis], cell.hi[axis]
    for i in range(1, count + 1):
        value = lo + (hi - lo) * i / (count + 1)
        line_lo = list(cell.lo)
        line_hi = list(cell.hi)
        line_lo[axis] = value
        line_hi[axis] = value
        lines.append(Rect(line_lo, line_hi))
    return lines


def kd_crossing_report(
    tree: KdTree,
    lines_per_axis: int = 4,
    constant: float = CROSSING_CONSTANT,
) -> StructuralReport:
    """Lemma 10 / Figure 1: worst |T_cross| over axis-parallel lines.

    The bound is ``constant * n^(1-1/d)`` (``sqrt n`` for the d=2 trees the
    Theorem-1 index builds).
    """
    n = int(tree.root.size)
    exponent = 1.0 - 1.0 / max(tree.dim, 2)
    bound = constant * n**exponent
    worst = 0
    for axis in range(tree.dim):
        for line in _axis_lines(tree.root.cell, axis, lines_per_axis):
            worst = max(worst, tree.count_crossing_nodes(line))
    return StructuralReport(
        probe="kd_crossing",
        values={
            "n": float(n),
            "max_line_crossing_nodes": float(worst),
            "crossing_per_bound": worst / bound if bound else 0.0,
        },
        bounds={"max_line_crossing_nodes": bound},
        ok=worst <= bound,
        notes=f"Lemma 10: |T_cross| <= {constant:g} * n^{exponent:.3g} over "
        f"{lines_per_axis} cuts per axis",
    )


# -- Figure 2: dimension-reduction tree ----------------------------------------


def dim_reduction_report(
    index,
    seed: int = 17,
    queries: int = 8,
    keywords=(1, 2),
) -> StructuralReport:
    """Propositions 1-3 / Figure 2 on a built :class:`DimReductionOrpKw`.

    Checks height ``<= log2 log2 N + HEIGHT_SLACK`` (P1), max fanout
    ``<= FANOUT_CONSTANT * sqrt(N) + 8`` (P3), and — over ``queries`` seeded
    x-slab queries — at most :data:`TYPE2_PER_LEVEL` type-2 nodes per level.
    """
    n = index.input_size
    height = index.height()
    height_bound = math.log2(math.log2(max(n, 4))) + HEIGHT_SLACK
    fanout = index.max_fanout()
    fanout_bound = FANOUT_CONSTANT * math.sqrt(n) + 8
    rng = random.Random(seed)
    worst_type2 = 0
    for _ in range(queries):
        a, b = sorted((rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)))
        rect = Rect((a,) + (0.0,) * (index.dim - 1), (b,) + (1.0,) * (index.dim - 1))
        counts = index.per_level_counts(rect, keywords)
        for count in counts.get("type2", {}).values():
            worst_type2 = max(worst_type2, count)
    ok = (
        height <= height_bound
        and fanout <= fanout_bound
        and worst_type2 <= TYPE2_PER_LEVEL
    )
    return StructuralReport(
        probe="dim_reduction",
        values={
            "n": float(n),
            "height": float(height),
            "max_fanout": float(fanout),
            "max_type2_per_level": float(worst_type2),
        },
        bounds={
            "height": height_bound,
            "max_fanout": fanout_bound,
            "max_type2_per_level": float(TYPE2_PER_LEVEL),
        },
        ok=ok,
        notes="Propositions 1-3 / Figure 2 over "
        f"{queries} seeded x-slab queries (seed={seed})",
    )


# -- partition tree ------------------------------------------------------------


def partition_crossing_report(
    tree: PartitionTree,
    seed: int = 11,
    rects: int = 6,
    constant: float = CROSSING_CONSTANT,
) -> StructuralReport:
    """Crossing counts of a partition tree for seeded axis-parallel boxes.

    The kd-box scheme keeps the classic ``O(n^(1-1/d))`` crossing bound for
    axis-parallel ranges; a rectangle has ``2d`` facets, so the constant is
    scaled by ``2 * dim`` relative to the single-line bound.
    """
    n = int(tree.root.size)
    exponent = 1.0 - 1.0 / max(tree.dim, 2)
    bound = 2 * tree.dim * constant * n**exponent
    rng = random.Random(seed)
    root_cell = tree.root.cell
    if not isinstance(root_cell, Rect):
        root_cell = Rect(
            tree.points.min(axis=0) - 1.0, tree.points.max(axis=0) + 1.0
        )
    worst = 0
    for _ in range(rects):
        lo, hi = [], []
        for axis in range(tree.dim):
            a, b = sorted(
                (
                    rng.uniform(root_cell.lo[axis], root_cell.hi[axis]),
                    rng.uniform(root_cell.lo[axis], root_cell.hi[axis]),
                )
            )
            lo.append(a)
            hi.append(b)
        worst = max(worst, tree.count_crossing_nodes(Rect(lo, hi)))
    return StructuralReport(
        probe="partition_crossing",
        values={
            "n": float(n),
            "max_rect_crossing_nodes": float(worst),
            "crossing_per_bound": worst / bound if bound else 0.0,
        },
        bounds={"max_rect_crossing_nodes": bound},
        ok=worst <= bound,
        notes=f"{rects} seeded axis-parallel boxes (seed={seed}); bound "
        f"{2 * tree.dim} * {constant:g} * n^{exponent:.3g}",
    )


# -- space ---------------------------------------------------------------------


def space_report(index, per_unit_cap: float, scale: float = 1.0) -> StructuralReport:
    """Near-linear space: ``space_units / (scale * N) <= per_unit_cap``.

    ``scale`` folds in any permitted superlinear factor — pass
    ``log2(log2(N))`` for the Theorem-2 ``N loglog N`` budget.
    """
    n = index.input_size
    per_unit = index.space_units / (scale * n) if n else 0.0
    return StructuralReport(
        probe="space",
        values={
            "n": float(n),
            "space_units": float(index.space_units),
            "space_per_unit": per_unit,
        },
        bounds={"space_per_unit": per_unit_cap},
        ok=per_unit <= per_unit_cap,
        notes=f"space_units / ({scale:g} * N) vs cap {per_unit_cap:g}",
    )


# -- serving-layer hook --------------------------------------------------------


def engine_reports(engine, seed: int = 17) -> List[StructuralReport]:
    """Structural probes for a :class:`~repro.service.engine.QueryEngine`.

    Probes the k=2 fused index's kd-tree (Fig. 1) when one exists, plus the
    engine's overall space.  Returns the reports without registering them —
    :meth:`QueryEngine.probe_structure` registers into ``engine.metrics``.
    """
    reports: List[StructuralReport] = []
    index = getattr(engine, "_index", None)
    if index is not None and engine.max_k >= 2:
        fused = index.fused_for(2)
        reports.append(kd_crossing_report(fused._transform.tree))
    reports.append(space_report(engine, per_unit_cap=64.0))
    return reports


def register_all(
    reports: List[StructuralReport],
    registry: Optional[MetricsRegistry],
    prefix: str = "probe",
) -> None:
    if registry is None:
        return
    for report in reports:
        register(report, registry, prefix=prefix)

"""Declarative Table-1 predictions: one record per audited row.

Each :class:`RowPrediction` pins down, for one row of the paper's Table 1,
which sweeps the audit runs, which fitted exponents are *gated*, and the two
bands each gated exponent is judged against:

``slack``
    The theory band (scorecard verdict).  Table 1 states **upper bounds**,
    so the verdict is one-sided: ``fitted <= predicted + slack``.  A fitted
    exponent *below* the prediction is the structure beating its bound on a
    benign instance family (e.g. emptiness detected in O(1) at the root) and
    passes; only growth *above* the bound plus slack falsifies the paper.

``tolerance``
    The drift band (CI gate), two-sided: ``|fresh - baseline| <= tolerance``.
    Sweeps are seeded and deterministic, so the only legitimate drift is the
    systematic quick-mode-vs-full-mode difference (measured <= 0.12 across
    all rows); a cost-accounting regression that bends ``N^(1-1/k)`` toward
    ``N`` moves the fitted slope by ~``1/k`` (0.5 for k=2) — far outside
    every band below.

The records are data, not code: the sweep runners in
:mod:`repro.audit.sweeps` look up their row here, and the gate iterates the
``exponents`` tuples verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class ExponentPrediction:
    """One gated scaling exponent of a Table-1 row."""

    sweep: str  #: sweep name inside the row's BENCH report
    category: str  #: cost category ("total" or a CostCounter category)
    parameter: str  #: the swept variable ("N", "OUT", "t")
    predicted: float  #: the Table-1 exponent for cost vs parameter
    slack: float  #: one-sided theory band: fitted <= predicted + slack
    tolerance: float  #: two-sided drift band: |fresh - baseline| <= tolerance

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep,
            "category": self.category,
            "parameter": self.parameter,
            "predicted": self.predicted,
            "slack": self.slack,
            "tolerance": self.tolerance,
        }


@dataclass(frozen=True)
class RowPrediction:
    """Everything the audit knows about one Table-1 row."""

    row: str  #: row id, e.g. "T1.1"
    title: str
    family: str  #: index class under audit
    k: int
    dim: int
    bound: str  #: human-readable Table-1 query bound
    space: str  #: human-readable Table-1 space bound
    exponents: Tuple[ExponentPrediction, ...] = field(default_factory=tuple)

    def gated(self, sweep: str) -> Tuple[ExponentPrediction, ...]:
        return tuple(e for e in self.exponents if e.sweep == sweep)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "row": self.row,
            "title": self.title,
            "family": self.family,
            "k": self.k,
            "dim": self.dim,
            "bound": self.bound,
            "space": self.space,
            "exponents": [e.to_dict() for e in self.exponents],
        }


#: The audited subset of Table 1 (rows with a dedicated sweep runner).
#:
#: Sweep vocabulary: ``empty_out`` queries a fully disjoint keyword pair
#: (OUT = 0; the combination table may reject in O(1), so fitted slopes of
#: ~0 are expected and pass one-sided); ``planted_n`` grows N with a fixed
#: planted OUT so descent cost, not output cost, dominates; ``planted_out``
#: grows OUT at fixed N; ``n_sweep``/``t_sweep`` are the NN-index analogues.
TABLE1: Dict[str, RowPrediction] = {
    "CHURN": RowPrediction(
        row="CHURN",
        title="Dynamized ORP-KW under churn (Bentley-Saxe; extension)",
        family="DynamicOrpKw",
        k=2,
        dim=2,
        bound="amortized O(log n) rebuild participations per update; "
        "query bound x O(log n)",
        space="O(N)",
        exponents=(
            # Total maintenance cost over U updates is Theta(U log U):
            # predicted exponent 1 with the log factor absorbed one-sidedly
            # by the slack (measured ~1.15 over the sweep range).
            ExponentPrediction(
                sweep="churn_maintenance",
                category="total",
                parameter="U",
                predicted=1.0,
                slack=0.35,
                tolerance=0.20,
            ),
            # Post-churn query on a planted (fixed-OUT) workload: the static
            # sqrt(N) bound times the ladder's O(log n) bucket fan-out.
            ExponentPrediction(
                sweep="churn_query",
                category="total",
                parameter="N",
                predicted=0.5,
                slack=0.35,
                tolerance=0.25,
            ),
        ),
    ),
    "T1.1": RowPrediction(
        row="T1.1",
        title="ORP-KW, d <= 2 (Theorem 1)",
        family="OrpKwIndex",
        k=2,
        dim=2,
        bound="N^(1-1/k) * (1 + OUT^(1/k))",
        space="O(N)",
        exponents=(
            ExponentPrediction(
                sweep="empty_out",
                category="total",
                parameter="N",
                predicted=0.5,
                slack=0.15,
                tolerance=0.20,
            ),
            ExponentPrediction(
                sweep="planted_n",
                category="total",
                parameter="N",
                predicted=0.5,
                slack=0.15,
                tolerance=0.20,
            ),
            ExponentPrediction(
                sweep="planted_out",
                category="total",
                parameter="OUT",
                predicted=0.5,
                slack=0.20,
                tolerance=0.20,
            ),
        ),
    ),
    "T1.2": RowPrediction(
        row="T1.2",
        title="ORP-KW, d >= 3 via dimension reduction (Theorem 2)",
        family="DimReductionOrpKw",
        k=2,
        dim=3,
        bound="N^(1-1/k) * (1 + OUT^(1/k))",
        space="O(N (loglog N)^(d-2))",
        exponents=(
            ExponentPrediction(
                sweep="empty_out",
                category="total",
                parameter="N",
                predicted=0.5,
                slack=0.15,
                tolerance=0.20,
            ),
            ExponentPrediction(
                sweep="planted_n",
                category="total",
                parameter="N",
                predicted=0.5,
                slack=0.20,
                tolerance=0.20,
            ),
        ),
    ),
    "T1.5": RowPrediction(
        row="T1.5",
        title="L-inf NN-KW (Corollary 4)",
        family="LinfNnIndex",
        k=2,
        dim=2,
        bound="N^(1-1/k) * t^(1/k) * log N",
        space="O(N (loglog N)^(d-2))",
        exponents=(
            ExponentPrediction(
                sweep="n_sweep",
                category="total",
                parameter="N",
                predicted=0.5,
                slack=0.20,
                tolerance=0.20,
            ),
            ExponentPrediction(
                sweep="t_sweep",
                category="total",
                parameter="t",
                predicted=0.5,
                slack=0.20,
                tolerance=0.20,
            ),
        ),
    ),
    "T1.7": RowPrediction(
        row="T1.7",
        title="SRP-KW, d > k-1 regime (Corollary 6)",
        family="SrpKwIndex",
        k=2,
        dim=2,
        bound="N^(1-1/(d+1)) + N^(1-1/k) (log N + OUT^(1/k))",
        space="near-linear",
        exponents=(
            ExponentPrediction(
                sweep="empty_out",
                category="total",
                parameter="N",
                predicted=1.0 - 1.0 / 3.0,
                slack=0.15,
                tolerance=0.20,
            ),
            ExponentPrediction(
                sweep="planted_n",
                category="total",
                parameter="N",
                predicted=1.0 - 1.0 / 3.0,
                slack=0.15,
                tolerance=0.25,
            ),
        ),
    ),
}


def require_row(row: str) -> RowPrediction:
    found = TABLE1.get(row)
    if found is None:
        from ..errors import ValidationError

        raise ValidationError(
            f"unknown Table-1 row {row!r}; audited rows: {sorted(TABLE1)}"
        )
    return found

"""Seeded scaling sweeps: run every audited Table-1 family, fit exponents.

One :func:`run_row` call produces the complete audit record for a Table-1
row: the raw sweep points (parameter value, OUT, per-category cost), a
log-log :class:`~repro.audit.fit.ExponentFit` per cost category, and the
build-time :mod:`structural probes <repro.audit.probes>` — everything the
``BENCH_<row>.json`` schema persists.

Determinism contract (the gate depends on it): every dataset, query, and
bootstrap draw is seeded; no wall clock, no timestamps; rerunning with the
same mode and seed is byte-identical after serialization.

:func:`measure_query` is the shared measurement hook: the benchmark suite's
``benchmarks/common.py`` delegates here, so audit sweeps and the EXPERIMENTS
tables account cost identically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.dim_reduction import DimReductionOrpKw
from ..core.dynamic import DynamicOrpKw
from ..core.nn_linf import LinfNnIndex
from ..core.orp_kw import OrpKwIndex
from ..core.srp_kw import SrpKwIndex
from ..costmodel import CATEGORIES, CostCounter
from ..errors import ValidationError
from ..geometry.rectangles import Rect
from ..partitiontree.tree import PartitionTree
from ..trace import MetricsRegistry
from ..workloads.generators import (
    WorkloadConfig,
    disjoint_pair_dataset,
    planted_dataset,
    zipf_dataset,
)
from .fit import ExponentFit, fit_exponent
from .predictions import RowPrediction, require_row
from .probes import (
    StructuralReport,
    dim_reduction_report,
    kd_crossing_report,
    partition_crossing_report,
    space_report,
)

#: BENCH report schema version; bump on any breaking shape change.
SCHEMA_VERSION = 1

#: Base RNG seed for datasets, probe queries, and bootstrap resampling.
DEFAULT_SEED = 7


@dataclass(frozen=True)
class ModeConfig:
    """Sweep sizes for one audit mode."""

    name: str
    resamples: int  #: bootstrap resamples per fitted exponent
    sweep_objects: Sequence[int]  #: object counts for cheap d<=2 builds
    small_sweep_objects: Sequence[int]  #: object counts for expensive builds
    out_values: Sequence[int]  #: planted OUT values (T1.1 OUT sweep)
    t_values: Sequence[int]  #: neighbour counts (T1.5 t sweep)
    fixed_objects: int  #: dataset size for the fixed-N sweeps


MODES: Dict[str, ModeConfig] = {
    "full": ModeConfig(
        name="full",
        resamples=200,
        sweep_objects=(1000, 2000, 4000, 8000),
        small_sweep_objects=(500, 1000, 2000, 4000),
        out_values=(16, 64, 256, 1024),
        t_values=(1, 4, 16, 64),
        fixed_objects=4000,
    ),
    "quick": ModeConfig(
        name="quick",
        resamples=64,
        sweep_objects=(500, 1000, 2000, 4000),
        small_sweep_objects=(250, 500, 1000, 2000),
        out_values=(16, 64, 256),
        t_values=(1, 4, 16),
        fixed_objects=2000,
    ),
}


def require_mode(mode: str) -> ModeConfig:
    found = MODES.get(mode)
    if found is None:
        raise ValidationError(f"unknown audit mode {mode!r}; known: {sorted(MODES)}")
    return found


def measure_query(
    fn: Callable[[CostCounter], Sequence], registry: Optional[MetricsRegistry] = None
) -> Dict[str, Any]:
    """Run ``fn(counter)``; return ``{"out": n, "cost": {category..., total}}``.

    When a registry is supplied, the query's cost distribution also feeds it
    (``queries_total`` counter + per-category ``cost_*`` histograms) — the
    hook the benchmark tables and the audit sweeps share.
    """
    counter = CostCounter()
    result = fn(counter)
    out = len(result)
    if registry is not None:
        registry.counter("queries_total").inc()
        for category in CATEGORIES:
            registry.histogram(f"cost_{category}").observe(counter[category])
        registry.histogram("cost_total").observe(counter.total)
        registry.histogram("result_count").observe(out)
    return {"out": out, "cost": counter.snapshot()}


def _zipf(num_objects: int, dim: int, seed: int):
    """The Zipf-keyword dataset the benchmark sweeps standardize on."""
    return zipf_dataset(
        WorkloadConfig(
            num_objects=num_objects,
            dim=dim,
            vocabulary=48,
            doc_min=1,
            doc_max=4,
            zipf_s=1.0,
            seed=seed,
        )
    )


def _point(parameter: str, value: float, measured: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "parameter": parameter,
        "value": float(value),
        "out": int(measured["out"]),
        "cost": {k: int(v) for k, v in sorted(measured["cost"].items())},
    }


# -- per-row sweep runners -----------------------------------------------------


#: Planted co-occurrences per dataset in the fixed-OUT ``planted_n`` sweeps:
#: small enough that descent cost dominates output cost, large enough that the
#: planted pair reaches every region of the crossing tree.
PLANTED_OUT = 16


def _planted(num: int, dim: int, out: int = PLANTED_OUT):
    """Dataset with exactly ``out`` objects carrying both audited keywords."""
    return planted_dataset(
        num, dim, keywords=[1, 2], planted_fraction=out / num,
        seed=5, vocabulary=48,
    )


def _run_t1_1(mode: ModeConfig, seed: int, registry):
    sweeps: Dict[str, List[Dict[str, Any]]] = {
        "empty_out": [], "planted_n": [], "planted_out": [],
    }
    structural: List[StructuralReport] = []
    index = None
    for num in mode.sweep_objects:
        ds = disjoint_pair_dataset(num, dim=2, seed=3)
        index = OrpKwIndex(ds, k=2)
        measured = measure_query(
            lambda c: index.query(Rect.full(2), [1, 2], counter=c), registry
        )
        sweeps["empty_out"].append(_point("N", index.input_size, measured))
    # Structural health on the largest build.
    structural.append(kd_crossing_report(index._transform.tree))
    structural.append(space_report(index, per_unit_cap=64.0))

    for num in mode.sweep_objects:
        planted = OrpKwIndex(_planted(num, 2), k=2)
        measured = measure_query(
            lambda c: planted.query(Rect.full(2), [1, 2], counter=c), registry
        )
        sweeps["planted_n"].append(_point("N", planted.input_size, measured))

    num = mode.fixed_objects
    for out in mode.out_values:
        planted = OrpKwIndex(_planted(num, 2, out), k=2)
        measured = measure_query(
            lambda c: planted.query(Rect.full(2), [1, 2], counter=c), registry
        )
        sweeps["planted_out"].append(_point("OUT", measured["out"], measured))
    return sweeps, structural


def _run_t1_2(mode: ModeConfig, seed: int, registry):
    sweeps: Dict[str, List[Dict[str, Any]]] = {"empty_out": [], "planted_n": []}
    index = None
    for num in mode.small_sweep_objects:
        ds = disjoint_pair_dataset(num, dim=3, seed=3)
        index = DimReductionOrpKw(ds, k=2)
        measured = measure_query(
            lambda c: index.query(Rect.full(3), [1, 2], counter=c), registry
        )
        sweeps["empty_out"].append(_point("N", index.input_size, measured))
    for num in mode.small_sweep_objects:
        planted = DimReductionOrpKw(_planted(num, 3), k=2)
        measured = measure_query(
            lambda c: planted.query(Rect.full(3), [1, 2], counter=c), registry
        )
        sweeps["planted_n"].append(_point("N", planted.input_size, measured))
    loglog = max(math.log2(math.log2(max(index.input_size, 4))), 1.0)
    structural = [
        dim_reduction_report(index, seed=seed + 10),
        space_report(index, per_unit_cap=64.0, scale=loglog),
    ]
    return sweeps, structural


def _run_t1_5(mode: ModeConfig, seed: int, registry):
    sweeps: Dict[str, List[Dict[str, Any]]] = {"n_sweep": [], "t_sweep": []}
    q = (0.5, 0.5)
    index = None
    for num in mode.sweep_objects:
        ds = _zipf(num, dim=2, seed=seed)
        index = LinfNnIndex(ds, k=2)
        measured = measure_query(
            lambda c: index.query(q, 4, [1, 2], counter=c), registry
        )
        sweeps["n_sweep"].append(_point("N", index.input_size, measured))
    structural = [
        kd_crossing_report(index._index._transform.tree),
        space_report(index, per_unit_cap=64.0),
    ]

    fixed = LinfNnIndex(_zipf(mode.fixed_objects, dim=2, seed=seed), k=2)
    for t in mode.t_values:
        measured = measure_query(
            lambda c: fixed.query(q, t, [1, 2], counter=c), registry
        )
        sweeps["t_sweep"].append(_point("t", t, measured))
    return sweeps, structural


def _run_t1_7(mode: ModeConfig, seed: int, registry):
    sweeps: Dict[str, List[Dict[str, Any]]] = {"empty_out": [], "planted_n": []}
    index = None
    ds = None
    for num in mode.small_sweep_objects:
        ds = disjoint_pair_dataset(num, dim=2, seed=3)
        index = SrpKwIndex(ds, k=2)
        measured = measure_query(
            lambda c: index.query((0.5, 0.5), 0.4, [1, 2], counter=c), registry
        )
        sweeps["empty_out"].append(_point("N", index.input_size, measured))
    for num in mode.small_sweep_objects:
        planted = SrpKwIndex(_planted(num, 2), k=2)
        measured = measure_query(
            lambda c: planted.query((0.5, 0.5), 0.4, [1, 2], counter=c), registry
        )
        sweeps["planted_n"].append(_point("N", planted.input_size, measured))
    tree = PartitionTree([obj.point for obj in ds.objects])
    structural = [
        partition_crossing_report(tree, seed=seed + 20),
        space_report(index, per_unit_cap=96.0),
    ]
    return sweeps, structural


#: Fraction of churn updates that are deletes (the rest are inserts).
CHURN_DELETE_FRACTION = 0.25


def _churned_index(num: int, seed: int, planted: bool = False) -> DynamicOrpKw:
    """A :class:`DynamicOrpKw` grown through a seeded insert/delete mix.

    Every object of the source dataset is inserted one at a time; after a
    warm-up, roughly one delete per four inserts retires a uniformly random
    live object.  The mix is fully seeded (R6), so the resulting bucket
    ladder, tombstone history, and maintenance charges are reproducible
    byte-for-byte — the determinism the gate depends on.
    """
    ds = _planted(num, 2) if planted else _zipf(num, dim=2, seed=seed)
    rng = random.Random(seed * 100003 + num)
    index = DynamicOrpKw(k=2, dim=2)
    live: List[int] = []
    for obj in ds.objects:
        live.append(index.insert(obj.point, obj.doc))
        if len(live) > 8 and rng.random() < CHURN_DELETE_FRACTION:
            victim = live.pop(rng.randrange(len(live)))
            index.delete(victim)
    return index


def _run_churn(mode: ModeConfig, seed: int, registry):
    """The dynamization row: amortized maintenance + post-churn query cost.

    ``churn_maintenance`` sweeps the *cumulative maintenance cost* (carry
    merges + compaction rebuilds, as charged to ``Dynamized.maintenance``)
    against the number of updates ``U``: Bentley–Saxe predicts ``U log U``
    rebuild participations in total, i.e. a fitted exponent just above 1.
    ``churn_query`` sweeps post-churn query cost against live input size on
    a planted workload (fixed small OUT), where the static ``sqrt(N)``
    bound picks up the ladder's ``O(log n)`` bucket fan-out.
    """
    sweeps: Dict[str, List[Dict[str, Any]]] = {
        "churn_maintenance": [], "churn_query": [],
    }
    for num in mode.sweep_objects:
        index = _churned_index(num, seed)
        updates = index.epoch.epoch_id  # one epoch per insert/delete
        sweeps["churn_maintenance"].append(
            _point(
                "U", updates,
                {"out": len(index), "cost": index.maintenance.snapshot()},
            )
        )

    index = None
    for num in mode.sweep_objects:
        index = _churned_index(num, seed, planted=True)
        measured = measure_query(
            lambda c: index.query(Rect.full(2), [1, 2], counter=c), registry
        )
        sweeps["churn_query"].append(_point("N", index.input_size, measured))
    structural = [space_report(index, per_unit_cap=64.0)]
    return sweeps, structural


_ROW_RUNNERS = {
    "CHURN": _run_churn,
    "T1.1": _run_t1_1,
    "T1.2": _run_t1_2,
    "T1.5": _run_t1_5,
    "T1.7": _run_t1_7,
}

#: Rows `audit run` covers by default, in Table-1 order.
AUDITED_ROWS = tuple(sorted(_ROW_RUNNERS))


# -- fitting + report assembly -------------------------------------------------


def _fit_sweep(
    points: List[Dict[str, Any]], resamples: int, seed: int
) -> Dict[str, ExponentFit]:
    """One exponent fit per cost category with any signal, plus ``total``."""
    xs = [p["value"] for p in points]
    fits: Dict[str, ExponentFit] = {}
    for category in tuple(CATEGORIES) + ("total",):
        ys = [p["cost"].get(category, 0) for p in points]
        if not any(ys):
            continue
        fits[category] = fit_exponent(xs, ys, resamples=resamples, seed=seed)
    return fits


def run_row(
    row: str,
    mode: str = "full",
    seed: int = DEFAULT_SEED,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Produce the full, JSON-safe audit report for one Table-1 row."""
    prediction: RowPrediction = require_row(row)
    config = require_mode(mode)
    runner = _ROW_RUNNERS[row]
    sweeps, structural = runner(config, seed, registry)
    fits = {
        name: {cat: f.to_dict() for cat, f in sorted(
            _fit_sweep(points, config.resamples, seed).items()
        )}
        for name, points in sweeps.items()
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "row": row,
        "mode": config.name,
        "seed": seed,
        "prediction": prediction.to_dict(),
        "sweeps": {
            name: {"points": points} for name, points in sorted(sweeps.items())
        },
        "fits": fits,
        "structural": [report.to_dict() for report in structural],
    }


def run_rows(
    rows: Sequence[str],
    mode: str = "full",
    seed: int = DEFAULT_SEED,
    registry: Optional[MetricsRegistry] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Run several rows; returns ``{row: report}`` in input order."""
    reports: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        if log is not None:
            log(f"auditing {row} ({mode} mode)")
        reports[row] = run_row(row, mode=mode, seed=seed, registry=registry)
    return reports

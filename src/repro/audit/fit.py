"""Empirical scaling-exponent fitting with bootstrap confidence intervals.

The paper's Table-1 rows are statements of the form ``cost = O(N^e * ...)``.
A sweep measures cost at geometrically spaced parameter values; the fitted
log-log slope is the *empirical exponent* and is what the audit gate tracks
over time.  A point estimate alone cannot distinguish "the exponent moved"
from "the sweep is noisy", so every fit carries a seeded-bootstrap 95%
confidence interval: resample the (x, y) pairs with replacement, refit, and
take the 2.5/97.5 percentiles of the resampled slopes.

Everything here is deterministic given the seed (reprolint R6: no unseeded
RNG) and wall-clock free (R5): the inputs are RAM-model cost units.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from ..errors import ValidationError

#: Bootstrap resample count used by full-mode audit runs.
DEFAULT_RESAMPLES = 200

#: Two-sided confidence level of the reported interval.
CONFIDENCE = 0.95


def _loglog_pairs(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[Tuple[float, float], ...]:
    """Clamp non-positive measurements to 1 (zero cost reads as constant)."""
    return tuple(
        (math.log(max(float(x), 1.0)), math.log(max(float(y), 1.0)))
        for x, y in zip(xs, ys)
    )


def _ols(pairs: Sequence[Tuple[float, float]]) -> Optional[Tuple[float, float]]:
    """Least-squares (slope, intercept) in log space; None when degenerate."""
    n = len(pairs)
    mean_x = sum(p[0] for p in pairs) / n
    mean_y = sum(p[1] for p in pairs) / n
    sxx = sum((p[0] - mean_x) ** 2 for p in pairs)
    if sxx == 0:
        return None
    sxy = sum((p[0] - mean_x) * (p[1] - mean_y) for p in pairs)
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending sequence."""
    if not sorted_values:
        raise ValidationError("percentile of an empty sample")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return sorted_values[low]
    frac = position - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


@dataclass(frozen=True)
class ExponentFit:
    """One fitted scaling exponent, with its bootstrap uncertainty."""

    slope: float
    intercept: float
    ci_low: float
    ci_high: float
    r_squared: float
    points: int
    resamples: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slope": self.slope,
            "intercept": self.intercept,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "r_squared": self.r_squared,
            "points": self.points,
            "resamples": self.resamples,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExponentFit":
        return cls(
            slope=float(data["slope"]),
            intercept=float(data["intercept"]),
            ci_low=float(data["ci_low"]),
            ci_high=float(data["ci_high"]),
            r_squared=float(data["r_squared"]),
            points=int(data["points"]),
            resamples=int(data["resamples"]),
        )

    def covers(self, exponent: float) -> bool:
        """Whether the CI contains ``exponent``."""
        return self.ci_low <= exponent <= self.ci_high


def fit_exponent(
    xs: Sequence[float],
    ys: Sequence[float],
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> ExponentFit:
    """Fit ``log y ~ slope * log x`` and bootstrap the slope's 95% CI.

    The bootstrap resamples index tuples with a :class:`random.Random`
    seeded deterministically; degenerate resamples (all x equal) are skipped
    so pathological draws cannot poison the percentiles.
    """
    if len(xs) != len(ys):
        raise ValidationError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    pairs = _loglog_pairs(xs, ys)
    if len(pairs) < 2:
        raise ValidationError("need at least two points to fit an exponent")
    base = _ols(pairs)
    if base is None:
        raise ValidationError("degenerate sweep: all x values equal")
    slope, intercept = base

    mean_y = sum(p[1] for p in pairs) / len(pairs)
    ss_tot = sum((p[1] - mean_y) ** 2 for p in pairs)
    ss_res = sum((p[1] - (slope * p[0] + intercept)) ** 2 for p in pairs)
    r_squared = 1.0 if ss_tot == 0 else max(0.0, 1.0 - ss_res / ss_tot)

    rng = random.Random(seed)
    resampled: list = []
    for _ in range(max(resamples, 0)):
        draw = [pairs[rng.randrange(len(pairs))] for _ in pairs]
        refit = _ols(draw)
        if refit is not None:
            resampled.append(refit[0])
    if resampled:
        resampled.sort()
        alpha = (1.0 - CONFIDENCE) / 2.0
        ci_low = _percentile(resampled, alpha)
        ci_high = _percentile(resampled, 1.0 - alpha)
        # The point estimate always belongs to its own interval.
        ci_low = min(ci_low, slope)
        ci_high = max(ci_high, slope)
    else:
        ci_low = ci_high = slope
    return ExponentFit(
        slope=slope,
        intercept=intercept,
        ci_low=ci_low,
        ci_high=ci_high,
        r_squared=r_squared,
        points=len(pairs),
        resamples=len(resampled),
    )

"""Input data model: objects with keyword documents.

Every problem in the paper takes a set ``D`` of *objects*, each carrying a
non-empty *document* ``e.Doc`` formulated as a set of integers (keywords).
The input size is ``N = sum(|e.Doc| for e in D)`` — the paper's equation (2)
— and *not* the number of objects; all space/query bounds are stated in terms
of this ``N``.

:class:`KeywordObject` is a point object (used by ORP-KW, LC-KW, SRP-KW and
the nearest-neighbour problems); :class:`RectangleObject` is a rectangle
object (used by RR-KW).  :class:`Dataset` wraps a list of point objects and
precomputes the derived quantities every index needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .errors import ValidationError

Coordinate = float
PointTuple = Tuple[Coordinate, ...]


@dataclass(frozen=True)
class KeywordObject:
    """A point in R^d with a non-empty integer-keyword document.

    Attributes
    ----------
    oid:
        Object identifier, unique within a dataset.
    point:
        Coordinates, a tuple of ``d`` floats.
    doc:
        The document ``e.Doc`` — a frozenset of positive integers.  Frozenset
        membership plays the role of the paper's per-object perfect hash
        table (footnote 9): a ``w in e.doc`` test is an O(1) expected probe.
    """

    oid: int
    point: PointTuple
    doc: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.doc:
            raise ValidationError(f"object {self.oid} has an empty document")
        if not self.point:
            raise ValidationError(f"object {self.oid} has no coordinates")
        for coord in self.point:
            if math.isnan(coord) or math.isinf(coord):
                raise ValidationError(
                    f"object {self.oid} has a non-finite coordinate ({coord})"
                )

    @property
    def dim(self) -> int:
        """Dimensionality of the point."""
        return len(self.point)

    def contains_keywords(self, keywords: Sequence[int]) -> bool:
        """Return whether ``doc`` contains *all* of ``keywords``."""
        return all(word in self.doc for word in keywords)


@dataclass(frozen=True)
class RectangleObject:
    """A d-rectangle with a non-empty integer-keyword document (RR-KW input).

    ``lo`` and ``hi`` are the per-dimension lower/upper corners; degenerate
    rectangles (``lo == hi`` on some dimension) are allowed.
    """

    oid: int
    lo: PointTuple
    hi: PointTuple
    doc: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.doc:
            raise ValidationError(f"rectangle {self.oid} has an empty document")
        if len(self.lo) != len(self.hi):
            raise ValidationError(
                f"rectangle {self.oid}: corner dimensionalities differ "
                f"({len(self.lo)} vs {len(self.hi)})"
            )
        for low, high in zip(self.lo, self.hi):
            if low > high:
                raise ValidationError(
                    f"rectangle {self.oid}: lower corner exceeds upper corner"
                )
            if not (math.isfinite(low) and math.isfinite(high)):
                raise ValidationError(
                    f"rectangle {self.oid} has a non-finite corner"
                )

    @property
    def dim(self) -> int:
        """Dimensionality of the rectangle."""
        return len(self.lo)

    def contains_keywords(self, keywords: Sequence[int]) -> bool:
        """Return whether ``doc`` contains *all* of ``keywords``."""
        return all(word in self.doc for word in keywords)

    def intersects(self, lo: Sequence[float], hi: Sequence[float]) -> bool:
        """Return whether this rectangle intersects ``[lo, hi]``."""
        return all(
            self.lo[i] <= hi[i] and lo[i] <= self.hi[i] for i in range(self.dim)
        )


def make_objects(
    points: Sequence[Sequence[float]], docs: Sequence[Iterable[int]]
) -> List[KeywordObject]:
    """Build :class:`KeywordObject` instances from parallel sequences.

    Object ids are assigned ``0..len(points)-1`` in order.

    >>> objs = make_objects([(0.0, 1.0)], [[3, 5]])
    >>> objs[0].doc == frozenset({3, 5})
    True
    """
    if len(points) != len(docs):
        raise ValidationError(
            f"{len(points)} points but {len(docs)} documents"
        )
    return [
        KeywordObject(oid=i, point=tuple(float(c) for c in pt), doc=frozenset(doc))
        for i, (pt, doc) in enumerate(zip(points, docs))
    ]


class Dataset:
    """A set ``D`` of point objects plus the derived quantities of §1.1.

    Attributes
    ----------
    objects:
        The objects, in id order.
    dim:
        Common dimensionality ``d`` of all points.
    total_doc_size:
        The paper's input size ``N = Σ |e.Doc|`` (equation (2)).
    vocabulary:
        Sorted list of distinct keywords across all documents
        (``W = len(vocabulary)``).
    """

    def __init__(self, objects: Sequence[KeywordObject], dim: Optional[int] = None):
        if not objects and dim is None:
            raise ValidationError(
                "a dataset must contain at least one object "
                "(pass dim=... or use Dataset.empty(dim) for an explicitly empty one)"
            )
        dims = {obj.dim for obj in objects}
        if len(dims) > 1:
            raise ValidationError(f"mixed dimensionalities in dataset: {sorted(dims)}")
        if dims and dim is not None and dims != {dim}:
            raise ValidationError(
                f"dataset declared dim={dim} but objects are {dims.pop()}-dimensional"
            )
        oids = [obj.oid for obj in objects]
        if len(set(oids)) != len(oids):
            raise ValidationError("duplicate object ids in dataset")
        self.objects: List[KeywordObject] = list(objects)
        self.dim: int = dims.pop() if dims else dim
        self.total_doc_size: int = sum(len(obj.doc) for obj in self.objects)
        self._by_id: Dict[int, KeywordObject] = {o.oid: o for o in self.objects}
        vocab = set()
        for obj in self.objects:
            vocab.update(obj.doc)
        self.vocabulary: List[int] = sorted(vocab)

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.objects)

    def __getitem__(self, oid: int) -> KeywordObject:
        return self._by_id[oid]

    # -- derived quantities -------------------------------------------------

    @property
    def num_keywords(self) -> int:
        """The paper's ``W``: number of distinct keywords."""
        return len(self.vocabulary)

    def objects_with(self, keyword: int) -> List[KeywordObject]:
        """Return ``D(w)``: every object whose document contains ``keyword``.

        Linear scan — the indexes build their own inverted structures; this
        accessor exists for tests and small utilities.
        """
        return [obj for obj in self.objects if keyword in obj.doc]

    def matching(self, keywords: Sequence[int]) -> List[KeywordObject]:
        """Return ``D(w1..wk)`` (equation (1)) by linear scan."""
        return [obj for obj in self.objects if obj.contains_keywords(keywords)]

    @staticmethod
    def weight(objects: Iterable[KeywordObject]) -> int:
        """The paper's ``weight(D')`` (equation (9)): total document size."""
        return sum(len(obj.doc) for obj in objects)

    @classmethod
    def from_points(
        cls, points: Sequence[Sequence[float]], docs: Sequence[Iterable[int]]
    ) -> "Dataset":
        """Convenience constructor from parallel point/document sequences."""
        return cls(make_objects(points, docs))

    @classmethod
    def empty(cls, dim: int) -> "Dataset":
        """An explicitly empty dataset of dimensionality ``dim``.

        A bare ``Dataset([])`` is still rejected (almost always a data-loading
        bug); deliberately empty corpora — a freshly provisioned tenant, a
        shard that has not received data yet — must declare their
        dimensionality so queries can still be validated against it.
        """
        if dim < 1:
            raise ValidationError(f"dim must be >= 1, got {dim}")
        return cls([], dim=dim)


def validate_nonempty_keywords(keywords: Sequence[int]) -> List[int]:
    """Reject an empty keyword list; return the keywords as a list.

    Every query in the paper carries ``k >= 1`` keywords; an empty list is a
    malformed query, not a "match everything" wildcard.  All query entry
    points (inverted index, baselines, planner, engine) share this check so
    the contract is uniform.
    """
    words = list(keywords)
    if not words:
        raise ValidationError("need at least one keyword")
    return words


def validate_query_keywords(keywords: Sequence[int], k: int) -> Tuple[int, ...]:
    """Validate a query's keyword list against the index's fixed ``k``.

    The paper fixes ``k >= 2`` per index; queries must supply exactly ``k``
    distinct keywords.  Returns the keywords as a tuple.
    """
    words = tuple(keywords)
    if len(words) != k:
        raise ValidationError(f"query must supply exactly k={k} keywords, got {len(words)}")
    if len(set(words)) != len(words):
        raise ValidationError(f"query keywords must be distinct, got {words}")
    return words

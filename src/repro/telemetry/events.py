"""Bounded, schema-versioned structured event log for the serving stack.

Query records answer "what did query 17 cost"; the event log answers "what
*happened*, in order" — which epochs were published, which queries were
shed and why, when a carry merge or compaction ran, when a shard map was
rebalanced.  EMBANKS-style operational auditing wants those page/epoch-like
events held to the same rigor as RAM-model costs, so the log is:

* **typed** — every event carries a ``kind`` from :data:`EVENT_KINDS`;
  emitting an unknown kind raises (a typo must not silently create a new
  stream nobody monitors);
* **bounded** — a ring buffer of ``capacity`` events; overwritten events
  are *counted* (:attr:`EventLog.dropped`), never silently lost;
* **ordered** — sequence numbers are monotone and never reused, so an
  exported tail makes gaps visible;
* **schema-versioned and deterministic** — :meth:`EventLog.export_jsonl`
  renders sorted-key JSON lines stamped with :data:`SCHEMA_VERSION`,
  byte-identical across runs of a seeded workload (timestamps come from the
  injectable :mod:`~repro.telemetry.clock`, which defaults to an event
  counter, not wall time).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from ..errors import ValidationError
from .clock import Clock, CounterClock

#: Event-line schema version (bump on incompatible field changes).
SCHEMA_VERSION = 1

#: Every event kind the serving stack emits.  Grouped by emitter:
#: engines (query_*, cache_evict), the dynamization layer (epoch_publish,
#: carry_merge, compaction), the sharded engine (shard_rebalance), and the
#: snapshot manager (snapshot_pin, snapshot_release).
EVENT_KINDS = frozenset(
    {
        "query_finish",
        "query_shed",
        "query_degraded",
        "cache_evict",
        "epoch_publish",
        "carry_merge",
        "compaction",
        "shard_rebalance",
        "snapshot_pin",
        "snapshot_release",
    }
)


@dataclass(frozen=True)
class Event:
    """One structured event: monotone ``seq``, typed ``kind``, flat fields."""

    seq: int
    ts: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (schema-stamped, deterministic key order
        under ``sort_keys=True``)."""
        return {
            "schema": SCHEMA_VERSION,
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "fields": dict(self.fields),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def _validate_fields(kind: str, fields: Dict[str, Any]) -> Dict[str, Any]:
    """Reject non-JSON-scalar field values before they reach the ring.

    Events are exported verbatim; a set or an object sneaking in would make
    the JSONL rendering nondeterministic (or crash the exporter long after
    the emitting call site is gone from the stack).
    """
    for name, value in fields.items():
        if value is not None and not isinstance(value, (bool, int, float, str)):
            raise ValidationError(
                f"event {kind} field {name!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
    return dict(fields)


class EventLog:
    """Bounded ring buffer of typed serving events.

    Parameters
    ----------
    capacity:
        Ring size; the oldest event is overwritten (and counted in
        :attr:`dropped`) once full.
    clock:
        Timestamp source; defaults to a private
        :class:`~repro.telemetry.clock.CounterClock` (deterministic event
        counting).  Pass :class:`~repro.telemetry.clock.MonotonicClock`
        for live wall-clock stamps.

    One log may be shared across every serving component of a deployment
    (engine, async front end, dynamic index, snapshot manager): sequence
    numbers then give a single total order over the whole stack's events.
    """

    def __init__(self, capacity: int = 4096, clock: Optional[Clock] = None):
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock if clock is not None else CounterClock()
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        #: Events overwritten by the ring bound (visible truncation).
        self.dropped = 0
        self._kind_counts: Dict[str, int] = {}

    def emit(self, kind: str, **fields: Any) -> Event:
        """Append one typed event; returns it (seq monotone, never reused)."""
        if kind not in EVENT_KINDS:
            raise ValidationError(
                f"unknown event kind {kind!r}; known kinds: "
                f"{', '.join(sorted(EVENT_KINDS))}"
            )
        self._seq += 1
        self.clock.tick()
        event = Event(
            seq=self._seq,
            ts=self.clock.now(),
            kind=kind,
            fields=_validate_fields(kind, fields),
        )
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        return event

    # -- reading ----------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Retained events oldest first (optionally one kind only)."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def tail(self, count: int) -> List[Event]:
        """The most recent ``count`` retained events, oldest first."""
        if count <= 0:
            return []
        return list(self._events)[-count:]

    def __len__(self) -> int:
        return len(self._events)

    @property
    def last_seq(self) -> int:
        """Highest sequence number ever emitted (0 before the first)."""
        return self._seq

    def counts(self) -> Dict[str, int]:
        """Lifetime per-kind emission counts (drops do not decrement)."""
        return dict(sorted(self._kind_counts.items()))

    # -- rendering --------------------------------------------------------------

    def export_jsonl(self, kind: Optional[str] = None) -> str:
        """Deterministic JSON-lines rendering of the retained events."""
        return "\n".join(event.to_json() for event in self.events(kind))

    def stats(self) -> Dict[str, Any]:
        """JSON-safe summary (sizes, drops, per-kind counts)."""
        return {
            "schema": SCHEMA_VERSION,
            "capacity": self.capacity,
            "retained": len(self._events),
            "emitted": self._seq,
            "dropped": self.dropped,
            "kinds": self.counts(),
        }

"""Sliding-window SLO monitors feeding graduated admission shedding.

An SLO here is a target over the *last W queries* (a count window, not a
time window — the serving stack owns no wall clock): the fraction that
exhausted their budget, the fraction that were shed, and the window's p99
cost against a cost-unit target.  Each objective reports a **burn rate**,
``observed / target``: 1.0 means running exactly at target, 2.0 means
burning the error budget twice as fast as allowed.

The monitor folds its verdicts into a single graduated **pressure** level:

====  ==========================  =======================================
 0    every burn < ``warn_burn``   admit normally
 1    any burn >= ``warn_burn``    :class:`~repro.service.async_engine.
                                   AdmissionController` halves its
                                   in-flight capacity
 2    any burn >= ``critical_burn``  capacity drops to a quarter
====  ==========================  =======================================

Shedding driven by pressure raises :class:`SloShed` — a
:class:`~repro.errors.BudgetExceeded` subclass, so every existing
``except BudgetExceeded`` path handles it unchanged — carrying a
``reason`` like ``"shed:slo:p99_cost"`` that the async front end records
in the refused query's :class:`~repro.service.engine.QueryRecord`, making
each graduated-shed decision attributable to the objective that tripped.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from ..errors import BudgetExceeded, ValidationError

#: Default sliding-window length (queries).
DEFAULT_WINDOW = 128


class SloShed(BudgetExceeded):
    """A query refused by SLO-driven graduated admission control.

    Subclasses :class:`~repro.errors.BudgetExceeded` so admission-control
    callers (which already treat shedding as a budget refusal) need no new
    except clauses; :attr:`reason` names the objective that tripped, e.g.
    ``"shed:slo:shed_rate"``.
    """

    def __init__(self, reason: str, spent: int, budget: int):
        super().__init__(spent, budget)
        self.reason = reason


class SLOMonitor:
    """Burn-rate monitor over a sliding window of query outcomes.

    Parameters
    ----------
    window:
        How many most-recent queries the objectives are computed over.
    max_budget_exhausted_rate:
        Target ceiling on the fraction of window queries that exhausted
        their per-query budget (recorded fallbacks); ``None`` disables
        the objective.
    max_shed_rate:
        Target ceiling on the fraction of window queries that were shed.
    p99_cost_target:
        Cost-unit target for the window's exact p99 of executed-query
        cost.
    warn_burn / critical_burn:
        Pressure thresholds on the worst objective's burn rate.

    The monitor is deterministic: observations are counts and cost units,
    the p99 is an exact order statistic over the window, and identical
    observation sequences always produce identical verdicts.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        max_budget_exhausted_rate: Optional[float] = None,
        max_shed_rate: Optional[float] = None,
        p99_cost_target: Optional[int] = None,
        warn_burn: float = 1.0,
        critical_burn: float = 2.0,
    ):
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        for name, rate in (
            ("max_budget_exhausted_rate", max_budget_exhausted_rate),
            ("max_shed_rate", max_shed_rate),
        ):
            if rate is not None and not 0.0 < rate <= 1.0:
                raise ValidationError(f"{name} must be in (0, 1], got {rate}")
        if p99_cost_target is not None and p99_cost_target < 1:
            raise ValidationError(
                f"p99_cost_target must be >= 1, got {p99_cost_target}"
            )
        if not 0.0 < warn_burn <= critical_burn:
            raise ValidationError(
                "need 0 < warn_burn <= critical_burn, got "
                f"{warn_burn} / {critical_burn}"
            )
        self.window = window
        self.max_budget_exhausted_rate = max_budget_exhausted_rate
        self.max_shed_rate = max_shed_rate
        self.p99_cost_target = p99_cost_target
        self.warn_burn = warn_burn
        self.critical_burn = critical_burn
        #: (cost_total, budget_exhausted, shed) per observed query.
        self._observations: Deque[Tuple[int, bool, bool]] = deque(maxlen=window)
        self._observed = 0

    # -- feeding -----------------------------------------------------------------

    def observe_query(
        self,
        cost: int = 0,
        budget_exhausted: bool = False,
        shed: bool = False,
    ) -> None:
        """Record one query outcome (served or shed) into the window."""
        self._observations.append((int(cost), bool(budget_exhausted), bool(shed)))
        self._observed += 1

    # -- objectives --------------------------------------------------------------

    def window_p99(self) -> Optional[float]:
        """Exact p99 of executed (non-shed) query cost over the window."""
        costs = sorted(
            cost for cost, _exhausted, shed in self._observations if not shed
        )
        if not costs:
            return None
        # Ceil-rank order statistic: the smallest cost with at least 99% of
        # the executed window at or below it.
        rank = max(int(-(-0.99 * len(costs) // 1)), 1)  # ceil without math
        return float(costs[rank - 1])

    def burn_rates(self) -> Dict[str, float]:
        """Per-objective burn rates (``observed / target``), targets only.

        Empty until the first observation; objectives without a configured
        target never appear.
        """
        total = len(self._observations)
        if total == 0:
            return {}
        burns: Dict[str, float] = {}
        if self.max_budget_exhausted_rate is not None:
            exhausted = sum(1 for _c, e, _s in self._observations if e)
            burns["budget_exhausted_rate"] = (
                exhausted / total
            ) / self.max_budget_exhausted_rate
        if self.max_shed_rate is not None:
            shed = sum(1 for _c, _e, s in self._observations if s)
            burns["shed_rate"] = (shed / total) / self.max_shed_rate
        if self.p99_cost_target is not None:
            p99 = self.window_p99()
            if p99 is not None:
                burns["p99_cost"] = p99 / self.p99_cost_target
        return burns

    def worst(self) -> Optional[Tuple[str, float]]:
        """The objective with the highest burn rate (``None`` when empty).

        Ties break alphabetically so verdicts are deterministic.
        """
        burns = self.burn_rates()
        if not burns:
            return None
        name = max(sorted(burns), key=lambda key: burns[key])
        return name, burns[name]

    def pressure(self) -> int:
        """Graduated shed signal: 0 healthy, 1 warning, 2 critical."""
        verdict = self.worst()
        if verdict is None:
            return 0
        _name, burn = verdict
        if burn >= self.critical_burn:
            return 2
        if burn >= self.warn_burn:
            return 1
        return 0

    def shed_reason(self) -> str:
        """The ``QueryRecord.reason`` string naming the tripped objective."""
        verdict = self.worst()
        objective = verdict[0] if verdict is not None else "unknown"
        return f"shed:slo:{objective}"

    # -- reporting ---------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """JSON-safe verdict summary (window, burns, pressure)."""
        return {
            "window": self.window,
            "observed": self._observed,
            "in_window": len(self._observations),
            "burn_rates": dict(sorted(self.burn_rates().items())),
            "pressure": self.pressure(),
            "targets": {
                "max_budget_exhausted_rate": self.max_budget_exhausted_rate,
                "max_shed_rate": self.max_shed_rate,
                "p99_cost_target": self.p99_cost_target,
                "warn_burn": self.warn_burn,
                "critical_burn": self.critical_burn,
            },
        }

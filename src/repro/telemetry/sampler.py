"""Tail-based trace retention under a hard memory bound.

Full :class:`~repro.trace.TraceSpan` trees are the most expensive telemetry
artifact the serving stack produces, and almost all of them describe
healthy, fast queries nobody will ever read.  Tail sampling keeps exactly
the traces a production investigation wants:

* **mandatory** — every shed, degraded, or reason-carrying (refused/
  SLO-attributed) query is retained unconditionally;
* **slowest-k** — the ``k`` highest-cost queries seen so far compete for
  the remaining slots: a new query bumps the cheapest retained one once
  the pool is full;
* **head samples** — optionally every ``head_every``-th offered query is
  kept regardless, giving a low-rate baseline of *normal* behaviour to
  compare the tail against.

Everything retained together must fit ``memory_bound`` estimated bytes
(the JSON rendering's length — deterministic, allocator-independent).
When the bound overflows, head samples are dropped first (oldest first),
then the cheapest slow entries, then the oldest mandatory entries — the
bound is hard and wins over every retention class.  Costs are RAM-model
cost units; nothing here reads a clock.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ValidationError

#: Retention classes, in eviction order (first evicted first).
RETENTION_CLASSES = ("head", "slow", "shed", "degraded", "reason")

#: Classes that are always retained (never compete for slow-k slots).
MANDATORY_CLASSES = frozenset({"shed", "degraded", "reason"})


class RetainedTrace:
    """One retained query record: why it was kept and what it weighs."""

    __slots__ = ("seq", "query_id", "cost", "why", "size", "record")

    def __init__(
        self,
        seq: int,
        query_id: int,
        cost: int,
        why: str,
        size: int,
        record: Dict[str, Any],
    ):
        self.seq = seq
        self.query_id = query_id
        self.cost = cost
        self.why = why
        self.size = size
        self.record = record

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (the record dict plus retention metadata)."""
        return {
            "seq": self.seq,
            "query_id": self.query_id,
            "cost": self.cost,
            "why": self.why,
            "size": self.size,
            "record": self.record,
        }


class TailSampler:
    """Decide which query records (with their trace trees) to retain.

    Parameters
    ----------
    slowest_k:
        How many highest-cost healthy queries to keep.
    memory_bound:
        Hard cap on the summed estimated sizes of everything retained
        (bytes of the records' deterministic JSON rendering).
    head_every:
        Keep every ``head_every``-th offered record as a baseline head
        sample; ``0`` (the default) disables head sampling.

    :meth:`offer` is called once per finished (or shed) query with its
    :class:`~repro.service.engine.QueryRecord`; the return value tells the
    caller whether the record's trace was retained — when ``False`` the
    caller should drop the trace tree (``record.trace = None``) so
    unretained span trees do not pile up in the record deque.
    """

    def __init__(
        self,
        slowest_k: int = 8,
        memory_bound: int = 1 << 20,
        head_every: int = 0,
    ):
        if slowest_k < 1:
            raise ValidationError(f"slowest_k must be >= 1, got {slowest_k}")
        if memory_bound < 1:
            raise ValidationError(
                f"memory_bound must be >= 1, got {memory_bound}"
            )
        if head_every < 0:
            raise ValidationError(
                f"head_every must be >= 0, got {head_every}"
            )
        self.slowest_k = slowest_k
        self.memory_bound = memory_bound
        self.head_every = head_every
        self._entries: List[RetainedTrace] = []
        self._offered = 0
        self.rejected = 0
        #: Entries pushed out after retention (slow-k competition or the
        #: memory bound) — visible truncation, never silent.
        self.evicted = 0

    # -- retention decision ------------------------------------------------------

    def offer(self, record) -> bool:
        """Consider one finished query's record; return whether it is kept."""
        self._offered += 1
        why = self._classify(record)
        cost = int(record.cost.get("total", 0)) if record.cost else 0
        if why is None and self.head_every and (
            self._offered % self.head_every == 0
        ):
            why = "head"
        if why is None:
            why = self._admit_slow(cost)
        if why is None:
            self.rejected += 1
            return False
        entry = RetainedTrace(
            seq=self._offered,
            query_id=record.query_id,
            cost=cost,
            why=why,
            size=len(record.to_json()),
            record=record.to_dict(),
        )
        self._entries.append(entry)
        self._enforce_bound()
        return entry in self._entries

    @staticmethod
    def _classify(record) -> Optional[str]:
        """The record's mandatory retention class, or ``None`` if healthy."""
        if record.strategy == "shed":
            return "shed"
        if getattr(record, "reason", None):
            return "reason"
        if record.degraded:
            return "degraded"
        return None

    def _admit_slow(self, cost: int) -> Optional[str]:
        """Admit into the slowest-k pool, bumping the cheapest if full."""
        slow = [e for e in self._entries if e.why == "slow"]
        if len(slow) < self.slowest_k:
            return "slow"
        weakest = min(slow, key=lambda e: (e.cost, e.seq))
        if cost <= weakest.cost:
            return None
        self._entries.remove(weakest)
        self.evicted += 1
        return "slow"

    def _enforce_bound(self) -> None:
        """Evict until everything retained fits the hard memory bound.

        Eviction order: head samples (oldest first), then slow entries
        (cheapest first), then mandatory entries (oldest first) — the bound
        wins over every retention class.
        """
        while self.total_size > self.memory_bound and self._entries:
            victim = min(
                self._entries,
                key=lambda e: (RETENTION_CLASSES.index(e.why), e.cost, e.seq)
                if e.why == "slow"
                else (RETENTION_CLASSES.index(e.why), 0, e.seq),
            )
            self._entries.remove(victim)
            self.evicted += 1

    # -- reading -----------------------------------------------------------------

    @property
    def total_size(self) -> int:
        """Summed estimated sizes (bytes) of everything retained."""
        return sum(entry.size for entry in self._entries)

    def retained(self, why: Optional[str] = None) -> List[RetainedTrace]:
        """Retained entries, oldest first (optionally one class only)."""
        entries = (
            self._entries
            if why is None
            else [entry for entry in self._entries if entry.why == why]
        )
        return sorted(entries, key=lambda e: e.seq)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """JSON-safe retention summary (offered/kept/evicted, per class)."""
        by_class: Dict[str, int] = {}
        for entry in self._entries:
            by_class[entry.why] = by_class.get(entry.why, 0) + 1
        return {
            "offered": self._offered,
            "retained": len(self._entries),
            "rejected": self.rejected,
            "evicted": self.evicted,
            "total_size": self.total_size,
            "memory_bound": self.memory_bound,
            "slowest_k": self.slowest_k,
            "head_every": self.head_every,
            "classes": dict(sorted(by_class.items())),
        }

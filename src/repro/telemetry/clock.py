"""The telemetry layer's *only* clock access, injectable and audited.

Every other telemetry module is keyed on **cost units and event counts** —
sliding windows over the last ``W`` queries, burn rates over shed *counts*,
quantiles over cost-unit histograms — so the whole subsystem is
deterministic under a seeded workload and reprolint rule R5 (no wall clock
in cost-accounted packages) audits the tree.  The one legitimate wall-clock
need — an operator wanting human-time event stamps in an exported JSONL —
is isolated here behind an explicit opt-in:

* :class:`CounterClock` — the **default** everywhere: a monotone event
  counter.  ``now()`` returns how many ticks have been recorded, so two
  runs of the same seeded workload produce byte-identical exports.
* :class:`MonotonicClock` — the opt-in wall clock for live deployments.
  Its ``time.monotonic`` call is the telemetry package's single reviewed
  R5 baseline entry; nothing else in ``repro/telemetry`` may touch
  :mod:`time` (the lint gate enforces this).

Anything in the telemetry package that needs a timestamp takes a
``clock=`` parameter defaulting to a fresh :class:`CounterClock`; passing
:class:`MonotonicClock` is a deployment decision, never a default.
"""

from __future__ import annotations

import time


class Clock:
    """Minimal clock protocol: a monotone, float-valued ``now()``."""

    def now(self) -> float:
        raise NotImplementedError

    def tick(self, ticks: int = 1) -> None:
        """Advance event-count clocks; wall clocks ignore it."""


class CounterClock(Clock):
    """Deterministic event-count clock (the telemetry default).

    ``now()`` reports the number of ticks recorded so far; callers tick it
    once per emitted event, so "timestamps" are reproducible sequence
    positions rather than wall-clock readings.
    """

    __slots__ = ("_ticks",)

    def __init__(self, start: int = 0):
        self._ticks = int(start)

    def tick(self, ticks: int = 1) -> None:
        self._ticks += ticks

    def now(self) -> float:
        return float(self._ticks)


class MonotonicClock(Clock):
    """Opt-in wall clock for live deployments (never a default).

    The single place the telemetry package reads real time; reviewed and
    baselined under reprolint R5 so any *new* wall-clock use elsewhere in
    the package fails the lint gate.
    """

    __slots__ = ()

    def now(self) -> float:
        return time.monotonic()

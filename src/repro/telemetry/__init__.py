"""Serving telemetry: quantiles, events, exporter, tail sampling, SLOs.

The serving stack (``repro.service``) accounts every query in RAM-model
cost units; this package turns those accounts into *operational* answers
without ever re-introducing wall-clock time into the cost paths:

* :mod:`~repro.telemetry.quantiles` — mergeable ``p50/p90/p99`` estimation
  over :class:`~repro.trace.MetricHistogram` buckets, plus the
  per-``(strategy, backend)`` :class:`StatsCollector` planner feed;
* :mod:`~repro.telemetry.events` — the bounded, schema-versioned
  :class:`EventLog` of typed serving events (epoch publishes, sheds,
  cache evictions, rebalances, ...);
* :mod:`~repro.telemetry.exporter` — byte-deterministic
  OpenMetrics/Prometheus text exposition and multi-registry roll-up;
* :mod:`~repro.telemetry.sampler` — tail-based :class:`TailSampler` trace
  retention (mandatory shed/degraded, slowest-k, head samples) under a
  hard memory bound;
* :mod:`~repro.telemetry.slo` — sliding-window :class:`SLOMonitor` burn
  rates whose graduated pressure signal feeds
  :class:`~repro.service.async_engine.AdmissionController` shedding;
* :mod:`~repro.telemetry.clock` — the single, injectable clock boundary
  (deterministic :class:`CounterClock` by default; the opt-in
  :class:`MonotonicClock` is the package's one reviewed wall-clock read).
"""

from .clock import Clock, CounterClock, MonotonicClock
from .events import EVENT_KINDS, SCHEMA_VERSION, Event, EventLog
from .exporter import merge_registries, quantile_rows, render_openmetrics
from .quantiles import (
    PLANNER_STATS_SCHEMA,
    STANDARD_QUANTILES,
    RunningStat,
    StatsCollector,
    estimate_quantile,
    summarize_quantiles,
)
from .sampler import (
    MANDATORY_CLASSES,
    RETENTION_CLASSES,
    RetainedTrace,
    TailSampler,
)
from .slo import DEFAULT_WINDOW, SLOMonitor, SloShed

__all__ = [
    "Clock",
    "CounterClock",
    "MonotonicClock",
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "Event",
    "EventLog",
    "merge_registries",
    "quantile_rows",
    "render_openmetrics",
    "PLANNER_STATS_SCHEMA",
    "STANDARD_QUANTILES",
    "RunningStat",
    "StatsCollector",
    "estimate_quantile",
    "summarize_quantiles",
    "MANDATORY_CLASSES",
    "RETENTION_CLASSES",
    "RetainedTrace",
    "TailSampler",
    "DEFAULT_WINDOW",
    "SLOMonitor",
    "SloShed",
]

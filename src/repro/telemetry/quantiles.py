"""Mergeable quantile estimation + per-strategy planner statistics.

Two feeds for production questions the raw counters cannot answer:

* :func:`estimate_quantile` — ``p50/p90/p99`` (any ``q``) from a
  :class:`~repro.trace.MetricHistogram` or its :meth:`snapshot` dict.  The
  histogram's exponential buckets are *mergeable* (identical bounds sum
  bucket-wise, see :meth:`~repro.trace.MetricHistogram.merge`), so the same
  estimator answers per-shard, per-engine, or fleet-wide questions from
  summed bucket counts.  Within a bucket the estimate interpolates linearly
  and deterministically — two runs of the same workload report the same
  ``p99`` to the last bit.
* :class:`StatsCollector` — per-``(strategy, backend)`` running statistics
  (Welford mean/variance, min/max) of query cost, result count, and
  selectivity, exposed through the stable :meth:`~StatsCollector.
  planner_stats` API.  This is the collected-statistics feed the ROADMAP's
  adaptive planner item names: a future :class:`~repro.core.planner.
  HybridPlanner` reads measured per-strategy selectivity and cost instead
  of static heuristics.

Everything here is cost-unit- and count-valued; no wall clock (reprolint
R5 audits this package).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ValidationError
from ..trace.metrics import MetricHistogram

#: The standard reporting quantiles, in display order.
STANDARD_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: Schema version of the :meth:`StatsCollector.planner_stats` rendering.
PLANNER_STATS_SCHEMA = 1


def _bounds_and_counts(
    histogram: Union[MetricHistogram, Mapping[str, Any]],
) -> Tuple[Tuple[float, ...], List[int], int, float, Optional[float], Optional[float]]:
    """Normalize a histogram or its snapshot into raw bucket arrays."""
    if isinstance(histogram, MetricHistogram):
        return (
            histogram.bounds,
            list(histogram.bucket_counts),
            histogram.overflow,
            histogram.total,
            histogram.low,
            histogram.high,
        )
    try:
        buckets = histogram["buckets"]
        bounds = tuple(float(key[len("le_"):]) for key in buckets)
        counts = [int(count) for count in buckets.values()]
        return (
            bounds,
            counts,
            int(histogram["overflow"]),
            float(histogram["sum"]),
            histogram["min"],
            histogram["max"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"not a histogram snapshot ({exc})") from exc


def estimate_quantile(
    histogram: Union[MetricHistogram, Mapping[str, Any]], q: float
) -> Optional[float]:
    """Estimate the ``q``-quantile of a bucketed distribution.

    Deterministic rule: the target rank is ``q * count``; the estimate is
    the point where the cumulative bucket counts cross that rank, with
    linear interpolation inside the crossing bucket (lower edge 0 for the
    first bucket, the previous bound otherwise; the overflow bucket
    interpolates up to the observed ``max``).  The result is clamped into
    ``[min, max]`` so a wide first bucket cannot report an estimate below
    the smallest observation.  Returns ``None`` on an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValidationError(f"quantile must be in [0, 1], got {q}")
    bounds, counts, overflow, _total, low, high = _bounds_and_counts(histogram)
    population = sum(counts) + overflow
    if population == 0:
        return None
    rank = q * population
    cumulative = 0
    edges = [0.0] + list(bounds)
    for index, count in enumerate(counts):
        if count and cumulative + count >= rank:
            lo, hi = edges[index], edges[index + 1]
            fraction = (rank - cumulative) / count
            estimate = lo + (hi - lo) * max(fraction, 0.0)
            return _clamp(estimate, low, high)
        cumulative += count
    # Overflow bucket: everything above the last bound, capped at max.
    lo = edges[-1]
    hi = high if high is not None and high > lo else lo
    fraction = (rank - cumulative) / overflow if overflow else 1.0
    return _clamp(lo + (hi - lo) * max(min(fraction, 1.0), 0.0), low, high)


def _clamp(value: float, low: Optional[float], high: Optional[float]) -> float:
    if low is not None:
        value = max(value, low)
    if high is not None:
        value = min(value, high)
    return value


def summarize_quantiles(
    histogram: Union[MetricHistogram, Mapping[str, Any]],
    quantiles: Sequence[float] = STANDARD_QUANTILES,
) -> Dict[str, Optional[float]]:
    """The standard ``{"p50": ..., "p90": ..., "p99": ...}`` summary."""
    return {
        f"p{int(q * 100)}": estimate_quantile(histogram, q) for q in quantiles
    }


class RunningStat:
    """Welford running mean/variance with min/max (exact, single pass)."""

    __slots__ = ("count", "mean", "_m2", "low", "high")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.low = value if self.low is None else min(self.low, value)
        self.high = value if self.high is None else max(self.high, value)

    @property
    def variance(self) -> float:
        """Population variance (0.0 before the second observation)."""
        return self._m2 / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "min": self.low,
            "max": self.high,
        }


class StatsCollector:
    """Per-``(strategy, backend)`` running statistics for the planner feed.

    The serving engines call :meth:`observe` once per *executed* (non-cache-
    hit) query with the chosen strategy, resolved backend, charged cost, and
    result count; selectivity is derived as ``result_count / corpus_size``
    when the corpus size is known.  :meth:`planner_stats` renders a stable,
    JSON-safe, schema-versioned view — the contract the future adaptive
    planner (and any dashboard) reads, insulated from internal layout.
    """

    __slots__ = ("_cells",)

    #: The tracked per-cell series, in rendering order.
    SERIES = ("cost", "result_count", "selectivity")

    def __init__(self):
        self._cells: Dict[Tuple[str, str], Dict[str, RunningStat]] = {}

    def observe(
        self,
        strategy: str,
        backend: str,
        cost: int,
        result_count: int,
        corpus_size: Optional[int] = None,
    ) -> None:
        """Record one executed query's outcome into its (strategy, backend) cell."""
        cell = self._cells.get((strategy, backend))
        if cell is None:
            cell = {name: RunningStat() for name in self.SERIES}
            self._cells[(strategy, backend)] = cell
        cell["cost"].observe(cost)
        cell["result_count"].observe(result_count)
        if corpus_size:
            cell["selectivity"].observe(result_count / corpus_size)

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector's cells into this one (sharded roll-up).

        Means/variances combine with the exact pooled (Chan) update, so a
        merged collector reports the same statistics as one that observed
        every query directly.
        """
        for key, cell in other._cells.items():
            mine = self._cells.get(key)
            if mine is None:
                mine = {name: RunningStat() for name in self.SERIES}
                self._cells[key] = mine
            for name in self.SERIES:
                _pool_into(mine[name], cell[name])

    def cell(self, strategy: str, backend: str) -> Optional[Dict[str, RunningStat]]:
        """The raw cell, or ``None`` when that pair was never observed."""
        return self._cells.get((strategy, backend))

    def planner_stats(self) -> Dict[str, Any]:
        """The stable statistics feed (sorted, JSON-safe, schema-versioned)."""
        return {
            "schema": PLANNER_STATS_SCHEMA,
            "strategies": [
                {
                    "strategy": strategy,
                    "backend": backend,
                    "queries": cell["cost"].count,
                    **{name: cell[name].to_dict() for name in self.SERIES},
                }
                for (strategy, backend), cell in sorted(self._cells.items())
            ],
        }


def _pool_into(target: RunningStat, source: RunningStat) -> None:
    """Chan et al. pooled mean/M2 update: target += source, exactly."""
    if source.count == 0:
        return
    if target.count == 0:
        target.count = source.count
        target.mean = source.mean
        target._m2 = source._m2
        target.low = source.low
        target.high = source.high
        return
    combined = target.count + source.count
    delta = source.mean - target.mean
    target._m2 = (
        target._m2
        + source._m2
        + delta * delta * target.count * source.count / combined
    )
    target.mean = target.mean + delta * source.count / combined
    target.count = combined
    if source.low is not None:
        target.low = source.low if target.low is None else min(target.low, source.low)
    if source.high is not None:
        target.high = (
            source.high if target.high is None else max(target.high, source.high)
        )

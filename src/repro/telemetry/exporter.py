"""OpenMetrics/Prometheus text exposition for any :class:`MetricsRegistry`.

:func:`render_openmetrics` turns a registry (or its :meth:`snapshot` dict)
into the standard text format — ``# TYPE`` headers, counters suffixed
``_total``, histograms as cumulative ``_bucket{le="..."}`` series plus
``_sum``/``_count``, a closing ``# EOF`` — with every instrument sorted by
name and numbers rendered canonically, so the same registry state always
produces byte-identical output (the CI golden check pins this on the
seeded S1 workload).

:func:`merge_registries` rolls several registries (for example one per
shard) into a single fresh one: counters sum, histograms merge bucket-wise
via :meth:`~repro.trace.MetricHistogram.merge` (identical bounds
enforced), gauges sum (shard gauges in this codebase are sizes and
epoch counts, for which addition is the meaningful roll-up).
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Union

from ..errors import ValidationError
from ..trace.metrics import MetricsRegistry

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(namespace: str, name: str) -> str:
    """``<namespace>_<name>`` with invalid metric-name characters replaced."""
    full = f"{namespace}_{name}" if namespace else name
    return _NAME_SANITIZER.sub("_", full)


def _format_value(value: Union[int, float]) -> str:
    """Canonical number rendering: integral values without a decimal point."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _le_label(bound: float) -> str:
    """The ``le`` label value matching the snapshot's ``le_`` key style."""
    return f"{int(bound)}" if float(bound).is_integer() else f"{bound:g}"


def render_openmetrics(
    registry: Union[MetricsRegistry, Mapping[str, Any]],
    namespace: str = "repro",
) -> str:
    """Render a registry (or its snapshot) as OpenMetrics text.

    The output is byte-deterministic: instruments sort by name, buckets
    keep registration order (bounds are strictly increasing), and numbers
    render canonically.  The returned string ends with ``# EOF`` and a
    trailing newline.
    """
    snapshot = (
        registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
    )
    try:
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        histograms = snapshot["histograms"]
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"not a registry snapshot ({exc})") from exc

    lines: List[str] = []
    for name in sorted(counters):
        base = _metric_name(namespace, name)
        if base.endswith("_total"):
            base = base[: -len("_total")]
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base}_total {_format_value(counters[name])}")
    for name in sorted(gauges):
        base = _metric_name(namespace, name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_format_value(gauges[name])}")
    for name in sorted(histograms):
        base = _metric_name(namespace, name)
        data = histograms[name]
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for key, count in data["buckets"].items():
            cumulative += count
            bound = float(key[len("le_"):])
            lines.append(
                f'{base}_bucket{{le="{_le_label(bound)}"}} {cumulative}'
            )
        cumulative += data["overflow"]
        lines.append(f'{base}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{base}_sum {_format_value(data['sum'])}")
        lines.append(f"{base}_count {data['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fold several registries into one fresh aggregate registry.

    Counters and gauges sum; histograms with the same name must have been
    registered with identical bucket bounds (``MetricHistogram.merge``
    raises otherwise).  The inputs are left untouched.
    """
    merged = MetricsRegistry()
    for registry in registries:
        for name in registry.counter_names():
            merged.counter(name).inc(registry.counter(name).value)
        for name in registry.gauge_names():
            gauge = merged.gauge(name)
            gauge.set(gauge.value + registry.gauge(name).value)
        for name in registry.histogram_names():
            source = registry.histogram(name)
            merged.histogram(name, source.bounds).merge(source)
    return merged


def quantile_rows(
    registry: Union[MetricsRegistry, Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-histogram ``p50/p90/p99`` summary rows (sorted by name).

    Convenience for the CLI ``top`` view: one JSON-safe row per histogram
    with its count, sum, and the standard quantile estimates.
    """
    from .quantiles import summarize_quantiles

    snapshot = (
        registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
    )
    rows: List[Dict[str, Any]] = []
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        row: Dict[str, Any] = {
            "name": name,
            "count": data["count"],
            "sum": data["sum"],
        }
        row.update(summarize_quantiles(data))
        rows.append(row)
    return rows

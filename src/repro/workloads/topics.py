"""A topic-model workload: correlated keywords and geography.

Real spatial-keyword data (the "real data" §2's empirical indexes excel on)
is heavily correlated: restaurants cluster downtown and share tags; ski
rentals cluster in the mountains with a different vocabulary.  This
generator reproduces that structure with a simple latent-topic model:

* ``num_topics`` topics, each with a geographic center and its own Zipf
  distribution over a topic-specific keyword slice (plus a shared slice of
  globally common keywords);
* each object draws a topic, a location around the topic center, and a
  document mixing topic keywords with common ones.

The E1-style comparisons use it as the friendly regime; the adversarial
generators in :mod:`repro.workloads.generators` are the unfriendly one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Set, Tuple

from ..dataset import Dataset, make_objects
from ..errors import ValidationError


@dataclass(frozen=True)
class TopicConfig:
    """Parameters of the topic workload."""

    num_objects: int
    num_topics: int = 6
    dim: int = 2
    keywords_per_topic: int = 12
    common_keywords: int = 8
    doc_min: int = 2
    doc_max: int = 6
    common_fraction: float = 0.3
    spread: float = 0.06
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_objects < 1 or self.num_topics < 1:
            raise ValidationError("need at least one object and one topic")
        if not (1 <= self.doc_min <= self.doc_max):
            raise ValidationError("need 1 <= doc_min <= doc_max")
        if self.doc_max > self.keywords_per_topic + self.common_keywords:
            raise ValidationError("doc_max exceeds the available vocabulary")
        if not 0.0 <= self.common_fraction <= 1.0:
            raise ValidationError("common_fraction must be in [0, 1]")


def topic_dataset(config: TopicConfig) -> Dataset:
    """Generate the dataset; object i's topic is ``i % num_topics``-free
    (topics are drawn uniformly at random, not round-robin)."""
    rng = random.Random(config.seed)
    centers = [
        tuple(rng.uniform(0.1, 0.9) for _ in range(config.dim))
        for _ in range(config.num_topics)
    ]
    # Keyword layout: [1 .. common] are shared; each topic then owns the
    # slice [common + t*per + 1 .. common + (t+1)*per].
    common = list(range(1, config.common_keywords + 1))
    topic_slices: List[List[int]] = []
    base = config.common_keywords
    for _topic in range(config.num_topics):
        topic_slices.append(list(range(base + 1, base + config.keywords_per_topic + 1)))
        base += config.keywords_per_topic

    common_weights = [1.0 / (rank + 1) for rank in range(len(common))]
    topic_weights = [1.0 / (rank + 1) for rank in range(config.keywords_per_topic)]

    points: List[Tuple[float, ...]] = []
    docs: List[Set[int]] = []
    for _ in range(config.num_objects):
        topic = rng.randrange(config.num_topics)
        center = centers[topic]
        point = tuple(
            min(max(rng.gauss(c, config.spread), 0.0), 1.0) for c in center
        )
        size = rng.randint(config.doc_min, config.doc_max)
        doc: Set[int] = set()
        while len(doc) < size:
            if rng.random() < config.common_fraction:
                doc.update(rng.choices(common, weights=common_weights))
            else:
                doc.update(
                    rng.choices(topic_slices[topic], weights=topic_weights)
                )
        points.append(point)
        docs.append(doc)
    return Dataset(make_objects(points, docs))


def topic_keywords(config: TopicConfig, topic: int, count: int = 2) -> List[int]:
    """The ``count`` most popular keywords of a topic (for queries)."""
    if not 0 <= topic < config.num_topics:
        raise ValidationError(f"topic {topic} out of range")
    base = config.common_keywords + topic * config.keywords_per_topic
    return list(range(base + 1, base + count + 1))

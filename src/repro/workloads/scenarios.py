"""The paper's motivating scenario: ``Hotel(price, rating, Doc)``.

§1 of the paper introduces a relation of hotels with a nightly price, a
guest rating in ``[0, 10]``, and a tag document (``'pool'``,
``'free-parking'``, ``'pet-friendly'``, ...).  Two query shapes are named:

* **C1** — ``price ∈ [100, 200] and rating >= 8`` (an ORP-KW query);
* **C2** — ``c1*price + c2*(10 - rating) <= c3`` (an LC-KW query).

This module generates that relation synthetically and exposes helpers for
the two conditions; the example scripts and benchmarks build on it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..dataset import Dataset, make_objects
from ..geometry.halfspaces import HalfSpace
from ..geometry.rectangles import Rect

#: Tag vocabulary, ordered roughly by how often hotels advertise them.
HOTEL_TAGS: Tuple[str, ...] = (
    "wifi",
    "parking",
    "breakfast",
    "pool",
    "gym",
    "pet-friendly",
    "free-parking",
    "spa",
    "bar",
    "airport-shuttle",
    "ev-charging",
    "kitchenette",
    "rooftop",
    "beachfront",
    "ski-in",
)

TAG_IDS: Dict[str, int] = {tag: i + 1 for i, tag in enumerate(HOTEL_TAGS)}


def tag_id(tag: str) -> int:
    """Integer keyword for a named tag."""
    return TAG_IDS[tag]


def hotel_dataset(num_hotels: int, seed: int = 0) -> Dataset:
    """Synthetic ``Hotel(price, rating, Doc)`` relation.

    Points are ``(price, rating)`` with price log-normal around ~140 and
    rating beta-shaped toward the top of ``[0, 10]``; tags follow a
    popularity-decaying inclusion probability, with mild correlations
    (expensive hotels more often have spas; cheap ones free parking).
    """
    rng = random.Random(seed)
    points: List[Tuple[float, float]] = []
    docs: List[set] = []
    for _ in range(num_hotels):
        price = min(max(rng.lognormvariate(4.9, 0.5), 30.0), 1200.0)
        rating = min(10.0, max(0.0, rng.betavariate(5, 2) * 10.0))
        doc = set()
        for rank, tag in enumerate(HOTEL_TAGS):
            base = 0.55 / (1.0 + 0.4 * rank)
            if tag == "spa" and price > 250:
                base *= 3.0
            if tag == "free-parking" and price < 120:
                base *= 2.5
            if tag == "pool" and rating > 8:
                base *= 1.5
            if rng.random() < base:
                doc.add(TAG_IDS[tag])
        if not doc:
            doc.add(TAG_IDS["wifi"])
        points.append((price, rating))
        docs.append(doc)
    return Dataset(make_objects(points, docs))


def condition_c1(
    price_lo: float = 100.0, price_hi: float = 200.0, min_rating: float = 8.0
) -> Rect:
    """The paper's C1: ``price ∈ [lo, hi] and rating >= min_rating``."""
    return Rect((price_lo, min_rating), (price_hi, 10.0))


def condition_c2(c1: float, c2: float, c3: float) -> HalfSpace:
    """The paper's C2: ``c1*price + c2*(10 - rating) <= c3``.

    Rewritten over the stored ``(price, rating)`` coordinates:
    ``c1*price - c2*rating <= c3 - 10*c2``.
    """
    return HalfSpace((c1, -c2), c3 - 10.0 * c2)


def keywords_for(tags: Sequence[str]) -> List[int]:
    """Integer keywords for a list of tag names."""
    return [TAG_IDS[tag] for tag in tags]

"""Query generators.

The bounds under test interpolate between ``OUT = 0`` and ``OUT = Θ(N)``,
so benchmarks need query rectangles whose output size is controllable.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..dataset import Dataset, KeywordObject
from ..geometry.rectangles import Rect


def random_rect(
    rng: random.Random, dim: int, side: float, extent: float = 1.0
) -> Rect:
    """A random axis-aligned cube of side ``side`` inside ``[0, extent]^dim``."""
    lo = [rng.uniform(0.0, max(extent - side, 0.0)) for _ in range(dim)]
    return Rect(lo, [c + side for c in lo])


def rect_with_target_out(
    dataset: Dataset,
    keywords: Sequence[int],
    target_out: int,
    rng: random.Random,
    max_iterations: int = 40,
) -> Tuple[Rect, int]:
    """A query rectangle whose keyword-filtered output is ≈ ``target_out``.

    Grows/shrinks a centered cube by bisection on the side length, counting
    matches by brute force (this is workload *construction*, not a query
    path under measurement).  Returns ``(rect, actual_out)``.
    """
    matches: List[KeywordObject] = dataset.matching(list(keywords))
    dim = dataset.dim
    center = tuple(0.5 for _ in range(dim))
    if target_out <= 0:
        # A sliver away from all matches.
        rect = Rect((1.01,) * dim, (1.02,) * dim)
        return rect, 0

    def count(side: float) -> int:
        rect = _centered(center, side, dim)
        return sum(1 for obj in matches if rect.contains_point(obj.point))

    lo_side, hi_side = 0.0, 2.2
    for _ in range(max_iterations):
        mid = (lo_side + hi_side) / 2.0
        if count(mid) >= target_out:
            hi_side = mid
        else:
            lo_side = mid
    rect = _centered(center, hi_side, dim)
    return rect, count(hi_side)


def _centered(center: Sequence[float], side: float, dim: int) -> Rect:
    half = side / 2.0
    return Rect(
        [center[i] - half for i in range(dim)],
        [center[i] + half for i in range(dim)],
    )


def keyword_pair_by_frequency(
    dataset: Dataset, rank_a: int, rank_b: int
) -> Tuple[int, int]:
    """Pick two keywords by frequency rank (0 = most frequent)."""
    freq = {}
    for obj in dataset:
        for word in obj.doc:
            freq[word] = freq.get(word, 0) + 1
    ranked = sorted(freq, key=lambda w: -freq[w])
    return ranked[min(rank_a, len(ranked) - 1)], ranked[min(rank_b, len(ranked) - 1)]


def frequent_keywords(dataset: Dataset, k: int, offset: int = 0) -> List[int]:
    """The ``k`` keywords of frequency rank ``offset..offset+k-1``."""
    freq = {}
    for obj in dataset:
        for word in obj.doc:
            freq[word] = freq.get(word, 0) + 1
    ranked = sorted(freq, key=lambda w: -freq[w])
    chosen = ranked[offset : offset + k]
    if len(chosen) < k:
        chosen = ranked[:k]
    return chosen

"""Synthetic dataset generators.

All generators are deterministic given a seed and return either a
:class:`~repro.dataset.Dataset` or plain building blocks (point lists,
set families).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..dataset import Dataset, make_objects
from ..errors import ValidationError


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters shared by the Zipf-style generators.

    Attributes
    ----------
    num_objects:
        Number of objects ``|D|`` (the input size ``N`` is the total
        document mass, roughly ``num_objects * (doc_min + doc_max) / 2``).
    dim:
        Point dimensionality.
    vocabulary:
        Number of distinct keywords ``W``.
    doc_min, doc_max:
        Document sizes are uniform in ``[doc_min, doc_max]``.
    zipf_s:
        Zipf exponent for keyword frequencies (``0`` = uniform).
    seed:
        RNG seed.
    """

    num_objects: int
    dim: int = 2
    vocabulary: int = 64
    doc_min: int = 1
    doc_max: int = 5
    zipf_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_objects < 1:
            raise ValidationError("num_objects must be >= 1")
        if not (1 <= self.doc_min <= self.doc_max <= self.vocabulary):
            raise ValidationError(
                "need 1 <= doc_min <= doc_max <= vocabulary, got "
                f"{self.doc_min}..{self.doc_max} of {self.vocabulary}"
            )


def _zipf_weights(vocabulary: int, s: float) -> List[float]:
    return [1.0 / (rank**s) for rank in range(1, vocabulary + 1)]


def zipf_document(
    rng: random.Random, vocabulary: int, size: int, weights: Sequence[float]
) -> Set[int]:
    """A document of ``size`` distinct keywords, Zipf-weighted.

    Keywords are ``1..vocabulary``; keyword 1 is the most frequent.
    """
    doc: Set[int] = set()
    population = range(1, vocabulary + 1)
    while len(doc) < size:
        doc.update(rng.choices(population, weights=weights, k=size - len(doc)))
    return doc


def uniform_points(
    rng: random.Random, count: int, dim: int, extent: float = 1.0
) -> List[Tuple[float, ...]]:
    """``count`` points uniform in ``[0, extent]^dim``."""
    return [tuple(rng.uniform(0.0, extent) for _ in range(dim)) for _ in range(count)]


def clustered_points(
    rng: random.Random,
    count: int,
    dim: int,
    clusters: int = 8,
    spread: float = 0.05,
    extent: float = 1.0,
) -> List[Tuple[float, ...]]:
    """Gaussian clusters: the skewed-geometry regime."""
    centers = uniform_points(rng, clusters, dim, extent)
    points = []
    for _ in range(count):
        center = rng.choice(centers)
        points.append(
            tuple(
                min(max(rng.gauss(c, spread * extent), 0.0), extent) for c in center
            )
        )
    return points


def zipf_dataset(config: WorkloadConfig, clustered: bool = False) -> Dataset:
    """The workhorse dataset: uniform/clustered points, Zipf documents."""
    rng = random.Random(config.seed)
    if clustered:
        points = clustered_points(rng, config.num_objects, config.dim)
    else:
        points = uniform_points(rng, config.num_objects, config.dim)
    weights = _zipf_weights(config.vocabulary, config.zipf_s)
    docs = [
        zipf_document(
            rng, config.vocabulary, rng.randint(config.doc_min, config.doc_max), weights
        )
        for _ in range(config.num_objects)
    ]
    return Dataset(make_objects(points, docs))


def disjoint_pair_dataset(num_objects: int, dim: int = 2, seed: int = 3) -> Dataset:
    """Worst case for the naive solutions: two large, disjoint keyword
    populations.

    Keywords 1 and 2 each cover half the objects but never co-occur, so every
    query for {1, 2} has OUT = 0 while both naive solutions scan Θ(N).  The
    adversarial instance behind the T1.x "OUT = 0" sweeps and the audit
    subsystem's empty-output exponent fits.
    """
    rng = random.Random(seed)
    points = [tuple(rng.random() for _ in range(dim)) for _ in range(num_objects)]
    docs: List[Set[int]] = [{1} if i % 2 == 0 else {2} for i in range(num_objects)]
    return Dataset.from_points(points, docs)


def planted_dataset(
    num_objects: int,
    dim: int,
    keywords: Sequence[int],
    planted_fraction: float,
    seed: int = 0,
    vocabulary: int = 64,
    doc_extra: int = 3,
    region: Tuple[float, float] = (0.0, 1.0),
) -> Dataset:
    """Dataset with a *planted* fraction of objects matching all ``keywords``.

    Used to control ``OUT`` precisely: a ``planted_fraction`` of objects
    receive all the query keywords (placed uniformly in ``region^dim``);
    the rest receive random keywords that never include the full query set.
    """
    if not 0.0 <= planted_fraction <= 1.0:
        raise ValidationError("planted_fraction must be in [0, 1]")
    rng = random.Random(seed)
    planted_count = int(round(num_objects * planted_fraction))
    lo, hi = region
    points: List[Tuple[float, ...]] = []
    docs: List[Set[int]] = []
    query_set = set(keywords)
    others = [w for w in range(1, vocabulary + 1) if w not in query_set]
    if len(others) < doc_extra + len(query_set):
        raise ValidationError("vocabulary too small for the planted design")
    for i in range(num_objects):
        if i < planted_count:
            points.append(tuple(rng.uniform(lo, hi) for _ in range(dim)))
            doc = set(query_set)
            doc.update(rng.sample(others, rng.randint(0, doc_extra)))
        else:
            points.append(tuple(rng.uniform(0.0, 1.0) for _ in range(dim)))
            # Never the full query set: drop one query keyword at random.
            doc = set(rng.sample(others, rng.randint(1, doc_extra)))
            if rng.random() < 0.5 and len(query_set) > 1:
                doc.update(rng.sample(sorted(query_set), len(query_set) - 1))
        docs.append(doc)
    return Dataset(make_objects(points, docs))


def adversarial_ksi_sets(
    num_sets: int,
    set_size: int,
    planted: int = 0,
    seed: int = 0,
) -> List[List[int]]:
    """A k-SI family where the naive solutions do maximal work.

    Sets are pairwise (almost) disjoint blocks of ``set_size`` elements each,
    plus ``planted`` shared elements common to *all* sets: any k-wise
    intersection has exactly ``planted`` elements, yet every set has
    ``Θ(set_size)`` members for the naive scan to wade through.
    """
    if num_sets < 2 or set_size < 1 or planted < 0:
        raise ValidationError("need num_sets >= 2, set_size >= 1, planted >= 0")
    rng = random.Random(seed)
    shared = list(range(planted))
    sets = []
    base = planted
    for _ in range(num_sets):
        block = list(range(base, base + set_size))
        base += set_size
        members = shared + block
        rng.shuffle(members)
        sets.append(members)
    return sets


def grid_snap(points: Sequence[Tuple[float, ...]], cells: int) -> List[Tuple[float, ...]]:
    """Snap points onto an integer grid (for the L2NN integer-domain input)."""
    return [
        tuple(float(min(int(c * cells), cells - 1)) for c in p) for p in points
    ]

"""Synthetic workloads: data generators, query generators, and scenarios.

The paper evaluates nothing empirically, so the benchmark harness needs
workloads that exercise each index in the regimes the theory talks about:
Zipf-distributed keyword frequencies (so both large and small keywords
occur), controllable output sizes (the bounds interpolate between ``OUT = 0``
and ``OUT = Θ(N)``), and adversarial k-SI instances (where the naive
solutions are maximally bad).
"""

from .generators import (
    WorkloadConfig,
    adversarial_ksi_sets,
    clustered_points,
    planted_dataset,
    uniform_points,
    zipf_dataset,
    zipf_document,
)
from .queries import rect_with_target_out, random_rect
from .scenarios import hotel_dataset

__all__ = [
    "WorkloadConfig",
    "zipf_document",
    "zipf_dataset",
    "planted_dataset",
    "uniform_points",
    "clustered_points",
    "adversarial_ksi_sets",
    "random_rect",
    "rect_with_target_out",
    "hotel_dataset",
]

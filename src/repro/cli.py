"""Command-line interface: build, persist, and query indexes on JSONL data.

Dataset file format: one JSON object per line, each with a ``point`` array
and a ``doc`` array of integer keywords, e.g.

    {"point": [120.0, 8.5], "doc": [1, 2, 3]}

Usage examples::

    python -m repro.cli build  data.jsonl index.bin --kind orp --k 2
    python -m repro.cli query  index.bin --rect 100 8 200 10 --keywords 1 3
    python -m repro.cli nearest index.bin --point 150 9 --t 3 --keywords 1 3
    python -m repro.cli info   index.bin
    python -m repro.cli demo

The serving layer (``--kind engine``) adds batched, budget-bounded queries;
``--kind sharded --shards S`` builds the spatially sharded, fan-out variant
(same ``batch``/``stats`` commands; traces carry per-shard slices):

    python -m repro.cli build data.jsonl engine.bin --kind engine --k 3
    python -m repro.cli build data.jsonl engine.bin --kind sharded --shards 4
    python -m repro.cli batch engine.bin --queries q.jsonl --budget 64 --save
    python -m repro.cli stats engine.bin
    python -m repro.cli trace engine.bin --rect 100 8 200 10 --keywords 1 3

``trace`` serves one query with span recording on and prints the resulting
cost-span tree (``--format json`` for the raw ``to_dict`` rendering); it
accepts orp, engine, and sharded indexes.

``serve`` pushes the same workload through the asyncio front end —
concurrent per-shard fan-out with admission control (queries above the
in-flight cost bound are shed, not queued) — and ``bench-serve`` runs the
S3 async-serving benchmark:

    python -m repro.cli serve engine.bin --queries q.jsonl --budget 64 \
        --max-inflight-cost 512 --concurrency 4
    python -m repro.cli bench-serve --quick

Telemetry commands read a saved engine's instruments (``batch --save``
persists them with the index):

    python -m repro.cli metrics engine.bin              # OpenMetrics text
    python -m repro.cli top engine.bin                  # p50/p90/p99 + planner
    python -m repro.cli events engine.bin --queries q.jsonl

``events`` replays a workload with a structured event log attached and
prints the retained events as JSON lines.  ``serve --telemetry-dir DIR``
additionally writes ``metrics.prom``, ``events.jsonl``, ``traces.jsonl``
(tail-sampled slow/shed/degraded query traces), and ``stats.json`` after
the workload drains; ``--slo-p99-cost`` / ``--slo-shed-rate`` /
``--slo-exhausted-rate`` arm the SLO burn-rate monitor whose verdicts
feed admission control (SLO sheds carry ``reason="shed:slo:<objective>"``).

where ``q.jsonl`` holds one query per line, e.g.
``{"rect": [100, 8, 200, 10], "keywords": [1, 3]}`` (lo coords then hi
coords).  ``batch`` prints one JSON trace per query; ``--results`` prints the
matches too; ``--save`` writes the engine (with its updated cache and stats)
back to the index file.

All query commands print one JSON object per reported match plus a summary
line (count + RAM-model cost units) on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .costmodel import CostCounter
from .dataset import Dataset, RectangleObject, make_objects
from .errors import ReproError, ValidationError
from .geometry.rectangles import Rect
from .core.lc_kw import LcKwIndex
from .core.nn_linf import LinfNnIndex
from .core.orp_kw import OrpKwIndex
from .core.rr_kw import RrKwIndex
from .core.srp_kw import SrpKwIndex
from .persist import load_index, save_index
from .service import QueryEngine, ShardedQueryEngine
from .trace import TraceSpan, Tracer

#: --kind values accepted by `build` (rr reads {lo, hi, doc} records;
#: engine/sharded build the serving layer, --k becomes its max_k).
INDEX_KINDS = {
    "orp": OrpKwIndex,
    "lc": LcKwIndex,
    "linf-nn": LinfNnIndex,
    "srp": SrpKwIndex,
    "rr": RrKwIndex,
    "engine": QueryEngine,
    "sharded": ShardedQueryEngine,
}

#: Index classes the serving commands (`batch`, `stats`) accept.
ENGINE_KINDS = (QueryEngine, ShardedQueryEngine)


def load_jsonl_dataset(path: str) -> Dataset:
    """Read a JSONL dataset (see module docstring for the record format)."""
    points: List[List[float]] = []
    docs: List[List[int]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                points.append([float(c) for c in record["point"]])
                docs.append([int(w) for w in record["doc"]])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValidationError(
                    f"{path}:{line_number}: bad record ({exc})"
                ) from exc
    if not points:
        raise ValidationError(f"{path}: no records")
    return Dataset(make_objects(points, docs))


def _emit(objects, counter: CostCounter) -> None:
    for obj in objects:
        print(json.dumps({"oid": obj.oid, "point": list(obj.point), "doc": sorted(obj.doc)}))
    print(
        f"# {len(objects)} match(es), {counter.total} cost units",
        file=sys.stderr,
    )


def load_jsonl_rectangles(path: str) -> List[RectangleObject]:
    """Read a JSONL rectangle dataset: ``{"lo": [...], "hi": [...], "doc": [...]}``."""
    rectangles: List[RectangleObject] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                rectangles.append(
                    RectangleObject(
                        oid=len(rectangles),
                        lo=tuple(float(c) for c in record["lo"]),
                        hi=tuple(float(c) for c in record["hi"]),
                        doc=frozenset(int(w) for w in record["doc"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValidationError(
                    f"{path}:{line_number}: bad rectangle record ({exc})"
                ) from exc
    if not rectangles:
        raise ValidationError(f"{path}: no records")
    return rectangles


def _build_dynamic_index(kind: str, dataset: Dataset, k: int):
    """Build a Bentley–Saxe dynamized index and bulk-load the dataset.

    The load goes through :meth:`insert_many` (one carry merge, one
    published epoch), so the saved index supports further inserts and
    deletes after ``load_index`` — the point of ``build --dynamic``.
    """
    from .core.dynamic import DynamicOrpKw
    from .core.dynamize import (
        DynamicKeywordsOnly,
        DynamicLcKw,
        DynamicMultiKOrp,
        DynamicSrpKw,
    )

    dim = dataset.dim
    if kind == "orp":
        index = DynamicOrpKw(k=k, dim=dim)
    elif kind == "lc":
        index = DynamicLcKw(k=k, dim=dim)
    elif kind == "srp":
        index = DynamicSrpKw(k=k, dim=dim)
    elif kind == "keywords":
        index = DynamicKeywordsOnly(dim=dim)
    elif kind == "multi":
        index = DynamicMultiKOrp(dim=dim, max_k=k)
    else:
        raise ValidationError(
            f"--dynamic is not supported for --kind {kind}; "
            "dynamizable kinds: keywords, lc, multi, orp, srp"
        )
    index.insert_many(
        [obj.point for obj in dataset.objects],
        [obj.doc for obj in dataset.objects],
    )
    return index


def cmd_build(args: argparse.Namespace) -> int:
    if args.dynamic:
        dataset = load_jsonl_dataset(args.dataset)
        index = _build_dynamic_index(args.kind, dataset, args.k)
        save_index(index, args.index)
        print(
            f"# built {type(index).__name__} over {len(dataset)} objects "
            f"(N={dataset.total_doc_size}), saved to {args.index}",
            file=sys.stderr,
        )
        return 0
    if args.kind in ("keywords", "multi"):
        raise ValidationError(f"--kind {args.kind} requires --dynamic")
    index_cls = INDEX_KINDS[args.kind]
    if args.kind == "rr":
        rectangles = load_jsonl_rectangles(args.dataset)
        index = index_cls(rectangles, k=args.k)
        described = f"{len(rectangles)} rectangles (N={index.input_size})"
    elif args.kind == "engine":
        dataset = load_jsonl_dataset(args.dataset)
        index = QueryEngine(
            dataset,
            max_k=args.k,
            default_budget=args.budget,
            backend=args.backend,
        )
        described = f"{len(dataset)} objects (N={dataset.total_doc_size})"
    elif args.kind == "sharded":
        dataset = load_jsonl_dataset(args.dataset)
        index = ShardedQueryEngine(
            dataset,
            shards=args.shards,
            max_k=args.k,
            default_budget=args.budget,
            backend=args.backend,
        )
        described = (
            f"{len(dataset)} objects (N={dataset.total_doc_size}) "
            f"across {args.shards} shard(s)"
        )
    else:
        dataset = load_jsonl_dataset(args.dataset)
        index = index_cls(dataset, k=args.k)
        described = f"{len(dataset)} objects (N={dataset.total_doc_size})"
    save_index(index, args.index)
    print(
        f"# built {index_cls.__name__} over {described}, saved to {args.index}",
        file=sys.stderr,
    )
    return 0


def load_jsonl_queries(path: str):
    """Read a JSONL query workload: ``{"rect": [lo..., hi...], "keywords": [...]}``."""
    queries = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                coords = [float(c) for c in record["rect"]]
                keywords = [int(w) for w in record["keywords"]]
            except (KeyError, TypeError, ValueError) as exc:
                raise ValidationError(
                    f"{path}:{line_number}: bad query record ({exc})"
                ) from exc
            queries.append((coords, keywords))
    if not queries:
        raise ValidationError(f"{path}: no queries")
    return queries


def cmd_batch(args: argparse.Namespace) -> int:
    engine = load_index(args.index, expected_class=ENGINE_KINDS)
    queries = load_jsonl_queries(args.queries)
    results = engine.batch(queries, budget=args.budget)
    traces = engine.records[-len(queries):]
    for found, record in zip(results, traces):
        print(record.to_json())
        if args.results:
            for obj in found:
                print(
                    json.dumps(
                        {"oid": obj.oid, "point": list(obj.point), "doc": sorted(obj.doc)}
                    )
                )
    if args.save:
        save_index(engine, args.index)
    cache = engine.cache.stats()
    fallbacks = sum(len(record.fallbacks) for record in traces)
    degraded = sum(1 for record in traces if record.degraded)
    print(
        f"# {len(queries)} quer{'y' if len(queries) == 1 else 'ies'}, "
        f"{cache['hits']} cache hit(s), {fallbacks} fallback(s), "
        f"{degraded} degraded, {engine.counter.total} lifetime cost units",
        file=sys.stderr,
    )
    return 0


def _build_slo_monitor(args: argparse.Namespace):
    """An :class:`SLOMonitor` from the serve flags, or ``None`` if unarmed."""
    if (
        args.slo_p99_cost is None
        and args.slo_shed_rate is None
        and args.slo_exhausted_rate is None
    ):
        return None
    from .telemetry import SLOMonitor

    return SLOMonitor(
        window=args.slo_window,
        p99_cost_target=args.slo_p99_cost,
        max_shed_rate=args.slo_shed_rate,
        max_budget_exhausted_rate=args.slo_exhausted_rate,
    )


def _write_telemetry_dir(directory: str, engine, front) -> None:
    """Dump the serve run's telemetry artifacts into ``directory``."""
    import os

    from .telemetry import render_openmetrics

    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "metrics.prom"), "w") as handle:
        handle.write(render_openmetrics(engine.metrics))
    with open(os.path.join(directory, "events.jsonl"), "w") as handle:
        text = front.events.export_jsonl()
        if text:
            handle.write(text + "\n")
    with open(os.path.join(directory, "traces.jsonl"), "w") as handle:
        for retained in front.sampler.retained():
            handle.write(json.dumps(retained.to_dict(), sort_keys=True) + "\n")
    with open(os.path.join(directory, "stats.json"), "w") as handle:
        handle.write(json.dumps(front.stats(), sort_keys=True, indent=2) + "\n")


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a JSONL workload concurrently through the async front end."""
    import asyncio

    from .service import AsyncQueryEngine

    engine = load_index(args.index, expected_class=ENGINE_KINDS)
    queries = load_jsonl_queries(args.queries)
    telemetry_kwargs = {}
    slo = _build_slo_monitor(args)
    if slo is not None:
        telemetry_kwargs["slo"] = slo
    if args.telemetry_dir is not None:
        from .telemetry import EventLog, TailSampler

        telemetry_kwargs["events"] = EventLog()
        telemetry_kwargs["sampler"] = TailSampler()
    front = AsyncQueryEngine(
        engine,
        max_inflight_cost=args.max_inflight_cost,
        max_workers=args.concurrency,
        **telemetry_kwargs,
    )
    try:
        results = asyncio.run(front.batch(queries, budget=args.budget))
    finally:
        front.close()
    if args.telemetry_dir is not None:
        _write_telemetry_dir(args.telemetry_dir, engine, front)
    served = 0
    for i, found in enumerate(results):
        if found is None:
            entry = {"query": i, "shed": True}
            if slo is None:
                # With the SLO monitor armed a shed may instead carry
                # reason="shed:slo:<objective>" — the per-query attribution
                # lives in the engine records / event log, not this line.
                entry["reason"] = "shed:admission"
            print(json.dumps(entry))
            continue
        served += 1
        print(json.dumps({"query": i, "shed": False, "result_count": len(found)}))
        if args.results:
            for obj in found:
                print(
                    json.dumps(
                        {"oid": obj.oid, "point": list(obj.point), "doc": sorted(obj.doc)}
                    )
                )
    stats = front.stats()
    print(
        f"# {len(queries)} quer{'y' if len(queries) == 1 else 'ies'}, "
        f"{served} served, {stats['shed']} shed, "
        f"{engine.counter.total} lifetime cost units",
        file=sys.stderr,
    )
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """Run the async-serving benchmark (S3) and print its tables."""
    from .bench.reporting import format_table
    from .bench.serving import run_serving_bench

    rows, mixed = run_serving_bench(quick=args.quick)
    suffix = " [quick]" if args.quick else ""
    print(
        format_table(
            rows,
            columns=[
                "shards", "budget", "queries", "seq_ms", "conc_ms",
                "speedup", "pruned_pct",
            ],
            title="S3: sequential vs concurrent fan-out (wall-clock)" + suffix,
        )
    )
    print()
    print(
        format_table(
            [mixed],
            columns=[
                "readers", "writes", "reads", "epochs", "live_objects",
                "elapsed_ms", "violations",
            ],
            title="S3: mixed read/write churn under snapshot isolation" + suffix,
        )
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    engine = load_index(args.index, expected_class=ENGINE_KINDS)
    print(engine.export_stats_json())
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Print a saved engine's metrics registry as OpenMetrics text."""
    from .telemetry import render_openmetrics

    engine = load_index(args.index, expected_class=ENGINE_KINDS)
    sys.stdout.write(render_openmetrics(engine.metrics, namespace=args.namespace))
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    """Replay a workload with an event log attached; print events as JSONL."""
    from .telemetry import EventLog

    engine = load_index(args.index, expected_class=ENGINE_KINDS)
    queries = load_jsonl_queries(args.queries)
    events = EventLog(capacity=args.capacity)
    engine.attach_events(events)
    engine.batch(queries, budget=args.budget)
    text = events.export_jsonl(kind=args.kind)
    if text:
        print(text)
    stats = events.stats()
    print(
        f"# {stats['emitted']} event(s) emitted, {stats['retained']} retained, "
        f"{stats['dropped']} dropped",
        file=sys.stderr,
    )
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Quantile summaries + planner statistics for a saved engine."""
    from .telemetry import quantile_rows

    engine = load_index(args.index, expected_class=ENGINE_KINDS)
    histogram_rows = quantile_rows(engine.metrics)
    planner = engine.planner_stats()
    if args.format == "json":
        print(
            json.dumps(
                {"histograms": histogram_rows, "planner": planner}, sort_keys=True
            )
        )
        return 0
    from .bench.reporting import format_table

    print(
        format_table(
            histogram_rows,
            columns=["name", "count", "sum", "p50", "p90", "p99"],
            title="histogram quantiles",
        )
    )
    planner_rows = [
        {
            "strategy": cell["strategy"],
            "backend": cell["backend"],
            "queries": cell["queries"],
            "cost_mean": round(cell["cost"]["mean"], 2),
            "cost_max": cell["cost"]["max"],
            "results_mean": round(cell["result_count"]["mean"], 2),
        }
        for cell in planner["strategies"]
    ]
    print()
    print(
        format_table(
            planner_rows,
            columns=[
                "strategy", "backend", "queries",
                "cost_mean", "cost_max", "results_mean",
            ],
            title="planner stats (per strategy x backend)",
        )
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    counter = CostCounter()
    if args.rect is not None:
        dim = len(args.rect) // 2
        if isinstance(index, RrKwIndex):
            found_rects = index.query(
                args.rect[:dim], args.rect[dim:], args.keywords, counter=counter
            )
            for rect_obj in found_rects:
                print(
                    json.dumps(
                        {
                            "oid": rect_obj.oid,
                            "lo": list(rect_obj.lo),
                            "hi": list(rect_obj.hi),
                            "doc": sorted(rect_obj.doc),
                        }
                    )
                )
            print(
                f"# {len(found_rects)} match(es), {counter.total} cost units",
                file=sys.stderr,
            )
            return 0
        from .core.dynamic import DynamicOrpKw
        from .core.dynamize import DynamicKeywordsOnly, DynamicMultiKOrp

        rect_kinds = (OrpKwIndex, DynamicOrpKw, DynamicKeywordsOnly, DynamicMultiKOrp)
        if not isinstance(index, rect_kinds):
            raise ValidationError(
                "--rect queries need an index built with --kind orp or rr "
                "(or a rect-family --dynamic index)"
            )
        rect = Rect(args.rect[:dim], args.rect[dim:])
        found = index.query(rect, args.keywords, counter=counter)
    elif args.halfspace is not None:
        from .core.dynamize import DynamicLcKw

        if not isinstance(index, (LcKwIndex, DynamicLcKw)):
            raise ValidationError("--halfspace queries need an index built with --kind lc")
        from .geometry.halfspaces import HalfSpace

        *coeffs, bound = args.halfspace
        found = index.query([HalfSpace(coeffs, bound)], args.keywords, counter=counter)
    elif args.ball is not None:
        from .core.dynamize import DynamicSrpKw

        if not isinstance(index, (SrpKwIndex, DynamicSrpKw)):
            raise ValidationError("--ball queries need an index built with --kind srp")
        *center, radius = args.ball
        found = index.query(center, radius, args.keywords, counter=counter)
    else:
        raise ValidationError("supply one of --rect / --halfspace / --ball")
    _emit(found, counter)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Serve one query with span recording on; print the cost-span tree."""
    index = load_index(args.index)
    if isinstance(index, ENGINE_KINDS):
        index.tracing = True  # session-local; not saved back to the file
        index.query(args.rect, args.keywords, budget=args.budget)
        trace_dict = index.last_record.trace
    elif isinstance(index, OrpKwIndex):
        if len(args.rect) % 2 != 0:
            raise ValidationError(
                f"--rect needs an even coordinate count, got {len(args.rect)}"
            )
        dim = len(args.rect) // 2
        counter = CostCounter()
        tracer = Tracer("query", "cli")
        counter.tracer = tracer
        index.query(Rect(args.rect[:dim], args.rect[dim:]), args.keywords, counter)
        trace_dict = tracer.finish().to_dict()
    else:
        raise ValidationError(
            "trace needs an index built with --kind orp, engine, or sharded"
        )
    if args.format == "json":
        print(json.dumps(trace_dict, sort_keys=True))
    else:
        print(TraceSpan.from_dict(trace_dict).render())
    return 0


def cmd_nearest(args: argparse.Namespace) -> int:
    index = load_index(args.index, expected_class=LinfNnIndex)
    counter = CostCounter()
    found = index.query(args.point, args.t, args.keywords, counter=counter)
    _emit(found, counter)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    info = {
        "class": type(index).__name__,
        "k": getattr(index, "k", getattr(index, "max_k", None)),
        "dim": getattr(index, "dim", None),
        "input_size": getattr(index, "input_size", None),
        "space_units": getattr(index, "space_units", None),
    }
    print(json.dumps(info, indent=2))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint (the repo's AST auditor) — delegates to repro.analysis."""
    from .analysis.runner import main as lint_main

    return lint_main(args.lint_args)


def cmd_audit(args: argparse.Namespace) -> int:
    """The scaling-law audit: run sweeps, gate against baselines, scorecard."""
    from . import audit

    # Row ids are case-normalized so `--rows churn` and `--rows t1.1` work.
    rows = (
        [row.upper() for row in args.rows]
        if args.rows
        else list(audit.AUDITED_ROWS)
    )
    for row in rows:
        audit.require_row(row)  # fail fast on typos before any sweep runs
    mode = "quick" if args.quick else "full"
    seed = args.seed if args.seed is not None else audit.DEFAULT_SEED
    log = lambda line: print(f"# {line}", file=sys.stderr)  # noqa: E731

    if args.audit_command == "run":
        reports = audit.run_rows(rows, mode=mode, seed=seed, log=log)
        paths = audit.write_reports(reports, args.dir)
        for path in paths:
            log(f"wrote {path}")
        print(audit.render_scorecard(reports))
        return 0

    if args.audit_command == "gate":
        result = audit.run_gate(
            args.dir,
            rows,
            mode=mode,
            seed=seed,
            export_dir=args.export,
            log=log,
        )
        print(audit.render_gate(result))
        return result.exit_code

    # scorecard: committed baselines by default, --fresh to re-run sweeps
    if args.fresh:
        reports = audit.run_rows(rows, mode=mode, seed=seed, log=log)
    else:
        baselines = audit.load_baselines(args.dir, rows)
        missing = sorted(row for row in rows if baselines[row] is None)
        if missing:
            raise ValidationError(
                f"no committed baseline for {', '.join(missing)} in {args.dir} "
                "— run `audit run` first or pass --fresh"
            )
        reports = {row: baselines[row] for row in rows}
    print(audit.render_scorecard(reports))
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    """Tiny in-memory end-to-end demo (no files needed)."""
    dataset = Dataset.from_points(
        [(120.0, 8.5), (180.0, 9.1), (90.0, 7.0), (150.0, 8.1)],
        [{1, 2, 3}, {1, 3}, {1, 2}, {1, 2, 3}],
    )
    index = OrpKwIndex(dataset, k=2)
    counter = CostCounter()
    found = index.query(Rect((100.0, 8.0), (200.0, 10.0)), [1, 3], counter=counter)
    _emit(found, counter)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="keyword search with structured constraints"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build an index from a JSONL dataset")
    p_build.add_argument("dataset", help="JSONL file of {point, doc} records")
    p_build.add_argument("index", help="output index file")
    p_build.add_argument(
        "--kind",
        choices=sorted(set(INDEX_KINDS) | {"keywords", "multi"}),
        default="orp",
    )
    p_build.add_argument("--k", type=int, default=2, help="query keywords per query")
    p_build.add_argument(
        "--dynamic",
        action="store_true",
        help="build a Bentley-Saxe dynamized index (insert/delete-capable; "
        "kinds orp, lc, srp, keywords, multi)",
    )
    p_build.add_argument(
        "--budget",
        type=int,
        default=None,
        help="default per-query cost budget (engine/sharded kinds only)",
    )
    p_build.add_argument(
        "--shards",
        type=int,
        default=4,
        help="spatial shard count (sharded kind only)",
    )
    p_build.add_argument(
        "--backend",
        choices=("cost_model", "vectorized", "auto"),
        default="cost_model",
        help="execution backend (engine/sharded kinds only)",
    )
    p_build.set_defaults(func=cmd_build)

    p_batch = sub.add_parser(
        "batch", help="serve a JSONL query workload through a saved engine"
    )
    p_batch.add_argument("index", help="index file built with --kind engine")
    p_batch.add_argument(
        "--queries", required=True, help="JSONL file of {rect, keywords} queries"
    )
    p_batch.add_argument(
        "--budget", type=int, default=None, help="per-query cost budget override"
    )
    p_batch.add_argument(
        "--results", action="store_true", help="print matches after each trace"
    )
    p_batch.add_argument(
        "--save",
        action="store_true",
        help="write the engine (updated cache/stats) back to the index file",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="serve a JSONL workload concurrently (async fan-out + admission)",
    )
    p_serve.add_argument("index", help="index file built with --kind engine/sharded")
    p_serve.add_argument(
        "--queries", required=True, help="JSONL file of {rect, keywords} queries"
    )
    p_serve.add_argument(
        "--budget", type=int, default=None, help="per-query cost budget"
    )
    p_serve.add_argument(
        "--max-inflight-cost",
        type=int,
        default=None,
        help="admission-control bound on summed in-flight budgets (shed above)",
    )
    p_serve.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="worker-pool size (default: one per shard)",
    )
    p_serve.add_argument(
        "--results", action="store_true", help="print matches after each query line"
    )
    p_serve.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="write metrics.prom / events.jsonl / traces.jsonl / stats.json "
        "here after the workload drains",
    )
    p_serve.add_argument(
        "--slo-p99-cost",
        type=int,
        default=None,
        help="SLO target: windowed p99 query cost (arms the burn-rate monitor)",
    )
    p_serve.add_argument(
        "--slo-shed-rate",
        type=float,
        default=None,
        help="SLO target: max fraction of window queries shed",
    )
    p_serve.add_argument(
        "--slo-exhausted-rate",
        type=float,
        default=None,
        help="SLO target: max fraction of window queries exhausting their budget",
    )
    p_serve.add_argument(
        "--slo-window",
        type=int,
        default=128,
        help="sliding-window size (queries) for the SLO monitor",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_bench_serve = sub.add_parser(
        "bench-serve",
        help="run the async-serving benchmark (fan-out wall-clock, mixed churn)",
    )
    p_bench_serve.add_argument(
        "--quick", action="store_true", help="tiny CI-smoke configuration"
    )
    p_bench_serve.set_defaults(func=cmd_bench_serve)

    p_stats = sub.add_parser("stats", help="print a saved engine's statistics")
    p_stats.add_argument("index", help="index file built with --kind engine")
    p_stats.set_defaults(func=cmd_stats)

    p_metrics = sub.add_parser(
        "metrics", help="print a saved engine's metrics as OpenMetrics text"
    )
    p_metrics.add_argument("index", help="index file built with --kind engine/sharded")
    p_metrics.add_argument(
        "--namespace", default="repro", help="metric-name prefix (default: repro)"
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_events = sub.add_parser(
        "events",
        help="replay a workload with a structured event log; print JSONL events",
    )
    p_events.add_argument("index", help="index file built with --kind engine/sharded")
    p_events.add_argument(
        "--queries", required=True, help="JSONL file of {rect, keywords} queries"
    )
    p_events.add_argument(
        "--budget", type=int, default=None, help="per-query cost budget override"
    )
    p_events.add_argument(
        "--kind", default=None, help="only print events of this kind"
    )
    p_events.add_argument(
        "--capacity", type=int, default=4096, help="event ring-buffer capacity"
    )
    p_events.set_defaults(func=cmd_events)

    p_top = sub.add_parser(
        "top",
        help="histogram quantiles (p50/p90/p99) + per-strategy planner stats",
    )
    p_top.add_argument("index", help="index file built with --kind engine/sharded")
    p_top.add_argument("--format", choices=("table", "json"), default="table")
    p_top.set_defaults(func=cmd_top)

    p_query = sub.add_parser("query", help="run a reporting query")
    p_query.add_argument("index")
    p_query.add_argument("--keywords", type=int, nargs="+", required=True)
    p_query.add_argument(
        "--rect", type=float, nargs="+", help="lo coords then hi coords"
    )
    p_query.add_argument(
        "--halfspace", type=float, nargs="+", help="coefficients then bound"
    )
    p_query.add_argument(
        "--ball", type=float, nargs="+", help="center coords then radius"
    )
    p_query.set_defaults(func=cmd_query)

    p_trace = sub.add_parser(
        "trace", help="serve one query and print its cost-span tree"
    )
    p_trace.add_argument("index", help="index file (orp, engine, or sharded kind)")
    p_trace.add_argument(
        "--rect", type=float, nargs="+", required=True,
        help="lo coords then hi coords",
    )
    p_trace.add_argument("--keywords", type=int, nargs="+", required=True)
    p_trace.add_argument(
        "--budget", type=int, default=None,
        help="per-query cost budget (engine/sharded kinds only)",
    )
    p_trace.add_argument("--format", choices=("pretty", "json"), default="pretty")
    p_trace.set_defaults(func=cmd_trace)

    p_nearest = sub.add_parser("nearest", help="t nearest neighbours (L∞)")
    p_nearest.add_argument("index")
    p_nearest.add_argument("--point", type=float, nargs="+", required=True)
    p_nearest.add_argument("--t", type=int, default=1)
    p_nearest.add_argument("--keywords", type=int, nargs="+", required=True)
    p_nearest.set_defaults(func=cmd_nearest)

    p_info = sub.add_parser("info", help="describe a saved index")
    p_info.add_argument("index")
    p_info.set_defaults(func=cmd_info)

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint, the AST cost-accounting auditor (rules R1-R6)",
        description=(
            "Arguments are forwarded verbatim to `python -m repro.analysis` "
            "(paths, --format, --baseline, --write-baseline, --rules, ...)."
        ),
    )
    p_lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.analysis",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_audit = sub.add_parser(
        "audit",
        help="scaling-law audit: sweeps, exponent fits, CI regression gate",
        description=(
            "`run` executes the seeded Table-1 sweeps, writes BENCH_<row>.json "
            "baselines, and prints the scorecard; `gate` reruns the sweeps and "
            "fails (exit 1) when a fitted exponent drifts outside its tolerance "
            "band or a structural probe regresses (exit 2: baselines missing); "
            "`scorecard` renders the committed baselines without re-running."
        ),
    )
    audit_sub = p_audit.add_subparsers(dest="audit_command", required=True)
    for name, helptext in (
        ("run", "run sweeps, write BENCH baselines, print the scorecard"),
        ("gate", "compare a fresh run against committed BENCH baselines"),
        ("scorecard", "render the Table-1 scorecard"),
    ):
        p_sub = audit_sub.add_parser(name, help=helptext)
        p_sub.add_argument(
            "--rows", nargs="+", default=None, metavar="ROW",
            help="Table-1 rows to audit (default: all audited rows)",
        )
        p_sub.add_argument(
            "--quick", action="store_true",
            help="smaller sweeps + fewer bootstrap resamples (CI-friendly)",
        )
        p_sub.add_argument(
            "--dir", default=".",
            help="directory holding BENCH_<row>.json files (default: .)",
        )
        p_sub.add_argument(
            "--seed", type=int, default=None,
            help="base RNG seed (default: the audit DEFAULT_SEED)",
        )
        if name == "gate":
            p_sub.add_argument(
                "--export", default=None, metavar="DIR",
                help="also write the fresh reports here (CI artifact)",
            )
        if name == "scorecard":
            p_sub.add_argument(
                "--fresh", action="store_true",
                help="re-run sweeps instead of reading committed baselines",
            )
        p_sub.set_defaults(func=cmd_audit)

    p_demo = sub.add_parser("demo", help="run a tiny in-memory demo")
    p_demo.set_defaults(func=cmd_demo)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""RAM-model cost accounting.

The paper's guarantees are statements about operation counts in the standard
RAM model.  Pure-Python wall clock is dominated by interpreter overhead, so
the benchmark harness measures *cost units* instead: every index and baseline
in this library charges the counter one unit per elementary step.  The charge
sites are chosen so that the counted total is (up to a small constant) the
quantity bounded by the paper's theorems:

* ``objects_examined`` — an object was read and tested against the query
  predicate (pivot scans, materialized-list scans, baseline scans);
* ``nodes_visited`` — a tree node was visited by a query;
* ``structure_probes`` — a secondary-structure lookup (large-keyword test,
  non-empty-combination probe, hash membership test);
* ``comparisons`` — a coordinate comparison inside binary searches and
  selection routines.

A :class:`CostCounter` also enforces an optional *budget*: once the total
charge exceeds the budget, :class:`~repro.errors.BudgetExceeded` is raised.
The nearest-neighbour indexes (Corollaries 4 and 7) rely on this to implement
the paper's "run the reporting query; if it does not terminate within
``O(N^(1-1/k) t^(1/k))`` time, terminate it manually" step.

A counter can optionally feed a :class:`~repro.trace.Tracer` (set
``counter.tracer = tracer``): every :meth:`~CostCounter.charge` is then also
recorded into the tracer's innermost open span, attributing the unit to the
component that spent it.  Only original charges are recorded — the
accounting transfers :meth:`~CostCounter.merge` / :meth:`~CostCounter.absorb`
move already-recorded units between counters and must not re-record them
(that would double-count spans).  When no tracer is attached the cost per
charge is a single attribute load, and the charged totals are identical
either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional

from .errors import BudgetExceeded

#: Counter categories, in display order.
CATEGORIES = (
    "objects_examined",
    "nodes_visited",
    "structure_probes",
    "comparisons",
)


@dataclass
class CostCounter:
    """Accumulates RAM-model cost units, optionally against a hard budget.

    Parameters
    ----------
    budget:
        If not ``None``, :class:`~repro.errors.BudgetExceeded` is raised as
        soon as :attr:`total` exceeds this value.

    Examples
    --------
    >>> counter = CostCounter()
    >>> counter.charge("objects_examined", 3)
    >>> counter.total
    3
    """

    budget: Optional[int] = None
    counts: Dict[str, int] = field(default_factory=dict)
    _total: int = 0

    #: Optional span recorder (see :mod:`repro.trace`).  A class-level
    #: ``None`` keeps untraced instances free of any per-instance state;
    #: attaching is a plain instance-attribute assignment.
    tracer: ClassVar[Optional[Any]] = None

    def charge(self, category: str, units: int = 1) -> None:
        """Add ``units`` to ``category`` and enforce the budget.

        The counts are updated (and the attached tracer, if any, records the
        charge) *before* a blown budget raises, so an interrupted probe's
        spent units — and its trace — are never lost.
        """
        self.counts[category] = self.counts.get(category, 0) + units
        self._total += units
        if self.tracer is not None:
            self.tracer.record(category, units)
        if self.budget is not None and self._total > self.budget:
            raise BudgetExceeded(self._total, self.budget)

    def merge(self, other: "CostCounter") -> None:
        """Fold another counter's per-category counts into this one.

        Used by layered execution (planner races, the serving layer's
        fallback chain): a probe runs under its own budgeted counter, and the
        spent units are rolled up here *per category* instead of being
        lumped into a single bucket.  This counter's own budget still
        applies, but — unlike :meth:`charge` — nothing is recorded to an
        attached tracer: the probe's charges were recorded when they
        originally happened, and an accounting transfer must not double-count
        them in the span tree.
        """
        for category, units in other.counts.items():
            if units:
                self._transfer(category, units)

    def _transfer(self, category: str, units: int) -> None:
        """Budget-enforced, tracer-silent single-category transfer."""
        self.counts[category] = self.counts.get(category, 0) + units
        self._total += units
        if self.budget is not None and self._total > self.budget:
            raise BudgetExceeded(self._total, self.budget)

    def absorb(self, other: "CostCounter") -> None:
        """Fold another counter's counts into this one without budget checks.

        :meth:`merge` enforces this counter's budget, which is right for
        layered *execution* (a blown budget should stop the work).  ``absorb``
        is for *accounting after the fact*: the serving layer reports a
        query's spent units to a caller-supplied counter once the work is
        already done, and a caller whose own budget is exhausted must still
        receive the counts — raising there would lose the trace.  The budget,
        if any, is left over-run rather than enforced.
        """
        for category, units in other.counts.items():
            if units:
                self.counts[category] = self.counts.get(category, 0) + units
                self._total += units

    @property
    def remaining(self) -> Optional[int]:
        """Budget units left (never negative), or ``None`` when unbudgeted."""
        if self.budget is None:
            return None
        return max(self.budget - self._total, 0)

    @property
    def total(self) -> int:
        """Total units charged across all categories."""
        return self._total

    def __getitem__(self, category: str) -> int:
        return self.counts.get(category, 0)

    def reset(self) -> None:
        """Zero all counts (the budget, if any, is kept)."""
        self.counts.clear()
        self._total = 0

    def snapshot(self) -> Dict[str, int]:
        """Return a copy of the per-category counts plus the total."""
        snap = dict(self.counts)
        snap["total"] = self._total
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{key}={val}" for key, val in sorted(self.counts.items()))
        return f"CostCounter(total={self._total}, {parts})"


class NullCounter(CostCounter):
    """A counter that ignores charges; used when cost accounting is off.

    Query methods accept ``counter=None`` and substitute this singleton, so
    the charging call sites never need a conditional.
    """

    def charge(self, category: str, units: int = 1) -> None:  # noqa: D102
        return

    def absorb(self, other: CostCounter) -> None:  # noqa: D102
        return

    def _transfer(self, category: str, units: int) -> None:  # noqa: D102
        return

    def reset(self) -> None:  # noqa: D102
        return


#: Shared do-nothing counter.
NULL_COUNTER = NullCounter()


def ensure_counter(counter: Optional[CostCounter]) -> CostCounter:
    """Return ``counter`` itself, or the shared null counter when ``None``."""
    return counter if counter is not None else NULL_COUNTER

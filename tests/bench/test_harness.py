"""Unit tests for repro.bench."""

import math

import pytest

from repro.bench.harness import (
    fit_loglog_slope,
    geometric_sizes,
    predicted_query_bound,
    run_sweep,
)
from repro.bench.reporting import format_table
from repro.errors import ValidationError


class TestSlopeFitting:
    def test_exact_power_law(self):
        xs = [10, 100, 1000, 10000]
        ys = [x**0.5 for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(0.5, abs=1e-9)

    def test_linear(self):
        xs = [10, 100, 1000]
        assert fit_loglog_slope(xs, [3 * x for x in xs]) == pytest.approx(1.0)

    def test_constant(self):
        assert fit_loglog_slope([10, 100], [5, 5]) == pytest.approx(0.0)

    def test_zero_values_clamped(self):
        slope = fit_loglog_slope([10, 100], [0, 0])
        assert slope == pytest.approx(0.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            fit_loglog_slope([10], [10])

    def test_degenerate_x_rejected(self):
        with pytest.raises(ValidationError):
            fit_loglog_slope([10, 10], [1, 2])


class TestSweep:
    def test_run_sweep_collects_rows(self):
        result = run_sweep("n", [10, 20], lambda n: {"cost": n * 2})
        assert result.rows == [
            {"n": 10.0, "cost": 20},
            {"n": 20.0, "cost": 40},
        ]
        assert result.column("cost") == [20, 40]

    def test_slope_on_sweep(self):
        result = run_sweep("n", [10, 100, 1000], lambda n: {"cost": n**0.75})
        assert result.slope("n", "cost") == pytest.approx(0.75)

    def test_ratio_spread(self):
        result = run_sweep("n", [10, 100], lambda n: {"cost": 3 * n, "bound": n})
        assert result.ratio_spread("cost", "bound") == pytest.approx(1.0)

    def test_ratio_spread_with_zero_denominator(self):
        result = run_sweep("n", [10], lambda n: {"cost": 1, "bound": 0})
        assert math.isinf(result.ratio_spread("cost", "bound"))


class TestGeometricSizes:
    def test_endpoints(self):
        sizes = geometric_sizes(100, 1600, 5)
        assert sizes[0] == 100
        assert sizes[-1] == 1600
        assert len(sizes) == 5

    def test_monotone(self):
        sizes = geometric_sizes(10, 10000, 7)
        assert sizes == sorted(sizes)

    def test_validation(self):
        with pytest.raises(ValidationError):
            geometric_sizes(100, 100, 3)
        with pytest.raises(ValidationError):
            geometric_sizes(10, 100, 1)


class TestPredictedBound:
    def test_out_zero(self):
        assert predicted_query_bound(100, 2, 0) == pytest.approx(10.0)

    def test_out_positive(self):
        assert predicted_query_bound(100, 2, 25) == pytest.approx(10 * 6)


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"n": 10, "cost": 3.14159}, {"n": 1000, "cost": 2.0}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "n" in lines[1] and "cost" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

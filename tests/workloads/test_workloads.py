"""Unit tests for repro.workloads."""


import pytest

from repro.errors import ValidationError
from repro.workloads.generators import (
    WorkloadConfig,
    adversarial_ksi_sets,
    clustered_points,
    grid_snap,
    planted_dataset,
    uniform_points,
    zipf_dataset,
    zipf_document,
)
from repro.workloads.queries import (
    frequent_keywords,
    keyword_pair_by_frequency,
    random_rect,
    rect_with_target_out,
)
from repro.workloads.scenarios import (
    HOTEL_TAGS,
    condition_c1,
    condition_c2,
    hotel_dataset,
    keywords_for,
    tag_id,
)


class TestGenerators:
    def test_zipf_document_size_and_range(self, rng):
        weights = [1.0 / w for w in range(1, 21)]
        doc = zipf_document(rng, 20, 5, weights)
        assert len(doc) == 5
        assert all(1 <= w <= 20 for w in doc)

    def test_zipf_skew(self, rng):
        weights = [1.0 / w**1.5 for w in range(1, 51)]
        counts = {}
        for _ in range(500):
            for w in zipf_document(rng, 50, 3, weights):
                counts[w] = counts.get(w, 0) + 1
        assert counts.get(1, 0) > counts.get(50, 0)

    def test_uniform_points_in_range(self, rng):
        pts = uniform_points(rng, 50, 3, extent=2.0)
        assert len(pts) == 50
        assert all(0.0 <= c <= 2.0 for p in pts for c in p)

    def test_clustered_points_in_range(self, rng):
        pts = clustered_points(rng, 50, 2)
        assert all(0.0 <= c <= 1.0 for p in pts for c in p)

    def test_zipf_dataset_shape(self):
        config = WorkloadConfig(num_objects=100, vocabulary=20, seed=7)
        ds = zipf_dataset(config)
        assert len(ds) == 100
        assert ds.dim == 2
        assert ds.total_doc_size >= 100

    def test_zipf_dataset_deterministic(self):
        config = WorkloadConfig(num_objects=50, seed=3)
        a, b = zipf_dataset(config), zipf_dataset(config)
        assert [o.point for o in a] == [o.point for o in b]
        assert [o.doc for o in a] == [o.doc for o in b]

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(num_objects=0)
        with pytest.raises(ValidationError):
            WorkloadConfig(num_objects=5, doc_min=3, doc_max=2)

    def test_planted_dataset_controls_out(self):
        ds = planted_dataset(200, 2, keywords=[1, 2], planted_fraction=0.1, seed=5)
        matches = ds.matching([1, 2])
        assert len(matches) == 20

    def test_planted_zero_fraction(self):
        ds = planted_dataset(100, 2, keywords=[1, 2], planted_fraction=0.0, seed=5)
        assert ds.matching([1, 2]) == []

    def test_adversarial_ksi(self):
        sets = adversarial_ksi_sets(5, 100, planted=7, seed=1)
        assert len(sets) == 5
        inter = set(sets[0]) & set(sets[1])
        assert len(inter) == 7
        assert all(len(s) == 107 for s in sets)

    def test_adversarial_validation(self):
        with pytest.raises(ValidationError):
            adversarial_ksi_sets(1, 10)

    def test_grid_snap(self):
        snapped = grid_snap([(0.49, 0.99)], 10)
        assert snapped == [(4.0, 9.0)]
        assert all(c == int(c) for p in snapped for c in p)


class TestQueries:
    def test_random_rect_inside_extent(self, rng):
        for _ in range(20):
            rect = random_rect(rng, 2, side=0.3)
            assert all(0.0 <= lo and hi <= 1.0 for lo, hi in zip(rect.lo, rect.hi))

    def test_rect_with_target_out(self, rng):
        ds = planted_dataset(300, 2, keywords=[1, 2], planted_fraction=0.5, seed=2)
        rect, actual = rect_with_target_out(ds, [1, 2], 40, rng)
        matches = [o for o in ds.matching([1, 2]) if rect.contains_point(o.point)]
        assert len(matches) == actual
        assert actual >= 40

    def test_rect_with_zero_target(self, rng):
        ds = planted_dataset(100, 2, keywords=[1, 2], planted_fraction=0.5, seed=2)
        rect, actual = rect_with_target_out(ds, [1, 2], 0, rng)
        assert actual == 0

    def test_frequency_helpers(self, rng):
        config = WorkloadConfig(num_objects=300, vocabulary=20, zipf_s=1.2, seed=9)
        ds = zipf_dataset(config)
        a, b = keyword_pair_by_frequency(ds, 0, 1)
        assert a != b
        top3 = frequent_keywords(ds, 3)
        assert len(top3) == 3
        freq = {w: len(ds.objects_with(w)) for w in top3}
        assert freq[top3[0]] >= freq[top3[2]]


class TestHotelScenario:
    def test_dataset_shape(self):
        ds = hotel_dataset(200, seed=1)
        assert len(ds) == 200
        assert ds.dim == 2
        for obj in ds:
            price, rating = obj.point
            assert 30.0 <= price <= 1200.0
            assert 0.0 <= rating <= 10.0

    def test_deterministic(self):
        a, b = hotel_dataset(50, seed=4), hotel_dataset(50, seed=4)
        assert [o.point for o in a] == [o.point for o in b]

    def test_tags_resolve(self):
        assert tag_id("pool") == HOTEL_TAGS.index("pool") + 1
        assert keywords_for(["pool", "spa"]) == [tag_id("pool"), tag_id("spa")]

    def test_condition_c1_semantics(self):
        rect = condition_c1(100.0, 200.0, 8.0)
        assert rect.contains_point((150.0, 9.0))
        assert not rect.contains_point((250.0, 9.0))
        assert not rect.contains_point((150.0, 7.0))

    def test_condition_c2_semantics(self):
        # price + 50*(10 - rating) <= 400
        h = condition_c2(1.0, 50.0, 400.0)
        assert h.contains((100.0, 9.0))  # 100 + 50 = 150
        assert not h.contains((300.0, 5.0))  # 300 + 250 = 550

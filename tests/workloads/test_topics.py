"""Unit tests for repro.workloads.topics."""

import pytest

from repro.errors import ValidationError
from repro.workloads.topics import TopicConfig, topic_dataset, topic_keywords


class TestTopicDataset:
    def test_shape(self):
        config = TopicConfig(num_objects=200, seed=1)
        ds = topic_dataset(config)
        assert len(ds) == 200
        assert ds.dim == 2
        for obj in ds:
            assert all(0.0 <= c <= 1.0 for c in obj.point)
            assert config.doc_min <= len(obj.doc) <= config.doc_max

    def test_deterministic(self):
        config = TopicConfig(num_objects=60, seed=9)
        a, b = topic_dataset(config), topic_dataset(config)
        assert [o.point for o in a] == [o.point for o in b]
        assert [o.doc for o in a] == [o.doc for o in b]

    def test_vocabulary_layout(self):
        config = TopicConfig(
            num_objects=400, num_topics=3, keywords_per_topic=10, common_keywords=5, seed=2
        )
        ds = topic_dataset(config)
        max_keyword = 5 + 3 * 10
        assert all(1 <= w <= max_keyword for w in ds.vocabulary)

    def test_topic_keywords_are_disjoint_across_topics(self):
        config = TopicConfig(num_objects=10, num_topics=4, seed=0)
        slices = [set(topic_keywords(config, t, config.keywords_per_topic)) for t in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not slices[i] & slices[j]

    def test_correlation_geography_vs_keywords(self):
        """Same-topic keyword pairs co-occur; cross-topic pairs are rare."""
        config = TopicConfig(
            num_objects=800, num_topics=4, common_fraction=0.1, seed=3
        )
        ds = topic_dataset(config)
        same = topic_keywords(config, 0, 2)
        cross = [topic_keywords(config, 0, 1)[0], topic_keywords(config, 1, 1)[0]]
        same_count = len(ds.matching(same))
        cross_count = len(ds.matching(cross))
        assert same_count > cross_count

    def test_validation(self):
        with pytest.raises(ValidationError):
            TopicConfig(num_objects=0)
        with pytest.raises(ValidationError):
            TopicConfig(num_objects=5, doc_min=4, doc_max=2)
        with pytest.raises(ValidationError):
            TopicConfig(num_objects=5, doc_max=100, keywords_per_topic=3, common_keywords=3)
        config = TopicConfig(num_objects=5)
        with pytest.raises(ValidationError):
            topic_keywords(config, 99)

    def test_indexable(self):
        """The generated data feeds the indexes without friction."""
        from repro.core.orp_kw import OrpKwIndex
        from repro.geometry.rectangles import Rect

        config = TopicConfig(num_objects=150, seed=4)
        ds = topic_dataset(config)
        index = OrpKwIndex(ds, k=2)
        words = topic_keywords(config, 0, 2)
        got = sorted(o.oid for o in index.query(Rect.full(2), words))
        want = sorted(o.oid for o in ds.matching(words))
        assert got == want

"""Structured event log: ring-buffer semantics, emission wiring, golden export.

The golden file pins the JSONL rendering byte-for-byte on a deterministic
workload; intentional schema changes must regenerate it with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/telemetry/test_events.py
"""

import json
import os
import pathlib

import pytest

from repro.dataset import Dataset, make_objects
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect
from repro.service import QueryEngine, ShardedQueryEngine
from repro.telemetry import EVENT_KINDS, SCHEMA_VERSION, EventLog

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

POINTS = [
    (1.0, 1.0), (2.0, 4.0), (3.0, 2.0), (4.0, 8.0), (5.0, 5.0),
    (6.0, 3.0), (7.0, 7.0), (8.0, 2.0), (9.0, 6.0), (2.5, 2.5),
    (4.5, 4.5), (6.5, 1.5), (8.5, 8.5), (1.5, 7.5), (3.5, 6.5),
]
DOCS = [
    [1, 2], [2, 3], [1, 3], [1, 2, 3], [2],
    [1], [3], [1, 2], [2, 3], [1, 2, 3],
    [1, 2], [3], [1, 3], [2], [1, 2, 3],
]


class TestRingBuffer:
    def test_unknown_kind_rejected(self):
        log = EventLog()
        with pytest.raises(ValidationError):
            log.emit("not_a_kind")

    def test_non_scalar_field_rejected(self):
        log = EventLog()
        with pytest.raises(ValidationError):
            log.emit("query_finish", shards=[1, 2])

    def test_sequence_numbers_survive_drops(self):
        log = EventLog(capacity=2)
        for _ in range(5):
            log.emit("query_finish", cost_total=1)
        assert len(log) == 2
        assert log.dropped == 3
        assert log.last_seq == 5
        assert [event.seq for event in log.events()] == [4, 5]

    def test_kind_filter(self):
        log = EventLog()
        log.emit("query_finish", cost_total=1)
        log.emit("query_shed", reason="shed:admission")
        log.emit("query_finish", cost_total=2)
        assert [e.kind for e in log.events("query_shed")] == ["query_shed"]
        assert len(log.events()) == 3

    def test_counts_survive_drops(self):
        log = EventLog(capacity=1)
        log.emit("query_finish", cost_total=1)
        log.emit("query_shed", reason="x")
        assert log.counts() == {"query_finish": 1, "query_shed": 1}

    def test_events_are_schema_stamped(self):
        log = EventLog()
        log.emit("epoch_publish", epoch=1)
        payload = json.loads(log.export_jsonl())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] in EVENT_KINDS

    def test_stats_is_json_safe(self):
        log = EventLog(capacity=2)
        for _ in range(3):
            log.emit("query_finish", cost_total=0)
        stats = log.stats()
        assert stats["retained"] == 2
        assert stats["emitted"] == 3
        assert stats["dropped"] == 1
        json.dumps(stats)


def drive_engine(events: EventLog) -> QueryEngine:
    """A deterministic workload hitting finish/degraded/evict/hit paths."""
    engine = QueryEngine(
        Dataset(make_objects(POINTS, DOCS)),
        max_k=2,
        cache_size=1,
        events=events,
    )
    engine.query(Rect((0.0, 0.0), (5.0, 5.0)), [1, 2])
    engine.query(Rect((2.0, 2.0), (9.0, 9.0)), [2, 3], budget=4096)  # evicts
    engine.query(Rect((2.0, 2.0), (9.0, 9.0)), [2, 3])  # cache hit
    engine.query(Rect((0.0, 0.0), (9.5, 9.0)), [1, 2], budget=2)  # degraded
    return engine


class TestEngineEmission:
    def test_sync_engine_emits_lifecycle_events(self):
        events = EventLog()
        drive_engine(events)
        counts = events.counts()
        assert counts["query_finish"] == 4
        # cache_size=1: query 2 evicts query 1's entry, query 4 evicts
        # query 2's (query 3 hit in between).
        assert counts["cache_evict"] == 2
        assert counts["query_degraded"] == 1

    def test_sequence_numbers_are_monotone(self):
        events = EventLog()
        drive_engine(events)
        seqs = [event.seq for event in events.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_cache_hit_emits_zero_cost_finish(self):
        events = EventLog()
        drive_engine(events)
        hits = [
            e for e in events.events("query_finish")
            if e.fields["strategy"] == "cache"
        ]
        assert len(hits) == 1
        assert hits[0].fields["cost_total"] == 0

    def test_sharded_engine_emits_epoch_publishes(self):
        events = EventLog()
        engine = ShardedQueryEngine(
            Dataset(make_objects(POINTS, DOCS)),
            shards=2,
            max_k=2,
            cache_size=0,
            events=events,
        )
        assert events.counts()["epoch_publish"] == 1  # the initial shard map
        engine.insert((5.0, 5.0), [1, 2])
        oid = engine.insert((6.0, 6.0), [1, 3])
        engine.delete(oid)
        assert events.counts()["epoch_publish"] == 4
        epochs = [e.fields["epoch"] for e in events.events("epoch_publish")]
        assert epochs == sorted(epochs)

    def test_event_log_never_pickled_with_engine(self):
        import pickle

        events = EventLog()
        engine = drive_engine(events)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.events is None
        clone.query(Rect((0.0, 0.0), (5.0, 5.0)), [1, 2])  # emits nowhere


class TestGoldenExport:
    def test_jsonl_matches_golden(self):
        events = EventLog()
        drive_engine(events)
        got = events.export_jsonl()
        path = GOLDEN_DIR / "events.jsonl"
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(got + "\n")
        assert path.exists(), f"golden file missing — regenerate: {path}"
        assert got + "\n" == path.read_text()

    def test_jsonl_deterministic_across_runs(self):
        a, b = EventLog(), EventLog()
        drive_engine(a)
        drive_engine(b)
        assert a.export_jsonl() == b.export_jsonl()

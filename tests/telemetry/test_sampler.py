"""Tail-based trace retention (repro.telemetry.sampler)."""

import json

import pytest

from repro.errors import ValidationError
from repro.service.engine import QueryRecord
from repro.telemetry import TailSampler


def make_record(
    query_id: int,
    cost: int = 0,
    strategy: str = "orp",
    degraded: bool = False,
    reason: str = None,
    trace: dict = None,
) -> QueryRecord:
    return QueryRecord(
        query_id=query_id,
        rect_lo=(0.0, 0.0),
        rect_hi=(1.0, 1.0),
        keywords=(1,),
        budget=None,
        strategy=strategy,
        fallbacks=[],
        cost={"total": cost} if cost else {},
        result_count=0,
        cache="miss",
        degraded=degraded,
        backend="cost_model",
        estimates={},
        trace=trace,
        reason=reason,
    )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"slowest_k": 0}, {"memory_bound": 0}, {"head_every": -1}],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            TailSampler(**kwargs)


class TestSlowestK:
    def test_keeps_exactly_the_k_costliest(self):
        sampler = TailSampler(slowest_k=3)
        costs = [5, 50, 10, 90, 1, 70, 30]
        for i, cost in enumerate(costs):
            sampler.offer(make_record(i, cost=cost))
        kept = sorted(e.cost for e in sampler.retained("slow"))
        assert kept == [50, 70, 90]

    def test_cheap_query_rejected_once_pool_full(self):
        sampler = TailSampler(slowest_k=2)
        for i, cost in enumerate((100, 200)):
            assert sampler.offer(make_record(i, cost=cost))
        assert not sampler.offer(make_record(2, cost=50))
        assert sampler.rejected == 1

    def test_tie_breaks_keep_newer_costlier_only(self):
        """Equal cost does not bump an incumbent (strictly-costlier rule)."""
        sampler = TailSampler(slowest_k=1)
        assert sampler.offer(make_record(0, cost=10))
        assert not sampler.offer(make_record(1, cost=10))
        assert [e.query_id for e in sampler.retained("slow")] == [0]


class TestMandatoryClasses:
    def test_shed_degraded_and_reasoned_always_retained(self):
        sampler = TailSampler(slowest_k=1)
        sampler.offer(make_record(0, cost=1000))  # fills the slow pool
        assert sampler.offer(make_record(1, strategy="shed"))
        assert sampler.offer(make_record(2, degraded=True, cost=1))
        assert sampler.offer(make_record(3, reason="shed:slo:p99_cost"))
        classes = {e.why for e in sampler.retained()}
        assert {"slow", "shed", "degraded", "reason"} <= classes

    def test_mandatory_entries_do_not_consume_slow_slots(self):
        sampler = TailSampler(slowest_k=1)
        sampler.offer(make_record(0, strategy="shed"))
        assert sampler.offer(make_record(1, cost=5))  # slow pool still open
        assert len(sampler.retained("slow")) == 1


class TestHeadSampling:
    def test_every_nth_healthy_query_kept(self):
        sampler = TailSampler(slowest_k=1, head_every=3)
        sampler.offer(make_record(0, cost=1000))  # slow slot taken
        for i in range(1, 7):
            sampler.offer(make_record(i, cost=1))
        heads = sampler.retained("head")
        assert [e.seq for e in heads] == [3, 6]

    def test_disabled_by_default(self):
        sampler = TailSampler(slowest_k=1)
        sampler.offer(make_record(0, cost=1000))
        for i in range(1, 12):
            sampler.offer(make_record(i, cost=1))
        assert sampler.retained("head") == []


class TestMemoryBound:
    def test_hard_bound_is_enforced(self):
        trace = {"component": "x", "children": [], "total": 1}
        record_size = len(make_record(0, cost=1, trace=trace).to_json())
        sampler = TailSampler(slowest_k=10, memory_bound=3 * record_size)
        for i in range(8):
            sampler.offer(make_record(i, cost=i + 1, trace=trace))
        assert sampler.total_size <= sampler.memory_bound
        assert len(sampler) == 3
        assert sampler.evicted == 5

    def test_bound_evicts_head_before_slow_before_mandatory(self):
        trace = {"payload": "y" * 40}
        record_size = len(
            make_record(0, cost=1, strategy="shed", trace=trace).to_json()
        )
        sampler = TailSampler(
            slowest_k=4, memory_bound=2 * record_size + 20, head_every=2
        )
        sampler.offer(make_record(0, cost=500, trace=trace))  # slow
        sampler.offer(make_record(1, strategy="shed", trace=trace))  # mandatory
        sampler.offer(make_record(2, cost=400, trace=trace))  # slow → overflow
        whys = {e.why for e in sampler.retained()}
        assert "shed" in whys  # mandatory class survives the squeeze
        assert len(sampler) == 2

    def test_retention_decision_returned_honestly(self):
        """offer() returns False when the bound immediately evicts the entry."""
        tiny = len(make_record(0, cost=1).to_json()) - 1
        sampler = TailSampler(slowest_k=1, memory_bound=tiny)
        assert not sampler.offer(make_record(0, cost=1))
        assert len(sampler) == 0


class TestStats:
    def test_stats_json_safe_and_accurate(self):
        sampler = TailSampler(slowest_k=2)
        sampler.offer(make_record(0, cost=10))
        sampler.offer(make_record(1, strategy="shed"))
        sampler.offer(make_record(2, cost=20))
        stats = sampler.stats()
        assert stats["offered"] == 3
        assert stats["retained"] == 3
        assert stats["classes"] == {"shed": 1, "slow": 2}
        json.dumps(stats)

    def test_retained_record_is_a_json_safe_dict(self):
        sampler = TailSampler()
        sampler.offer(make_record(0, cost=99, trace={"total": 99}))
        entry = sampler.retained()[0]
        assert entry.record["cost"]["total"] == 99
        json.dumps(entry.to_dict())

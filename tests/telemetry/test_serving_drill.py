"""End-to-end serving drill: the telemetry acceptance criteria in one test.

A seeded mixed churn workload (queries interleaved with inserts/deletes)
runs through :class:`AsyncQueryEngine` over a sharded engine with every
telemetry surface wired and a deliberately tight SLO target, then asserts:

(a) the OpenMetrics export's ``cost_total`` series — and its p99 estimate —
    match a straight recomputation from the raw ``QueryRecord`` stream;
(b) the event log holds every epoch publish and every shed, with strictly
    monotone sequence numbers;
(c) the tail sampler retains exactly the slowest-k healthy queries plus
    every mandatory-class (shed/degraded) query, under the memory bound;
(d) at least one graduated-shed admission decision is attributable to the
    SLO monitor via ``QueryRecord.reason``.
"""

import asyncio
import random

import pytest

from repro.errors import BudgetExceeded
from repro.service import AsyncQueryEngine, ShardedQueryEngine
from repro.telemetry import (
    EventLog,
    SLOMonitor,
    TailSampler,
    estimate_quantile,
    render_openmetrics,
)
from repro.trace import MetricsRegistry
from repro.workloads import WorkloadConfig, random_rect, zipf_dataset

MAX_INFLIGHT = 200
#: Alternating budgets: LOW stays under the quartered capacity (200 >> 2 =
#: 50) so those queries always serve and keep feeding the SLO window; HIGH
#: exceeds it, so those shed exactly while the monitor reports pressure.
BUDGET_LOW = 40
BUDGET_HIGH = 60
SLOWEST_K = 3


@pytest.fixture(scope="module")
def drill():
    """Run the churn workload once; every criterion reads the same run."""
    dataset = zipf_dataset(
        WorkloadConfig(num_objects=120, vocabulary=16, doc_max=4, seed=1401)
    )
    events = EventLog()
    # events wired at construction so epoch 0 (the initial shard map) is
    # in the log — "every epoch publish" includes the first.
    engine = ShardedQueryEngine(
        dataset, shards=3, max_k=2, cache_size=0, tracing=True, events=events
    )
    sampler = TailSampler(slowest_k=SLOWEST_K, memory_bound=1 << 20)
    slo = SLOMonitor(window=16, p99_cost_target=1)  # any real cost burns
    front = AsyncQueryEngine(
        engine,
        max_inflight_cost=MAX_INFLIGHT,
        max_workers=2,
        events=events,
        sampler=sampler,
        slo=slo,
    )
    rng = random.Random(1402)
    shed_count = 0
    inserted = []

    async def drive():
        nonlocal shed_count
        for index in range(30):
            # Mixed churn: mutations interleave with the query stream (the
            # loop is idle between awaits, so direct mutation is safe).
            if index % 5 == 0:
                point = tuple(rng.uniform(0.0, 1.0) for _ in range(2))
                doc = rng.sample(range(1, 17), 3)
                inserted.append(engine.insert(point, doc))
            if index % 7 == 6 and inserted:
                engine.delete(inserted.pop(0))
            rect = random_rect(rng, 2, side=0.5)
            keywords = rng.sample(range(1, 17), 2)
            budget = BUDGET_LOW if index % 2 == 0 else BUDGET_HIGH
            try:
                await front.query(rect, keywords, budget=budget)
            except BudgetExceeded:
                shed_count += 1

    try:
        asyncio.run(drive())
    finally:
        front.close()
    return {
        "engine": engine,
        "front": front,
        "events": events,
        "sampler": sampler,
        "slo": slo,
        "shed_count": shed_count,
    }


def _served_records(engine):
    return [r for r in engine.records if r.strategy != "shed"]


def test_workload_exercises_both_outcomes(drill):
    """The drill only means something if it served and shed and churned."""
    assert drill["shed_count"] >= 1
    assert len(_served_records(drill["engine"])) >= 5
    assert drill["engine"].epoch.epoch_id > 0  # churn published epochs


def test_a_openmetrics_p99_matches_raw_record_recomputation(drill):
    engine = drill["engine"]
    rebuilt = MetricsRegistry()
    for record in _served_records(engine):
        rebuilt.histogram("cost_total").observe(record.cost.get("total", 0))
    # The exported text's cost_total series is exactly the raw stream's.
    exported = render_openmetrics(engine.metrics)
    expected = render_openmetrics(rebuilt)
    exported_series = [
        line for line in exported.splitlines() if line.startswith("repro_cost_total")
    ]
    expected_series = [
        line for line in expected.splitlines() if line.startswith("repro_cost_total")
    ]
    assert exported_series == expected_series
    # And the p99 estimate agrees between export-side and raw-side.
    p99_exported = estimate_quantile(
        engine.metrics.histogram("cost_total"), 0.99
    )
    p99_raw = estimate_quantile(rebuilt.histogram("cost_total"), 0.99)
    assert p99_exported == p99_raw
    assert p99_exported is not None


def test_b_event_log_has_every_epoch_publish_and_shed(drill):
    engine, events = drill["engine"], drill["events"]
    published = [e.fields["epoch"] for e in events.events("epoch_publish")]
    # Every epoch ever published (0 = the initial shard map) is in the log.
    assert published == list(range(engine.epoch.epoch_id + 1))
    sheds = events.events("query_shed")
    assert len(sheds) == drill["shed_count"]
    assert all(e.fields["reason"].startswith("shed:slo:") for e in sheds)
    seqs = [e.seq for e in events.events()]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert events.dropped == 0


def test_c_sampler_retains_slowest_k_plus_mandatory_under_bound(drill):
    engine, sampler = drill["engine"], drill["sampler"]
    records = list(engine.records)
    healthy = [
        r
        for r in records
        if r.strategy != "shed" and not r.degraded and r.reason is None
    ]
    healthy_ids = {id(r) for r in healthy}
    mandatory = [r for r in records if id(r) not in healthy_ids]
    # Exactly every mandatory-class query is retained.
    assert len(sampler.retained("shed")) == drill["shed_count"]
    assert len(sampler.retained("degraded")) == sum(
        1 for r in mandatory if r.strategy != "shed" and r.degraded
    )
    # Exactly the slowest-k healthy queries (by total cost, multiset).
    slow_costs = sorted(e.cost for e in sampler.retained("slow"))
    expected = sorted(r.cost.get("total", 0) for r in healthy)[-SLOWEST_K:]
    assert slow_costs == expected
    # Span-tree hygiene: a healthy query either kept its trace (it was in
    # the slow pool when offered — final members or later-bumped ones, whose
    # cost can't exceed the final pool minimum) or had it dropped at offer
    # time.  Retained entries always carry their tree (tracing was on).
    retained_slow_ids = {e.query_id for e in sampler.retained("slow")}
    min_slow_cost = min(e.cost for e in sampler.retained("slow"))
    for record in healthy:
        if record.query_id in retained_slow_ids:
            assert record.trace is not None
        elif record.trace is not None:  # admitted once, bumped later
            assert record.cost.get("total", 0) <= min_slow_cost
    for entry in sampler.retained("slow"):
        assert entry.record["trace"] is not None
    # The hard memory bound held throughout.
    assert sampler.total_size <= sampler.memory_bound
    assert sampler.stats()["offered"] == len(records)


def test_d_graduated_shed_attributable_via_record_reason(drill):
    engine, front = drill["engine"], drill["front"]
    slo_sheds = [
        r
        for r in engine.records
        if r.strategy == "shed" and (r.reason or "").startswith("shed:slo:")
    ]
    assert len(slo_sheds) >= 1
    assert slo_sheds[0].reason == "shed:slo:p99_cost"
    stats = front.stats()
    assert stats["metrics"]["counters"]["shed_slo_total"] == len(slo_sheds)
    assert stats["slo"]["targets"]["p99_cost_target"] == 1
    assert stats["sampler"]["retained"] == len(drill["sampler"].retained())
    assert stats["events"]["emitted"] == drill["events"].last_seq

"""Quantile estimation + planner statistics (repro.telemetry.quantiles)."""

import json
import random

import pytest

from repro.errors import ValidationError
from repro.telemetry import (
    RunningStat,
    StatsCollector,
    estimate_quantile,
    summarize_quantiles,
)
from repro.trace import MetricHistogram


class TestEstimateQuantile:
    def test_empty_histogram_returns_none(self):
        assert estimate_quantile(MetricHistogram("h"), 0.5) is None

    def test_quantile_out_of_range_rejected(self):
        hist = MetricHistogram("h")
        hist.observe(1)
        for bad in (-0.1, 1.5):
            with pytest.raises(ValidationError):
                estimate_quantile(hist, bad)

    def test_accepts_histogram_and_snapshot_equally(self):
        hist = MetricHistogram("h", buckets=(2.0, 8.0, 32.0))
        for value in (1, 3, 5, 9, 30):
            hist.observe(value)
        assert estimate_quantile(hist, 0.5) == estimate_quantile(
            hist.snapshot(), 0.5
        )

    def test_single_observation_collapses_to_it(self):
        hist = MetricHistogram("h", buckets=(4.0, 16.0))
        hist.observe(7)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert estimate_quantile(hist, q) == 7.0

    def test_estimates_are_clamped_into_observed_range(self):
        hist = MetricHistogram("h", buckets=(100.0,))
        hist.observe(40)
        hist.observe(60)
        for q in (0.01, 0.99):
            value = estimate_quantile(hist, q)
            assert 40.0 <= value <= 60.0

    def test_overflow_bucket_interpolates_toward_max(self):
        hist = MetricHistogram("h", buckets=(10.0,))
        for value in (1, 2, 3, 50):  # 50 overflows; max pins the top edge
            hist.observe(value)
        p99 = estimate_quantile(hist, 0.99)
        assert 10.0 <= p99 <= 50.0

    def test_accuracy_within_bucket_resolution(self):
        """Estimates land in the right bucket for a seeded uniform stream."""
        rng = random.Random(11)
        hist = MetricHistogram("h")  # powers-of-four default buckets
        values = sorted(rng.randint(0, 4000) for _ in range(500))
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.99):
            exact = values[min(int(q * len(values)), len(values) - 1)]
            estimate = estimate_quantile(hist, q)
            # Same power-of-four bucket: within a factor of 4 of exact.
            assert estimate <= max(4 * exact, 1)
            assert estimate >= exact / 4

    def test_deterministic(self):
        a = MetricHistogram("h")
        b = MetricHistogram("h")
        for value in (3, 17, 99, 1024, 5):
            a.observe(value)
            b.observe(value)
        assert summarize_quantiles(a) == summarize_quantiles(b)

    def test_summary_shape(self):
        hist = MetricHistogram("h")
        hist.observe(9)
        assert set(summarize_quantiles(hist)) == {"p50", "p90", "p99"}


class TestRunningStat:
    def test_welford_matches_direct_computation(self):
        rng = random.Random(3)
        values = [rng.uniform(-50, 50) for _ in range(200)]
        stat = RunningStat()
        for value in values:
            stat.observe(value)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert stat.count == 200
        assert stat.mean == pytest.approx(mean)
        assert stat.variance == pytest.approx(variance)
        assert stat.low == min(values)
        assert stat.high == max(values)

    def test_empty_stat_is_json_safe(self):
        payload = RunningStat().to_dict()
        assert payload["count"] == 0
        assert payload["variance"] == 0.0
        json.dumps(payload)


class TestStatsCollector:
    def test_merge_equals_single_stream(self):
        """Chan pooled merge is exact: split stream == merged stream."""
        rng = random.Random(9)
        observations = [
            (rng.choice(["orp", "linear"]), rng.randint(1, 500), rng.randint(0, 9))
            for _ in range(300)
        ]
        whole = StatsCollector()
        left, right = StatsCollector(), StatsCollector()
        for index, (strategy, cost, results) in enumerate(observations):
            whole.observe(strategy, "cost_model", cost, results, corpus_size=100)
            half = left if index % 2 == 0 else right
            half.observe(strategy, "cost_model", cost, results, corpus_size=100)
        left.merge(right)
        a = whole.planner_stats()
        b = left.planner_stats()
        for cell_a, cell_b in zip(a["strategies"], b["strategies"]):
            assert cell_a["strategy"] == cell_b["strategy"]
            assert cell_a["queries"] == cell_b["queries"]
            for series in StatsCollector.SERIES:
                assert cell_a[series]["mean"] == pytest.approx(
                    cell_b[series]["mean"]
                )
                assert cell_a[series]["variance"] == pytest.approx(
                    cell_b[series]["variance"], abs=1e-9
                )

    def test_planner_stats_sorted_and_schema_stamped(self):
        collector = StatsCollector()
        collector.observe("zeta", "vectorized", 10, 1)
        collector.observe("alpha", "cost_model", 5, 0)
        payload = collector.planner_stats()
        assert payload["schema"] == 1
        keys = [
            (cell["strategy"], cell["backend"]) for cell in payload["strategies"]
        ]
        assert keys == sorted(keys)
        json.dumps(payload)  # JSON-safe end to end

    def test_selectivity_tracked_only_with_corpus_size(self):
        collector = StatsCollector()
        collector.observe("orp", "cost_model", 10, 4)  # no corpus size
        cell = collector.cell("orp", "cost_model")
        assert cell["selectivity"].count == 0
        collector.observe("orp", "cost_model", 10, 4, corpus_size=8)
        assert cell["selectivity"].count == 1
        assert cell["selectivity"].mean == pytest.approx(0.5)

"""SLO burn-rate monitors + graduated admission shedding (repro.telemetry.slo)."""

import asyncio

import pytest

from repro.errors import BudgetExceeded, ValidationError
from repro.service.async_engine import AdmissionController
from repro.telemetry import SLOMonitor, SloShed


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"max_shed_rate": 0.0},
            {"max_shed_rate": 1.5},
            {"max_budget_exhausted_rate": -0.1},
            {"p99_cost_target": 0},
            {"warn_burn": 0.0},
            {"warn_burn": 3.0, "critical_burn": 2.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            SLOMonitor(**kwargs)


class TestObjectives:
    def test_empty_window_reports_no_burns_and_zero_pressure(self):
        monitor = SLOMonitor(max_shed_rate=0.1)
        assert monitor.burn_rates() == {}
        assert monitor.worst() is None
        assert monitor.pressure() == 0
        assert monitor.shed_reason() == "shed:slo:unknown"

    def test_window_p99_is_exact_order_statistic(self):
        monitor = SLOMonitor(window=100, p99_cost_target=10)
        for cost in range(1, 101):  # 1..100
            monitor.observe_query(cost=cost)
        assert monitor.window_p99() == 99.0

    def test_window_p99_excludes_shed_queries(self):
        monitor = SLOMonitor(window=10, p99_cost_target=10)
        monitor.observe_query(cost=5)
        monitor.observe_query(shed=True)
        assert monitor.window_p99() == 5.0

    def test_window_slides(self):
        monitor = SLOMonitor(window=2, max_shed_rate=0.5)
        monitor.observe_query(shed=True)
        monitor.observe_query(cost=1)
        monitor.observe_query(cost=1)  # the shed fell out of the window
        assert monitor.burn_rates()["shed_rate"] == 0.0

    def test_burn_rates_are_observed_over_target(self):
        monitor = SLOMonitor(
            window=4, max_shed_rate=0.25, max_budget_exhausted_rate=0.5
        )
        monitor.observe_query(cost=1)
        monitor.observe_query(cost=9, budget_exhausted=True)
        monitor.observe_query(shed=True)
        monitor.observe_query(cost=3)
        burns = monitor.burn_rates()
        assert burns["shed_rate"] == pytest.approx((1 / 4) / 0.25)
        assert burns["budget_exhausted_rate"] == pytest.approx((1 / 4) / 0.5)

    def test_worst_breaks_ties_alphabetically(self):
        monitor = SLOMonitor(
            window=4, max_shed_rate=0.25, max_budget_exhausted_rate=0.25
        )
        monitor.observe_query(cost=1, budget_exhausted=True, shed=False)
        monitor.observe_query(shed=True)
        monitor.observe_query(cost=1)
        monitor.observe_query(cost=1)
        burns = monitor.burn_rates()
        assert burns["shed_rate"] == burns["budget_exhausted_rate"]
        assert monitor.worst()[0] == "budget_exhausted_rate"

    def test_pressure_graduates_with_burn(self):
        monitor = SLOMonitor(window=10, p99_cost_target=10)
        monitor.observe_query(cost=5)
        assert monitor.pressure() == 0  # burn 0.5
        monitor = SLOMonitor(window=10, p99_cost_target=10)
        monitor.observe_query(cost=10)
        assert monitor.pressure() == 1  # burn 1.0 == warn
        monitor = SLOMonitor(window=10, p99_cost_target=10)
        monitor.observe_query(cost=20)
        assert monitor.pressure() == 2  # burn 2.0 == critical

    def test_report_is_json_safe_and_deterministic(self):
        import json

        monitor = SLOMonitor(window=8, max_shed_rate=0.5, p99_cost_target=4)
        monitor.observe_query(cost=2)
        monitor.observe_query(shed=True)
        report = monitor.report()
        assert report["pressure"] == monitor.pressure()
        assert json.dumps(report, sort_keys=True) == json.dumps(
            monitor.report(), sort_keys=True
        )


class TestSloShed:
    def test_is_a_budget_exceeded(self):
        exc = SloShed("shed:slo:p99_cost", spent=10, budget=4)
        assert isinstance(exc, BudgetExceeded)
        assert exc.reason == "shed:slo:p99_cost"


class TestAdmissionIntegration:
    """The monitor's verdict shrinks AdmissionController capacity."""

    def _monitor_at_pressure(self, pressure: int) -> SLOMonitor:
        monitor = SLOMonitor(window=4, p99_cost_target=10)
        cost = {0: 5, 1: 10, 2: 20}[pressure]
        monitor.observe_query(cost=cost)
        assert monitor.pressure() == pressure
        return monitor

    def test_pressure_zero_admits_at_full_capacity(self):
        controller = AdmissionController(100, slo=self._monitor_at_pressure(0))
        controller.admit(100)  # full bound available

    def test_pressure_one_halves_capacity(self):
        controller = AdmissionController(100, slo=self._monitor_at_pressure(1))
        with pytest.raises(SloShed) as info:
            controller.admit(51)
        assert info.value.reason == "shed:slo:p99_cost"
        controller.admit(50)  # half the bound still admits

    def test_pressure_two_quarters_capacity(self):
        controller = AdmissionController(100, slo=self._monitor_at_pressure(2))
        with pytest.raises(SloShed):
            controller.admit(26)
        controller.admit(25)

    def test_slo_shed_rolls_back_inflight_charge(self):
        controller = AdmissionController(100, slo=self._monitor_at_pressure(2))
        with pytest.raises(SloShed):
            controller.admit(80)
        assert controller.inflight_cost == 0
        assert controller.inflight_queries == 0

    def test_unbounded_controller_never_slo_sheds(self):
        controller = AdmissionController(None, slo=self._monitor_at_pressure(2))
        controller.admit(10_000)

    def test_recovery_restores_full_capacity(self):
        monitor = SLOMonitor(window=1, p99_cost_target=10)
        monitor.observe_query(cost=20)
        controller = AdmissionController(100, slo=monitor)
        with pytest.raises(SloShed):
            controller.admit(30)
        monitor.observe_query(cost=1)  # healthy query slides the spike out
        controller.admit(30)


def test_async_engine_records_slo_shed_reason():
    """End-to-end through AsyncQueryEngine.query: reason lands in the record."""
    import random

    from repro.dataset import Dataset, make_objects
    from repro.service import AsyncQueryEngine, QueryEngine

    rng = random.Random(23)
    points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(120)]
    docs = [rng.sample(range(1, 8), 3) for _ in range(120)]
    engine = QueryEngine(Dataset(make_objects(points, docs)), max_k=2, cache_size=0)
    monitor = SLOMonitor(window=8, p99_cost_target=1)  # any real cost trips it
    front = AsyncQueryEngine(
        engine, max_inflight_cost=100, slo=monitor, max_workers=1
    )

    async def drive():
        await front.query((0.0, 0.0, 10.0, 10.0), [1, 2], budget=100)
        # The first query's cost is in the window now; burn is critical, so
        # capacity is quartered (25) and a budget-30 query must shed.
        with pytest.raises(SloShed):
            await front.query((0.0, 0.0, 5.0, 5.0), [1], budget=30)

    try:
        asyncio.run(drive())
    finally:
        front.close()
    record = engine.last_record
    assert record.strategy == "shed"
    assert record.reason == "shed:slo:p99_cost"
    assert front.stats()["slo"]["pressure"] == 2

"""OpenMetrics exposition: format pins, registry merge, golden export.

The golden ``metrics.prom`` pins the exposition byte-for-byte on the seeded
serving workload (the CI golden check replays exactly this test); intentional
format changes must regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/telemetry/test_exporter.py
"""

import os
import pathlib
import random

import pytest

from repro.errors import ValidationError
from repro.service import QueryEngine
from repro.telemetry import merge_registries, quantile_rows, render_openmetrics
from repro.trace import MetricsRegistry
from repro.workloads import WorkloadConfig, random_rect, zipf_dataset

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def seeded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests_total").inc(7)
    registry.gauge("inflight").set(3)
    hist = registry.histogram("latency", buckets=(1.0, 4.0, 16.0))
    for value in (0.5, 2, 3, 9, 40):
        hist.observe(value)
    return registry


class TestRenderFormat:
    def test_counter_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(2)
        text = render_openmetrics(registry)
        assert "repro_requests_total 2" in text
        assert "total_total" not in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_openmetrics(seeded_registry())
        assert 'repro_latency_bucket{le="1"} 1' in text
        assert 'repro_latency_bucket{le="4"} 3' in text
        assert 'repro_latency_bucket{le="16"} 4' in text
        assert 'repro_latency_bucket{le="+Inf"} 5' in text
        assert "repro_latency_sum 54.5" in text
        assert "repro_latency_count 5" in text

    def test_ends_with_eof_newline(self):
        assert render_openmetrics(MetricsRegistry()).endswith("# EOF\n")

    def test_instruments_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        text = render_openmetrics(registry)
        assert text.index("repro_alpha") < text.index("repro_zeta")

    def test_snapshot_and_registry_render_identically(self):
        registry = seeded_registry()
        assert render_openmetrics(registry) == render_openmetrics(
            registry.snapshot()
        )

    def test_custom_namespace(self):
        registry = seeded_registry()
        assert "myapp_requests_total" in render_openmetrics(
            registry, namespace="myapp"
        )

    def test_non_snapshot_rejected(self):
        with pytest.raises(ValidationError):
            render_openmetrics({"not": "a snapshot"})


class TestMergeRegistries:
    def test_counters_gauges_histograms_fold(self):
        a, b = seeded_registry(), seeded_registry()
        merged = merge_registries([a, b])
        assert merged.counter("requests_total").value == 14
        assert merged.gauge("inflight").value == 6
        assert merged.histogram("latency").snapshot()["count"] == 10
        # Inputs untouched.
        assert a.counter("requests_total").value == 7

    def test_mismatched_histogram_bounds_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(1)
        b.histogram("h", buckets=(2.0,)).observe(1)
        with pytest.raises(ValidationError):
            merge_registries([a, b])

    def test_merged_render_equals_sum_of_parts_counts(self):
        a, b = seeded_registry(), seeded_registry()
        text = render_openmetrics(merge_registries([a, b]))
        assert 'repro_latency_bucket{le="+Inf"} 10' in text


class TestQuantileRows:
    def test_rows_sorted_with_standard_quantiles(self):
        rows = quantile_rows(seeded_registry())
        assert [row["name"] for row in rows] == ["latency"]
        assert {"p50", "p90", "p99", "count", "sum"} <= set(rows[0])


def serve_seeded_workload() -> QueryEngine:
    """The seeded serving workload behind the golden exposition check."""
    dataset = zipf_dataset(
        WorkloadConfig(num_objects=80, vocabulary=16, doc_max=4, seed=1301)
    )
    engine = QueryEngine(dataset, max_k=2, cache_size=4)
    rng = random.Random(1302)
    for index in range(12):
        rect = random_rect(rng, dataset.dim, side=0.4)
        keywords = rng.sample(range(1, 17), 2)
        budget = 4096 if index % 3 else 64
        engine.query(rect, keywords, budget=budget)
    return engine


class TestGoldenExposition:
    def test_exposition_matches_golden(self):
        engine = serve_seeded_workload()
        got = render_openmetrics(engine.metrics)
        path = GOLDEN_DIR / "metrics.prom"
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(got)
        assert path.exists(), f"golden file missing — regenerate: {path}"
        assert got == path.read_text()

    def test_exposition_deterministic_across_runs(self):
        assert render_openmetrics(
            serve_seeded_workload().metrics
        ) == render_openmetrics(serve_seeded_workload().metrics)

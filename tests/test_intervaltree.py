"""Unit tests for repro.intervaltree."""

import math

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.intervaltree import IntervalTree


def random_intervals(rng, n, span=10.0):
    intervals = []
    for _ in range(n):
        lo = rng.uniform(0.0, span)
        intervals.append((lo, lo + rng.uniform(0.0, span / 4)))
    return intervals


class TestOverlapQuery:
    def test_agrees_with_brute_force(self, rng):
        intervals = random_intervals(rng, 200)
        tree = IntervalTree(intervals)
        for _ in range(40):
            a, b = sorted([rng.uniform(-1, 13), rng.uniform(-1, 13)])
            got = sorted(tree.overlap_query(a, b))
            want = sorted(
                i for i, (lo, hi) in enumerate(intervals) if lo <= b and a <= hi
            )
            assert got == want

    def test_stabbing_query(self, rng):
        intervals = random_intervals(rng, 150)
        tree = IntervalTree(intervals)
        for _ in range(30):
            x = rng.uniform(-1, 13)
            got = sorted(tree.stabbing_query(x))
            want = sorted(
                i for i, (lo, hi) in enumerate(intervals) if lo <= x <= hi
            )
            assert got == want

    def test_touching_counts(self):
        tree = IntervalTree([(0.0, 1.0), (1.0, 2.0)])
        assert sorted(tree.overlap_query(1.0, 1.0)) == [0, 1]

    def test_no_duplicates(self, rng):
        intervals = random_intervals(rng, 100)
        tree = IntervalTree(intervals)
        found = tree.overlap_query(-1.0, 20.0)
        assert len(found) == len(set(found)) == 100

    def test_degenerate_intervals(self):
        tree = IntervalTree([(1.0, 1.0), (2.0, 2.0), (1.0, 3.0)])
        assert sorted(tree.stabbing_query(1.0)) == [0, 2]
        assert sorted(tree.stabbing_query(2.0)) == [1, 2]

    def test_identical_intervals(self):
        tree = IntervalTree([(1.0, 2.0)] * 10)
        assert len(tree.stabbing_query(1.5)) == 10


class TestComplexity:
    def test_space_linear(self, rng):
        n = 1000
        tree = IntervalTree(random_intervals(rng, n))
        assert tree.space_units <= 4 * n

    def test_stab_cost_log_plus_out(self, rng):
        n = 4096
        # Short intervals so a stab hits few.
        intervals = []
        for _ in range(n):
            lo = rng.uniform(0.0, 100.0)
            intervals.append((lo, lo + 0.01))
        tree = IntervalTree(intervals)
        counter = CostCounter()
        out = tree.stabbing_query(50.0, counter)
        non_output = counter.total - 2 * len(out)
        assert non_output <= 24 * math.log2(n)

    def test_validation(self):
        with pytest.raises(ValidationError):
            IntervalTree([])
        with pytest.raises(ValidationError):
            IntervalTree([(2.0, 1.0)])
        tree = IntervalTree([(0.0, 1.0)])
        with pytest.raises(ValidationError):
            tree.overlap_query(2.0, 1.0)

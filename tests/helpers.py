"""Shared dataset builders used across test modules."""

from __future__ import annotations

import random

from repro.dataset import Dataset, make_objects


def random_dataset(
    rng: random.Random,
    num_objects: int,
    dim: int = 2,
    vocabulary: int = 8,
    doc_max: int = 4,
    integer_coords: bool = False,
    coord_range: float = 10.0,
) -> Dataset:
    """Small random dataset for brute-force comparison tests."""
    points = []
    docs = []
    for _ in range(num_objects):
        if integer_coords:
            points.append(
                tuple(float(rng.randint(0, int(coord_range))) for _ in range(dim))
            )
        else:
            points.append(tuple(rng.uniform(0.0, coord_range) for _ in range(dim)))
        docs.append(rng.sample(range(1, vocabulary + 1), rng.randint(1, doc_max)))
    return Dataset(make_objects(points, docs))


def duplicate_heavy_dataset(rng: random.Random, num_objects: int, dim: int = 2) -> Dataset:
    """Dataset with many coincident points (degenerate positions)."""
    points = []
    docs = []
    for _ in range(num_objects):
        if rng.random() < 0.5:
            points.append(tuple(float(rng.randint(0, 3)) for _ in range(dim)))
        else:
            points.append(tuple(rng.uniform(0.0, 4.0) for _ in range(dim)))
        docs.append(rng.sample(range(1, 7), rng.randint(1, 3)))
    return Dataset(make_objects(points, docs))

"""Property-based invariants of the Bentley–Saxe dynamization layer.

These pin the structural guarantees of :class:`repro.core.dynamize.Dynamized`
that the churn differential harness (which only checks query answers) cannot
see: bucket capacities, carry-chain telescoping, the half-dead compaction
bound, epoch monotonicity, and snapshot isolation under a concurrent writer.
"""

import random
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicOrpKw
from repro.core.dynamize import GaugeCompactionPolicy
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect

coordinate = st.floats(
    min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False
)

#: An operation tape: floats insert a point with that x-coordinate, ``None``
#: requests a delete of a seeded-random live object (no-op when empty).
op_tapes = st.lists(
    st.one_of(coordinate, st.none()), min_size=1, max_size=60
)


def _apply(index, ops, seed):
    """Replay an op tape; returns the set of live oids."""
    rng = random.Random(seed)
    live = set()
    for op in ops:
        if op is None:
            if live:
                victim = rng.choice(sorted(live))
                index.delete(victim)
                live.discard(victim)
        else:
            live.add(index.insert((op, -op), {1, 2}))
    return live


@given(ops=op_tapes, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_bucket_capacities_and_telescoping(ops, seed):
    """Level ``i`` physically holds at most ``2^i`` objects, the levels sum
    to the full physical population, and level-0..j-1 prefixes telescope:
    a non-empty level is preceded only by strictly smaller capacities, so
    the total below any level is < its capacity (the carry-chain identity
    ``1 + sum(2^i, i<j) = 2^j`` that makes single-insert merges exact)."""
    index = DynamicOrpKw(k=2, dim=2)
    _apply(index, ops, seed)
    buckets = index.epoch.buckets
    physical = [0 if b is None else len(b.objects) for b in buckets]
    for level, size in enumerate(physical):
        assert size <= (1 << level)
        assert sum(physical[:level]) < (1 << level)
    assert sum(physical) == len(index) + len(index.epoch.tombstones)


@given(num=st.integers(min_value=1, max_value=48))
@settings(max_examples=30, deadline=None)
def test_pure_inserts_follow_binary_representation(num):
    """With inserts only, occupancy is the binary representation of ``n``:
    level ``i`` holds exactly ``2^i`` objects iff bit ``i`` of ``n`` is set,
    and is empty otherwise — the exact telescoping of carry chains."""
    index = DynamicOrpKw(k=2, dim=2)
    for i in range(num):
        index.insert((float(i), 0.0), {1, 2})
    physical = [
        0 if b is None else len(b.objects) for b in index.epoch.buckets
    ]
    expected = [
        (1 << i) if num & (1 << i) else 0 for i in range(num.bit_length())
    ]
    assert physical == expected


@given(ops=op_tapes, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_tombstone_fraction_bounded_and_zero_after_compaction(ops, seed):
    """The half-dead policy keeps the dead fraction below ½ after every
    mutation, and an explicit compaction purges every tombstone."""
    index = DynamicOrpKw(k=2, dim=2)
    rng = random.Random(seed)
    live = set()
    for op in ops:
        if op is None:
            if not live:
                continue
            victim = rng.choice(sorted(live))
            index.delete(victim)
            live.discard(victim)
        else:
            live.add(index.insert((op, op), {1}))
        physical = len(index) + len(index.epoch.tombstones)
        if physical:
            assert len(index.epoch.tombstones) / physical < 0.5
    index.compact()
    assert index.epoch.tombstones == frozenset()
    assert len(index) == len(live)


@given(ops=op_tapes, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_epoch_ids_strictly_increase_per_mutation(ops, seed):
    """Every successful mutation publishes exactly one successor epoch;
    failed deletes publish nothing."""
    index = DynamicOrpKw(k=2, dim=2)
    rng = random.Random(seed)
    live = set()
    seen = [index.epoch.epoch_id]
    for op in ops:
        if op is None:
            if live:
                victim = rng.choice(sorted(live))
                index.delete(victim)
                live.discard(victim)
            else:
                before = index.epoch
                try:
                    index.delete(10**9)
                except ValidationError:
                    pass
                assert index.epoch is before  # failing path publishes nothing
                continue
        else:
            live.add(index.insert((op, 1.0), {1, 2}))
        seen.append(index.epoch.epoch_id)
    assert all(b == a + 1 for a, b in zip(seen, seen[1:]))


def test_aggressive_policy_compacts_on_first_delete():
    """A threshold-0+ policy rebuilds immediately: any delete purges."""
    index = DynamicOrpKw(
        k=2, dim=2, policy=GaugeCompactionPolicy(threshold=1e-9)
    )
    oids = [index.insert((float(i), 0.0), {1}) for i in range(9)]
    index.delete(oids[4])
    assert index.epoch.tombstones == frozenset()
    assert len(index) == 8


def test_pinned_snapshot_consistent_across_concurrent_compaction():
    """A pinned epoch keeps answering from its frozen state while a writer
    thread churns through inserts, deletes, and forced compactions."""
    index = DynamicOrpKw(k=2, dim=2)
    rng = random.Random(5)
    oids = [
        index.insert((rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)), {1, 2})
        for _ in range(32)
    ]
    rect = Rect((0.0, 0.0), (10.0, 10.0))
    pinned = index.snapshot()
    frozen = {obj.oid for obj in pinned.query(rect, [1, 2])}
    assert frozen == set(oids)

    stop = threading.Event()
    failures = []

    def reader():
        while not stop.is_set():
            got = {obj.oid for obj in pinned.query(rect, [1, 2])}
            if got != frozen:
                failures.append(got)
                return

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for round_no in range(20):
            index.insert((rng.uniform(0.0, 10.0), 0.5), {1, 2})
            index.delete(oids[round_no])
            if round_no % 5 == 0:
                index.compact()
    finally:
        stop.set()
        thread.join()
    assert not failures
    # The writer moved on: live view differs from the pinned one.
    assert {obj.oid for obj in index.query(rect, [1, 2])} != frozen
    assert pinned.epoch_id < index.epoch.epoch_id

"""Extended property-based tests over the wave-2/3 structures."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicOrpKw
from repro.dataset import Dataset, make_objects
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.polytope import HPolytope
from repro.geometry.lp import solve_lp
from repro.geometry.rectangles import Rect
from repro.intervaltree import IntervalTree
from repro.irtree import IrTree
from repro.ksi.bitset import BitsetKSI
from repro.ksi.naive import NaiveKSI
from repro.rangetree import RangeTree2D

coordinate = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


@st.composite
def point_sets(draw, dim=2):
    count = draw(st.integers(min_value=1, max_value=35))
    return [tuple(draw(coordinate) for _ in range(dim)) for _ in range(count)]


@st.composite
def rects_2d(draw):
    a, b = sorted([draw(coordinate), draw(coordinate)])
    c, d = sorted([draw(coordinate), draw(coordinate)])
    return Rect((a, c), (b, d))


@st.composite
def interval_lists(draw):
    count = draw(st.integers(min_value=1, max_value=30))
    intervals = []
    for _ in range(count):
        a, b = sorted([draw(coordinate), draw(coordinate)])
        intervals.append((a, b))
    return intervals


@st.composite
def set_families(draw):
    num_sets = draw(st.integers(min_value=2, max_value=6))
    return [
        sorted(
            draw(st.sets(st.integers(min_value=0, max_value=25), min_size=1, max_size=15))
        )
        for _ in range(num_sets)
    ]


# -- range tree ---------------------------------------------------------------------


@given(point_sets(), rects_2d())
@settings(max_examples=60, deadline=None)
def test_range_tree_matches_brute_force(points, rect):
    tree = RangeTree2D(points)
    got = sorted(tree.range_query(rect))
    want = sorted(i for i, p in enumerate(points) if rect.contains_point(p))
    assert got == want


# -- interval tree ---------------------------------------------------------------------


@given(interval_lists(), st.tuples(coordinate, coordinate))
@settings(max_examples=60, deadline=None)
def test_interval_tree_matches_brute_force(intervals, window):
    lo, hi = sorted(window)
    tree = IntervalTree(intervals)
    got = sorted(tree.overlap_query(lo, hi))
    want = sorted(
        i for i, (a, b) in enumerate(intervals) if a <= hi and lo <= b
    )
    assert got == want


@given(interval_lists(), coordinate)
@settings(max_examples=40, deadline=None)
def test_interval_tree_stab_equals_degenerate_window(intervals, x):
    tree = IntervalTree(intervals)
    assert sorted(tree.stabbing_query(x)) == sorted(tree.overlap_query(x, x))


# -- bitset k-SI -------------------------------------------------------------------------


@given(set_families(), st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_bitset_matches_naive(sets, rnd):
    bits = BitsetKSI(sets)
    naive = NaiveKSI(sets)
    k = rnd.randint(2, len(sets))
    ids = rnd.sample(range(len(sets)), k)
    assert bits.report(ids) == naive.report(ids)
    assert bits.is_empty(ids) == (not naive.report(ids))


# -- IR-tree -------------------------------------------------------------------------------


@given(point_sets(), rects_2d(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_irtree_matches_brute_force(points, rect, rnd):
    docs = [
        frozenset(rnd.sample(range(1, 7), rnd.randint(1, 3))) for _ in points
    ]
    dataset = Dataset(make_objects(points, docs))
    tree = IrTree(dataset)
    words = rnd.sample(range(1, 7), 2)
    got = sorted(o.oid for o in tree.query(rect, words))
    want = sorted(
        o.oid
        for o in dataset
        if rect.contains_point(o.point) and o.contains_keywords(words)
    )
    assert got == want


# -- dynamic index ------------------------------------------------------------------------


@st.composite
def operation_sequences(draw):
    """Insert/delete/query scripts for the dynamic index."""
    length = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(length):
        kind = draw(st.sampled_from(["insert", "insert", "insert", "delete", "query"]))
        ops.append(kind)
    return ops


@given(operation_sequences(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_dynamic_index_matches_model(ops, rnd):
    index = DynamicOrpKw(k=2, dim=2)
    model = {}
    for op in ops:
        if op == "insert" or not model:
            point = (rnd.uniform(0, 10), rnd.uniform(0, 10))
            doc = frozenset(rnd.sample(range(1, 6), rnd.randint(1, 3)))
            oid = index.insert(point, doc)
            model[oid] = (point, doc)
        elif op == "delete":
            victim = rnd.choice(sorted(model))
            index.delete(victim)
            del model[victim]
        else:
            a, b = sorted([rnd.uniform(0, 10), rnd.uniform(0, 10)])
            c, d = sorted([rnd.uniform(0, 10), rnd.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rnd.sample(range(1, 6), 2)
            got = sorted(o.oid for o in index.query(rect, words))
            want = sorted(
                oid
                for oid, (p, doc) in model.items()
                if rect.contains_point(p) and set(words) <= doc
            )
            assert got == want
    assert len(index) == len(model)


# -- LP optimality against vertex enumeration -----------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.tuples(
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.floats(min_value=-1, max_value=1, allow_nan=False),
            ),
            st.floats(min_value=0.1, max_value=2, allow_nan=False),
        ),
        min_size=1,
        max_size=4,
    ),
    st.tuples(
        st.floats(min_value=-1, max_value=1, allow_nan=False),
        st.floats(min_value=-1, max_value=1, allow_nan=False),
    ),
)
@settings(max_examples=60, deadline=None)
def test_lp_optimum_not_worse_than_any_vertex(raw_constraints, objective):
    constraints = [
        HalfSpace(coeffs, bound)
        for coeffs, bound in raw_constraints
        if any(abs(c) > 1e-9 for c in coeffs)
    ]
    if not constraints:
        return
    from repro.geometry.halfspaces import rect_to_halfspaces

    boxed = HPolytope(
        tuple(constraints) + rect_to_halfspaces((0.0, 0.0), (1.0, 1.0))
    )
    point = solve_lp(
        [(h.coeffs, h.bound) for h in constraints],
        objective,
        (0.0, 0.0),
        (1.0, 1.0),
    )
    vertices = boxed.enumerate_vertices()
    if point is None:
        # Infeasible LP must mean the boxed polytope has no vertices.
        assert vertices == []
        return
    lp_value = objective[0] * point[0] + objective[1] * point[1]
    for vertex in vertices:
        vertex_value = objective[0] * vertex[0] + objective[1] * vertex[1]
        assert lp_value <= vertex_value + 1e-6

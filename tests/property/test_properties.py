"""Property-based tests (hypothesis) on core data structures and invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orp_kw import OrpKwIndex
from repro.dataset import Dataset, make_objects
from repro.geometry.lp import feasible_point
from repro.geometry.rank_space import RankSpaceMap
from repro.geometry.rectangles import Rect
from repro.ksi.cohen_porat import KSetIndex
from repro.ksi.naive import NaiveKSI

# -- strategies -----------------------------------------------------------------

coordinate = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects_2d(draw):
    a, b = sorted([draw(coordinate), draw(coordinate)])
    c, d = sorted([draw(coordinate), draw(coordinate)])
    return Rect((a, c), (b, d))


@st.composite
def datasets_2d(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    points = [
        (draw(coordinate), draw(coordinate)) for _ in range(count)
    ]
    docs = [
        draw(st.sets(st.integers(min_value=1, max_value=6), min_size=1, max_size=4))
        for _ in range(count)
    ]
    return Dataset(make_objects(points, docs))


@st.composite
def set_families(draw):
    num_sets = draw(st.integers(min_value=2, max_value=6))
    return [
        sorted(
            draw(
                st.sets(st.integers(min_value=0, max_value=30), min_size=1, max_size=20)
            )
        )
        for _ in range(num_sets)
    ]


# -- rectangle algebra ------------------------------------------------------------


@given(rects_2d(), rects_2d())
def test_rect_intersection_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)


@given(rects_2d(), rects_2d())
def test_rect_covers_implies_intersects(a, b):
    if a.covers(b):
        assert a.intersects(b)


@given(rects_2d(), st.tuples(coordinate, coordinate))
def test_rect_cover_transfers_membership(a, point):
    big = Rect((-200.0, -200.0), (200.0, 200.0))
    assert big.covers(a)
    if a.contains_point(point):
        assert big.contains_point(point)


@given(rects_2d(), coordinate)
def test_rect_split_partitions_membership(rect, fraction):
    axis = 0
    value = min(max(fraction, rect.lo[axis]), rect.hi[axis])
    left, right = rect.split(axis, value)
    probe = ((rect.lo[0] + rect.hi[0]) / 2, (rect.lo[1] + rect.hi[1]) / 2)
    if rect.contains_point(probe):
        assert left.contains_point(probe) or right.contains_point(probe)


# -- rank space -------------------------------------------------------------------


@given(datasets_2d(), rects_2d())
@settings(max_examples=60)
def test_rank_space_preserves_rect_membership(dataset, rect):
    points = [obj.point for obj in dataset.objects]
    mapping = RankSpaceMap(points)
    rank_rect = mapping.rect_to_rank(rect)
    for i, p in enumerate(points):
        assert rect.contains_point(p) == rank_rect.contains_point(
            mapping.to_rank_point(i)
        )


@given(datasets_2d())
def test_rank_space_is_permutation(dataset):
    points = [obj.point for obj in dataset.objects]
    mapping = RankSpaceMap(points)
    n = len(points)
    for axis in range(2):
        ranks = sorted(mapping.to_rank_point(i)[axis] for i in range(n))
        assert ranks == list(range(n))


# -- LP ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.tuples(
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.floats(min_value=-1, max_value=1, allow_nan=False),
            ),
            st.floats(min_value=-2, max_value=2, allow_nan=False),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_lp_returns_feasible_points_only(constraints):
    constraints = [(c, b) for c, b in constraints if any(abs(x) > 1e-9 for x in c)]
    if not constraints:
        return
    point = feasible_point(constraints, (0.0, 0.0), (1.0, 1.0))
    if point is not None:
        for coeffs, bound in constraints:
            assert sum(c * x for c, x in zip(coeffs, point)) <= bound + 1e-6
        assert all(-1e-9 <= x <= 1 + 1e-9 for x in point)


# -- k-SI -------------------------------------------------------------------------


@given(set_families(), st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_kset_index_matches_naive(sets, rnd):
    index = KSetIndex(sets, k=2)
    naive = NaiveKSI(sets)
    ids = rnd.sample(range(len(sets)), 2)
    assert index.report(ids) == naive.report(ids)
    assert index.is_empty(ids) == naive.is_empty(ids)


@given(set_families())
@settings(max_examples=30, deadline=None)
def test_kset_index_space_linear(sets):
    index = KSetIndex(sets, k=2)
    assert index.space_units <= 16 * max(index.input_size, 1)


# -- ORP-KW -----------------------------------------------------------------------


@given(datasets_2d(), rects_2d(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_orp_kw_matches_brute_force(dataset, rect, rnd):
    index = OrpKwIndex(dataset, k=2)
    words = rnd.sample(range(1, 7), 2)
    got = sorted(o.oid for o in index.query(rect, words))
    want = sorted(
        o.oid
        for o in dataset
        if rect.contains_point(o.point) and o.contains_keywords(words)
    )
    assert got == want


@given(datasets_2d())
@settings(max_examples=30, deadline=None)
def test_orp_kw_space_linear(dataset):
    index = OrpKwIndex(dataset, k=2)
    assert index.space_units <= 24 * index.input_size

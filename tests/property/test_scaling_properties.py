"""Property tests for the paper's structural bounds (Lemma 10, Proposition 1).

Seeded randomized checks, not hypothesis strategies: the audit subsystem's
determinism contract extends to its tests, and the explicit constants here
mirror the ones the structural probes gate
(:data:`repro.audit.probes.CROSSING_CONSTANT`, type-2 <= 2 per level).
"""

import math
import random

import numpy as np
import pytest

from repro.audit.probes import CROSSING_CONSTANT, TYPE2_PER_LEVEL
from repro.core.dim_reduction import DimReductionOrpKw
from repro.geometry.rectangles import Rect
from repro.kdtree import KdTree
from repro.workloads.generators import WorkloadConfig, zipf_dataset


class TestLemma10Crossing:
    """|T_cross| = O(N^(1-1/d)) for the kd-tree, with an explicit constant.

    For d = 2 a query rectangle has 4 boundary edges, each crossing
    O(sqrt N) nodes, so the explicit bound is ``4 * C * sqrt(N) + C`` with
    ``C`` the same constant the kd_crossing probe uses (observed worst case
    over these seeds: ~11.9 * sqrt(N), well inside 4C = 64).
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_random_rects_respect_bound(self, seed):
        rng = random.Random(1000 + seed)
        n = rng.choice([64, 200, 512, 1200])
        points = np.array([[rng.random(), rng.random()] for _ in range(n)])
        tree = KdTree(points)
        bound = 4 * CROSSING_CONSTANT * math.sqrt(n) + CROSSING_CONSTANT
        for _ in range(25):
            a, b = sorted(rng.uniform(-0.1, 1.1) for _ in range(2))
            c, d = sorted(rng.uniform(-0.1, 1.1) for _ in range(2))
            crossing = tree.count_crossing_nodes(Rect((a, c), (b, d)))
            assert crossing <= bound, (n, crossing, bound)

    def test_degenerate_line_respects_tighter_bound(self):
        # A vertical line is a single boundary edge: C * sqrt(N) suffices.
        rng = random.Random(77)
        n = 900
        points = np.array([[rng.random(), rng.random()] for _ in range(n)])
        tree = KdTree(points)
        for _ in range(10):
            x = rng.random()
            line = Rect((x, -1.0), (x, 2.0))
            assert tree.count_crossing_nodes(line) <= (
                CROSSING_CONSTANT * math.sqrt(n)
            )


class TestProposition1TypeCounts:
    """Per level of the dimension-reduction tree: at most two type-2 nodes."""

    @pytest.mark.parametrize("seed", range(3))
    def test_type2_per_level_bounded(self, seed):
        dataset = zipf_dataset(
            WorkloadConfig(
                num_objects=300 + 200 * seed, dim=3, vocabulary=32,
                doc_min=1, doc_max=3, zipf_s=1.0, seed=40 + seed,
            )
        )
        index = DimReductionOrpKw(dataset, k=2)
        rng = random.Random(500 + seed)
        for _ in range(8):
            a, b = sorted(rng.uniform(0.05, 0.95) for _ in range(2))
            rect = Rect((a, 0.0, 0.0), (b, 1.0, 1.0))
            counts = index.per_level_counts(rect, keywords=(1, 2))
            assert counts["nodes"], "per-level node census is never empty"
            for level, type2 in counts["type2"].items():
                assert type2 <= TYPE2_PER_LEVEL, (level, type2)

    def test_census_without_rect_has_no_type_counts(self):
        dataset = zipf_dataset(
            WorkloadConfig(
                num_objects=200, dim=3, vocabulary=16,
                doc_min=1, doc_max=3, zipf_s=1.0, seed=6,
            )
        )
        index = DimReductionOrpKw(dataset, k=2)
        counts = index.per_level_counts()
        assert set(counts) == {"nodes"}
        assert sum(counts["nodes"].values()) > 0

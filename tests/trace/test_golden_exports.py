"""Golden-file pin for the engine's JSON exports.

``export_stats_json`` / ``export_records_json`` feed dashboards and diffing
scripts, so their output must be byte-stable across runs *and* across code
refactors: keys sorted, no timestamps, no dict-ordering leaks.  The fixture
workload below is fully deterministic; any intentional format change must
regenerate the goldens with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/trace/test_golden_exports.py
"""

import json
import os
import pathlib

import pytest

from repro.dataset import Dataset, make_objects
from repro.geometry.rectangles import Rect
from repro.service import QueryEngine

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

POINTS = [
    (1.0, 1.0), (2.0, 4.0), (3.0, 2.0), (4.0, 8.0), (5.0, 5.0),
    (6.0, 3.0), (7.0, 7.0), (8.0, 2.0), (9.0, 6.0), (2.5, 2.5),
    (4.5, 4.5), (6.5, 1.5), (8.5, 8.5), (1.5, 7.5), (3.5, 6.5),
]
DOCS = [
    [1, 2], [2, 3], [1, 3], [1, 2, 3], [2],
    [1], [3], [1, 2], [2, 3], [1, 2, 3],
    [1, 2], [3], [1, 3], [2], [1, 2, 3],
]


def build_engine() -> QueryEngine:
    dataset = Dataset(make_objects(POINTS, DOCS))
    engine = QueryEngine(dataset, max_k=2, cache_size=4, tracing=True)
    engine.query(Rect((0.0, 0.0), (5.0, 5.0)), [1, 2])
    engine.query(Rect((2.0, 2.0), (9.0, 9.0)), [2, 3], budget=4096)
    engine.query(Rect((0.0, 0.0), (5.0, 5.0)), [1, 2])  # cache hit
    return engine


@pytest.mark.parametrize(
    "golden_name, render",
    [
        ("stats.json", lambda e: e.export_stats_json()),
        ("records.json", lambda e: e.export_records_json()),
    ],
)
def test_exports_match_golden(golden_name, render):
    engine = build_engine()
    got = render(engine)
    path = GOLDEN_DIR / golden_name
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(got + "\n")
    assert path.exists(), f"golden file missing — regenerate: {path}"
    assert got + "\n" == path.read_text()


def test_exports_are_deterministic_across_engines():
    """Two independent builds render byte-identical JSON."""
    a, b = build_engine(), build_engine()
    assert a.export_stats_json() == b.export_stats_json()
    assert a.export_records_json() == b.export_records_json()


def test_records_json_keys_sorted():
    payload = json.loads(build_engine().export_records_json())
    assert payload, "expected retained records"
    for rec in payload:
        assert list(rec) == sorted(rec)

"""MetricsRegistry semantics + the ``repro.cli trace`` smoke path."""

import json
import random

import pytest

from repro.cli import main
from repro.dataset import Dataset, make_objects
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect
from repro.service import QueryEngine
from repro.trace import (
    DEFAULT_BUCKETS,
    GLOBAL_REGISTRY,
    MetricCounter,
    MetricHistogram,
    MetricsRegistry,
)


def build_dataset(seed: int = 5) -> Dataset:
    rng = random.Random(seed)
    points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(60)]
    docs = [rng.sample(range(1, 9), rng.randint(1, 4)) for _ in range(60)]
    return Dataset(make_objects(points, docs))


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricCounter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricCounter("c")
        with pytest.raises(ValidationError):
            counter.inc(-1)


class TestHistogramBucketEdges:
    def test_value_on_bound_lands_in_that_bucket(self):
        hist = MetricHistogram("h", buckets=(1.0, 4.0, 16.0))
        hist.observe(4)  # == bound: inclusive upper edge
        snap = hist.snapshot()
        assert snap["buckets"]["le_4"] == 1
        assert snap["buckets"]["le_1"] == 0
        assert snap["buckets"]["le_16"] == 0

    def test_value_above_all_bounds_overflows(self):
        hist = MetricHistogram("h", buckets=(1.0, 4.0))
        hist.observe(5)
        snap = hist.snapshot()
        assert snap["overflow"] == 1
        assert snap["count"] == 1
        assert snap["sum"] == 5

    def test_default_buckets_are_powers_of_four(self):
        assert DEFAULT_BUCKETS[0] == 1.0
        assert all(
            b2 == b1 * 4 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )

    def test_integral_bucket_labels_render_without_exponent(self):
        labels = MetricHistogram("h").snapshot()["buckets"]
        assert "le_1048576" in labels  # 4^10, not le_1.04858e+06

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValidationError):
            MetricHistogram("h", buckets=(4.0, 4.0))


class TestHistogramValidation:
    def test_negative_observe_rejected(self):
        hist = MetricHistogram("h")
        with pytest.raises(ValidationError):
            hist.observe(-1)

    def test_rejected_observe_leaves_no_partial_state(self):
        hist = MetricHistogram("h", buckets=(1.0, 4.0))
        hist.observe(2)
        with pytest.raises(ValidationError):
            hist.observe(-0.5)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 2
        assert snap["min"] == 2 and snap["max"] == 2


class TestHistogramMerge:
    def test_merge_sums_buckets_overflow_and_extrema(self):
        a = MetricHistogram("h", buckets=(1.0, 4.0))
        b = MetricHistogram("h", buckets=(1.0, 4.0))
        a.observe(1)
        a.observe(3)
        b.observe(4)
        b.observe(9)  # above the last bound: overflow
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 17
        assert snap["buckets"] == {"le_1": 1, "le_4": 2}
        assert snap["overflow"] == 1
        assert snap["min"] == 1 and snap["max"] == 9

    def test_merge_into_empty_adopts_extrema(self):
        a = MetricHistogram("h", buckets=(1.0, 4.0))
        b = MetricHistogram("h", buckets=(1.0, 4.0))
        b.observe(3)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == 3 and snap["max"] == 3

    def test_merge_empty_other_is_identity(self):
        a = MetricHistogram("h", buckets=(1.0, 4.0))
        a.observe(2)
        before = a.snapshot()
        a.merge(MetricHistogram("h", buckets=(1.0, 4.0)))
        assert a.snapshot() == before

    def test_merge_mismatched_bounds_rejected(self):
        a = MetricHistogram("h", buckets=(1.0, 4.0))
        b = MetricHistogram("h", buckets=(1.0, 8.0))
        b.observe(5)
        with pytest.raises(ValidationError):
            a.merge(b)
        assert a.snapshot()["count"] == 0  # refused merge mutates nothing

    def test_merge_leaves_source_untouched(self):
        a = MetricHistogram("h", buckets=(1.0,))
        b = MetricHistogram("h", buckets=(1.0,))
        b.observe(1)
        a.merge(b)
        assert b.snapshot()["count"] == 1


class TestRegistryReset:
    def test_reset_zeroes_values_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.histogram("lat").observe(7)
        registry.reset()
        assert registry.counter_names() == ["hits"]
        assert registry.histogram_names() == ["lat"]
        assert registry.counter("hits").value == 0
        assert registry.histogram("lat").snapshot()["count"] == 0

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValidationError):
            registry.histogram("x")

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        snap = registry.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])


class TestEngineIsolation:
    def test_engines_get_private_registries_by_default(self):
        dataset = build_dataset()
        a = QueryEngine(dataset, max_k=2, cache_size=0)
        b = QueryEngine(dataset, max_k=2, cache_size=0)
        assert a.metrics is not b.metrics
        a.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])
        assert a.metrics.counter("queries_total").value == 1
        assert b.metrics.counter("queries_total").value == 0

    def test_shared_registry_is_an_explicit_opt_in(self):
        dataset = build_dataset()
        shared = MetricsRegistry()
        a = QueryEngine(dataset, max_k=2, cache_size=0, metrics=shared)
        b = QueryEngine(dataset, max_k=2, cache_size=0, metrics=shared)
        a.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])
        b.query(Rect((0.0, 0.0), (5.0, 5.0)), [1, 2])
        assert shared.counter("queries_total").value == 2
        assert GLOBAL_REGISTRY is not shared  # opting in never touches global

    def test_shared_registry_aggregates_without_double_registration(self):
        """Two engines on one registry share instruments, never re-register.

        ``counter``/``histogram`` are get-or-create, so the second engine
        must reuse the first's instruments (no ValidationError, no split
        counts) and repeated snapshots must render identically.
        """
        dataset = build_dataset()
        shared = MetricsRegistry()
        a = QueryEngine(dataset, max_k=2, cache_size=0, metrics=shared)
        b = QueryEngine(dataset, max_k=2, cache_size=0, metrics=shared)
        for engine in (a, b):
            engine.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])
            engine.query(Rect((0.0, 0.0), (4.0, 4.0)), [1])
        snap = shared.snapshot()
        assert snap["counters"]["queries_total"] == 4
        assert snap["histograms"]["cost_total"]["count"] == 4
        # One instrument per name: each registered name appears exactly once.
        assert len(shared.counter_names()) == len(set(shared.counter_names()))
        assert len(shared.histogram_names()) == len(set(shared.histogram_names()))
        # Snapshot determinism: rendering twice is byte-identical.
        assert json.dumps(snap, sort_keys=True) == json.dumps(
            shared.snapshot(), sort_keys=True
        )

    def test_global_registry_opt_in_aggregates_across_engines(self):
        dataset = build_dataset()
        baseline = GLOBAL_REGISTRY.counter("queries_total").value
        a = QueryEngine(dataset, max_k=2, cache_size=0, metrics=GLOBAL_REGISTRY)
        b = QueryEngine(dataset, max_k=2, cache_size=0, metrics=GLOBAL_REGISTRY)
        a.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])
        b.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])
        assert GLOBAL_REGISTRY.counter("queries_total").value == baseline + 2

    def test_stats_exposes_metrics_snapshot(self):
        dataset = build_dataset()
        engine = QueryEngine(dataset, max_k=2, cache_size=4)
        engine.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])
        engine.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])  # cache hit
        metrics = engine.stats()["metrics"]
        assert metrics["counters"]["queries_total"] == 2
        assert metrics["counters"]["cache_hits_total"] == 1
        assert metrics["histograms"]["cost_total"]["count"] == 1


@pytest.fixture
def dataset_file(tmp_path):
    rng = random.Random(17)
    path = tmp_path / "data.jsonl"
    with open(path, "w") as handle:
        for _ in range(80):
            record = {
                "point": [rng.uniform(0, 10), rng.uniform(0, 10)],
                "doc": rng.sample(range(1, 9), rng.randint(1, 3)),
            }
            handle.write(json.dumps(record) + "\n")
    return path


class TestCliTrace:
    @pytest.mark.parametrize("kind", ["orp", "engine", "sharded"])
    def test_pretty_tree(self, dataset_file, tmp_path, capsys, kind):
        index_path = tmp_path / f"{kind}.bin"
        assert main(
            ["build", str(dataset_file), str(index_path), "--kind", kind]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "trace",
                str(index_path),
                "--rect", "0", "0", "10", "10",
                "--keywords", "1", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query" in out
        if kind == "sharded":
            assert "shard-0" in out

    def test_json_format_round_trips(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "orp.bin"
        main(["build", str(dataset_file), str(index_path), "--kind", "orp"])
        capsys.readouterr()
        code = main(
            [
                "trace",
                str(index_path),
                "--rect", "0", "0", "10", "10",
                "--keywords", "1", "2",
                "--format", "json",
            ]
        )
        assert code == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["component"] in ("cli", "engine")
        assert trace["total"] == of_leaf(trace)

    def test_unsupported_kind_rejected(self, dataset_file, tmp_path):
        index_path = tmp_path / "lc.bin"
        main(["build", str(dataset_file), str(index_path), "--kind", "lc"])
        assert (
            main(
                [
                    "trace",
                    str(index_path),
                    "--rect", "0", "0", "10", "10",
                    "--keywords", "1", "2",
                ]
            )
            != 0
        )


def of_leaf(node):
    """Sum of leaf totals — mirrors the span-tree invariant in JSON form."""
    if not node.get("children"):
        return node["total"]
    return sum(of_leaf(child) for child in node["children"])
